//! Incremental repartitioning of an adaptively-refined mesh — the paper's
//! §4.2 scenario end to end.
//!
//! A solver partitions its mesh, runs, then refines the mesh in a hot
//! region (adding nodes in a local area). Instead of repartitioning from
//! scratch, the incremental GA reuses the previous partition as its seed
//! and repairs it, which both converges faster and keeps most nodes on
//! their original processor (less data movement).
//!
//! Run: `cargo run --release --example adaptive_mesh`

use gapart::core::incremental::{
    extend_partition_balanced, greedy_neighbor_assign, incremental_ga,
};
use gapart::core::{FitnessEvaluator, FitnessKind, GaConfig};
use gapart::graph::generators::paper_graph;
use gapart::graph::incremental::grow_local;
use gapart::graph::partition::PartitionMetrics;
use gapart::rsb::{rsb_partition, RsbOptions};

fn main() {
    let parts = 4u32;

    // Step 1: initial mesh and partition.
    let mesh = paper_graph(183);
    let initial =
        rsb_partition(&mesh, parts, &RsbOptions::default()).expect("mesh is partitionable");
    let m0 = PartitionMetrics::compute(&mesh, &initial);
    println!("initial mesh: 183 nodes, cut {}", m0.total_cut);

    // Step 2: adaptive refinement adds 60 nodes around a random hot spot.
    let refined = grow_local(&mesh, 60, 7).expect("mesh has coordinates");
    println!(
        "refined mesh: {} nodes (60 new around node {})",
        refined.graph.num_nodes(),
        refined.anchor
    );

    // Step 3a: the paper's deterministic baseline — each new node joins
    // the part most of its neighbours are in.
    let evaluator = FitnessEvaluator::new(&refined.graph, parts, FitnessKind::TotalCut, 1.0);
    let greedy = greedy_neighbor_assign(&refined.graph, &initial).expect("prefix partition");
    let greedy_m = PartitionMetrics::compute(&refined.graph, &greedy);
    println!(
        "\ngreedy neighbour-majority baseline: cut {}, imbalance {:.1}",
        greedy_m.total_cut, greedy_m.imbalance
    );

    // Step 3b: the incremental GA (§3.5 seeding + DKNUX).
    let config = GaConfig::paper_defaults(parts)
        .with_generations(120)
        .with_population_size(160)
        .with_seed(42);
    let ga = incremental_ga(&refined.graph, &initial, config).expect("valid incremental run");
    println!(
        "incremental GA (DKNUX):             cut {}, imbalance {:.1}",
        ga.best_metrics.total_cut, ga.best_metrics.imbalance
    );

    // Step 3c: how many nodes stayed on their original part? (data
    // movement cost of the repartitioning)
    let moved = (0..183u32)
        .filter(|&v| ga.best_partition.part(v) != initial.part(v))
        .count();
    println!("nodes migrated off their original part: {moved} / 183");

    // The balanced random extension the GA starts from, for reference.
    let ext = extend_partition_balanced(&refined.graph, &initial, 0).unwrap();
    let ext_cut = PartitionMetrics::compute(&refined.graph, &ext).total_cut;
    println!("(raw balanced extension before optimization: cut {ext_cut})");

    assert!(
        evaluator.evaluate(ga.best_partition.labels()) >= evaluator.evaluate(greedy.labels()),
        "the GA should never lose to the greedy baseline"
    );
    println!("\nincremental GA beat or matched the deterministic baseline ✓");
}
