//! Weighted graphs — the paper assumes unit weights in its experiments
//! but notes that "weighted edges and nodes can also be handled easily".
//! This example exercises that path end to end: a mesh whose node weights
//! model non-uniform computation (e.g. adaptive quadrature orders) and
//! whose edge weights model non-uniform communication volume.
//!
//! Run: `cargo run --release --example weighted_partition`

use gapart::core::{DpgaConfig, DpgaEngine, FitnessKind, GaConfig};
use gapart::graph::generators::paper_graph;
use gapart::graph::partition::PartitionMetrics;
use gapart::graph::{CsrGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Re-weights a unit mesh: node weights 1..=5 (computation), edge weights
/// 1..=4 (communication volume), deterministically.
fn weighted_version(g: &CsrGraph, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let vweights: Vec<u32> = (0..g.num_nodes()).map(|_| rng.gen_range(1..=5)).collect();
    let mut b = GraphBuilder::with_nodes(g.num_nodes());
    for (u, v, _) in g.edges() {
        b.push_edge(u, v, rng.gen_range(1..=4));
    }
    b = b.node_weights(vweights);
    if let Some(c) = g.coords() {
        b = b.coords(c.to_vec());
    }
    b.build().expect("reweighting preserves validity")
}

fn main() {
    let unit = paper_graph(167);
    let weighted = weighted_version(&unit, 99);
    let parts = 4u32;

    println!(
        "weighted mesh: {} nodes (total weight {}), {} edges",
        weighted.num_nodes(),
        weighted.total_node_weight(),
        weighted.num_edges()
    );

    let config = DpgaConfig::paper(parts).with_base(
        GaConfig::paper_defaults(parts)
            .with_fitness(FitnessKind::TotalCut)
            .with_generations(120)
            .with_seed(7),
    );
    let result = DpgaEngine::new(&weighted, config)
        .expect("valid configuration")
        .run();
    let m = PartitionMetrics::compute(&weighted, &result.best_partition);

    println!("\npartition into {parts} parts (weighted objective):");
    println!(
        "  weighted loads : {:?} (ideal {:.1})",
        m.part_loads, m.avg_load
    );
    println!("  weighted cut   : {}", m.total_cut);
    println!("  worst part cut : {}", m.max_cut);
    println!("  imbalance      : {:.1}", m.imbalance);

    // The loads must track the *weighted* ideal, not the node-count ideal.
    let worst_dev = m
        .part_loads
        .iter()
        .map(|&l| (l as f64 - m.avg_load).abs())
        .fold(0.0f64, f64::max);
    println!(
        "  worst load deviation: {:.1} ({:.1}% of ideal)",
        worst_dev,
        100.0 * worst_dev / m.avg_load
    );
    assert!(
        worst_dev <= m.avg_load * 0.15,
        "weighted balance too loose: {worst_dev}"
    );

    // Compare: the same partition applied to the unit graph shows the GA
    // really did optimize weighted load, not node counts.
    let unit_m = PartitionMetrics::compute(&unit, &result.best_partition);
    println!(
        "\nnode counts per part (for reference): {:?}",
        unit_m.part_loads
    );
    println!("\nweighted partitioning handled natively ✓");
}
