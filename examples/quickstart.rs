//! Quickstart: partition a mesh with the paper's DPGA + DKNUX pipeline.
//!
//! Run: `cargo run --release --example quickstart`

use gapart::core::{DpgaConfig, DpgaEngine, GaConfig};
use gapart::graph::generators::paper_graph;
use gapart::graph::partition::PartitionMetrics;

fn main() {
    // One of the paper's evaluation graphs: a 144-node unstructured mesh.
    let graph = paper_graph(144);
    println!(
        "graph: {} nodes, {} edges, avg degree {:.2}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.avg_degree()
    );

    // The paper's §4 configuration: 16 subpopulations on a 4-d hypercube,
    // total population 320, p_c = 0.7, p_m = 0.01, DKNUX crossover.
    let parts = 4;
    let config = DpgaConfig::paper(parts).with_base(
        GaConfig::paper_defaults(parts)
            .with_generations(100)
            .with_seed(2024),
    );

    let result = DpgaEngine::new(&graph, config)
        .expect("valid configuration")
        .run();

    let metrics = PartitionMetrics::compute(&graph, &result.best_partition);
    println!("\nbest partition into {parts} parts:");
    println!("  total cut    : {} edges", metrics.total_cut);
    println!("  worst cut    : {} edges out of one part", metrics.max_cut);
    println!("  part loads   : {:?}", metrics.part_loads);
    println!("  imbalance    : {:.2}", metrics.imbalance);
    println!(
        "  converged at : generation {} of {}",
        result
            .history
            .convergence_generation()
            .unwrap_or(result.history.len()),
        result.history.len() - 1
    );

    assert_eq!(
        metrics.part_loads.iter().sum::<u64>(),
        graph.num_nodes() as u64
    );
    println!("\ndone — every node assigned, cut minimized.");
}
