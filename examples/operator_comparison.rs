//! Comparing crossover operators — the paper's core claim that KNUX and
//! DKNUX give "orders of magnitude improvement over traditional genetic
//! operators in solution quality and speed".
//!
//! Runs the same single-population GA with each operator and prints the
//! final cut plus the generation at which each got within 10% of its
//! final value.
//!
//! Run: `cargo run --release --example operator_comparison`

use gapart::core::{CrossoverOp, FitnessKind, GaConfig, GaEngine};
use gapart::graph::generators::paper_graph;

fn main() {
    let graph = paper_graph(144);
    let parts = 4;
    println!("144-node mesh, {parts} parts, population 160, 120 generations\n");
    println!(
        "{:<10} {:>9} {:>12} {:>14}",
        "operator", "final cut", "final fit", "conv. gen"
    );
    println!("{}", "-".repeat(48));

    for op in [
        CrossoverOp::OnePoint,
        CrossoverOp::TwoPoint,
        CrossoverOp::KPoint(4),
        CrossoverOp::Uniform,
        CrossoverOp::Knux,
        CrossoverOp::Dknux,
    ] {
        let mut config = GaConfig::paper_defaults(parts)
            .with_crossover(op)
            .with_fitness(FitnessKind::TotalCut)
            .with_population_size(160)
            .with_generations(120)
            .with_seed(99);
        // Pure §3 comparison: no local-search assist, so the differences
        // shown are the crossover operators' own doing.
        config.elite_swap_passes = 0;
        let result = GaEngine::new(&graph, config)
            .expect("valid configuration")
            .run();
        let conv = result
            .history
            .convergence_generation()
            .unwrap_or(result.history.len());
        println!(
            "{:<10} {:>9} {:>12.1} {:>14}",
            op.to_string(),
            result.best_cut,
            result.best_fitness,
            conv
        );
    }

    println!("\nexpected: KNUX/DKNUX end with far smaller cuts than 1/2/k-point and UX.");
}
