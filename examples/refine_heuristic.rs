//! Refining solutions from other partitioners (the paper's Tables 1–2
//! use case): run IBP and RSB, then let the GA improve both, under both
//! fitness functions.
//!
//! Run: `cargo run --release --example refine_heuristic`

use gapart::core::dpga::MigrationPolicy;
use gapart::core::population::InitStrategy;
use gapart::core::{DpgaConfig, DpgaEngine, FitnessKind, GaConfig};
use gapart::graph::generators::paper_graph;
use gapart::graph::partition::PartitionMetrics;
use gapart::graph::{CsrGraph, Partition};
use gapart::ibp::{ibp_partition, IbpOptions};
use gapart::rsb::{rsb_partition, RsbOptions};

/// GA refinement of `seed`: heterogeneous islands (half seeded, half
/// random) so the search explores while elitism protects the seed.
fn refine(graph: &CsrGraph, seed: &Partition, kind: FitnessKind) -> Partition {
    let parts = seed.num_parts();
    let seeded = InitStrategy::Seeded {
        partition: seed.labels().to_vec(),
        perturbation: 0.1,
    };
    let mut base = GaConfig::paper_defaults(parts)
        .with_fitness(kind)
        .with_generations(100)
        .with_population_size(160)
        .with_init(seeded.clone())
        .with_hill_climb(gapart::core::HillClimbMode::Offspring { passes: 1 })
        .with_seed(7);
    base.boundary_mutation_rate = 0.05;
    let config = DpgaConfig {
        base,
        topology: gapart::core::Topology::Hypercube(3),
        migration_interval: 5,
        num_migrants: 2,
        migration_policy: MigrationPolicy::Best,
        parallel: true,
        init_overrides: Some(vec![seeded, InitStrategy::BalancedRandom]),
    };
    DpgaEngine::new(graph, config)
        .expect("valid configuration")
        .run()
        .best_partition
}

fn main() {
    let graph = paper_graph(167);
    let parts = 8u32;
    println!(
        "graph: 167 nodes, {} edges, {parts} parts\n",
        graph.num_edges()
    );

    let ibp = ibp_partition(&graph, parts, &IbpOptions::default()).expect("coords exist");
    let rsb = rsb_partition(&graph, parts, &RsbOptions::default()).expect("partitionable");

    println!("{:<28} {:>9} {:>9}", "method", "total cut", "worst cut");
    println!("{}", "-".repeat(48));
    for (name, p) in [("IBP (shuffled row-major)", &ibp), ("RSB", &rsb)] {
        let m = PartitionMetrics::compute(&graph, p);
        println!("{name:<28} {:>9} {:>9}", m.total_cut, m.max_cut);
    }

    for (name, seed) in [("IBP", &ibp), ("RSB", &rsb)] {
        let refined_total = refine(&graph, seed, FitnessKind::TotalCut);
        let mt = PartitionMetrics::compute(&graph, &refined_total);
        println!(
            "{:<28} {:>9} {:>9}",
            format!("GA refining {name} (fitness1)"),
            mt.total_cut,
            mt.max_cut
        );
        let refined_worst = refine(&graph, seed, FitnessKind::WorstCut);
        let mw = PartitionMetrics::compute(&graph, &refined_worst);
        println!(
            "{:<28} {:>9} {:>9}",
            format!("GA refining {name} (fitness2)"),
            mw.total_cut,
            mw.max_cut
        );

        let seed_m = PartitionMetrics::compute(&graph, seed);
        assert!(
            mt.total_cut <= seed_m.total_cut,
            "fitness-1 refinement must not worsen the total cut"
        );
    }
    println!("\nGA refinement never worsened a seed ✓");
}
