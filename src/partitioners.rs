//! Registry of every [`Partitioner`] in the workspace.
//!
//! The CLI's `--method` flag, the bench harness, and the
//! cross-implementation contract tests all resolve algorithms here, so a
//! new partitioner becomes available everywhere by adding one arm to
//! [`by_name`].

use crate::core::{DpgaConfig, DpgaPartitioner, GaConfig, GaPartitioner};
use crate::graph::partitioner::Partitioner;
use crate::ibp::IbpPartitioner;
use crate::rsb::{MultilevelRsbPartitioner, RsbPartitioner};

/// Names accepted by [`by_name`], in documentation order.
pub const NAMES: [&str; 5] = ["dpga", "ga", "rsb", "mlrsb", "ibp"];

/// Resolves a registry name to a boxed [`Partitioner`] with the paper's
/// default configuration. Returns `None` for unknown names.
///
/// GA and DPGA default to the §4 protocol (population 320, DKNUX,
/// `p_c = 0.7`, `p_m = 0.01`); callers needing other knobs construct
/// [`GaPartitioner`] / [`DpgaPartitioner`] directly — the trait object
/// interface is identical.
pub fn by_name(name: &str) -> Option<Box<dyn Partitioner>> {
    match name {
        "dpga" => Some(Box::new(DpgaPartitioner::default())),
        "ga" => Some(Box::new(GaPartitioner::default())),
        "rsb" => Some(Box::new(RsbPartitioner::default())),
        "mlrsb" => Some(Box::new(MultilevelRsbPartitioner::default())),
        "ibp" => Some(Box::new(IbpPartitioner::default())),
        _ => None,
    }
}

/// One instance of every registered partitioner, in [`NAMES`] order.
pub fn all() -> Vec<Box<dyn Partitioner>> {
    NAMES
        .iter()
        .map(|n| by_name(n).expect("every registry name resolves"))
        .collect()
}

/// GA partitioner tuned like the CLI's `partition` subcommand: smaller
/// budget knobs than the paper protocol, boundary mutation and offspring
/// hill climbing on.
pub fn tuned_ga(config: GaConfig) -> Box<dyn Partitioner> {
    Box::new(GaPartitioner::new(config))
}

/// DPGA partitioner from an explicit configuration.
pub fn tuned_dpga(config: DpgaConfig) -> Box<dyn Partitioner> {
    Box::new(DpgaPartitioner::new(config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_closed() {
        for name in NAMES {
            let p = by_name(name).unwrap();
            assert_eq!(p.name(), name);
        }
        assert!(by_name("metis").is_none());
        assert_eq!(all().len(), NAMES.len());
    }
}
