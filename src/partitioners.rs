//! Registry of every [`Partitioner`] in the workspace.
//!
//! The CLI's `--method` flag, the bench harness, and the
//! cross-implementation contract tests all resolve algorithms here, so a
//! new partitioner becomes available everywhere by adding one arm to
//! [`by_name`].
//!
//! The `ml*` names wrap their flat counterparts in the generic multilevel
//! V-cycle ([`gapart_graph::multilevel::MultilevelPartitioner`]): coarsen
//! with heavy-edge matching, run the inner algorithm on the coarsest
//! graph, project back level by level with shared k-way refinement. The
//! GA-based inners use the coarse-level sizings
//! ([`GaConfig::coarse_defaults`] / [`DpgaConfig::coarse`]) because the
//! coarsest graph has only ~64–128 nodes.

use crate::core::{DpgaConfig, DpgaPartitioner, GaConfig, GaPartitioner};
use crate::graph::multilevel::{MultilevelConfig, MultilevelPartitioner};
use crate::graph::partitioner::Partitioner;
use crate::graph::refine::RefineScheme;
use crate::ibp::IbpPartitioner;
use crate::rsb::{MultilevelOptions, MultilevelRsbPartitioner, RsbPartitioner};

/// Names accepted by [`by_name`], in documentation order: the flat
/// algorithms first, then their multilevel wrappers.
pub const NAMES: [&str; 8] = [
    "dpga", "ga", "rsb", "ibp", "mldpga", "mlga", "mlrsb", "mlibp",
];

/// Resolves a registry name to a boxed [`Partitioner`] with the paper's
/// default configuration. Returns `None` for unknown names.
///
/// GA and DPGA default to the §4 protocol (population 320, DKNUX,
/// `p_c = 0.7`, `p_m = 0.01`); their multilevel variants use the smaller
/// coarse-level sizing since the inner GA only ever sees the coarsest
/// graph. Callers needing other knobs construct [`GaPartitioner`] /
/// [`DpgaPartitioner`] (or [`multilevel`]) directly — the trait object
/// interface is identical.
pub fn by_name(name: &str) -> Option<Box<dyn Partitioner>> {
    by_name_with(name, RefineScheme::default())
}

/// [`by_name`] with an explicit per-level refinement engine for the
/// `ml*` wrappers (the CLI's `--refine` flag). Flat methods never refine,
/// so `scheme` does not affect them.
pub fn by_name_with(name: &str, scheme: RefineScheme) -> Option<Box<dyn Partitioner>> {
    let ml_config = MultilevelConfig {
        refine_scheme: scheme,
        ..MultilevelConfig::default()
    };
    match name {
        "dpga" => Some(Box::new(DpgaPartitioner::default())),
        "ga" => Some(Box::new(GaPartitioner::default())),
        "rsb" => Some(Box::new(RsbPartitioner::default())),
        "ibp" => Some(Box::new(IbpPartitioner::default())),
        "mldpga" => Some(multilevel_with(
            "mldpga",
            Box::new(DpgaPartitioner::new(DpgaConfig::coarse(2))),
            ml_config,
        )),
        "mlga" => Some(multilevel_with(
            "mlga",
            Box::new(GaPartitioner::new(GaConfig::coarse_defaults(2))),
            ml_config,
        )),
        // `mlrsb` resolves to the rsb crate's own framework instantiation
        // so its `MultilevelOptions` stay the one source of V-cycle knobs.
        "mlrsb" => Some(Box::new(MultilevelRsbPartitioner {
            options: MultilevelOptions {
                refine_scheme: scheme,
                ..MultilevelOptions::default()
            },
        })),
        "mlibp" => Some(multilevel_with(
            "mlibp",
            Box::new(IbpPartitioner::default()),
            ml_config,
        )),
        _ => None,
    }
}

/// One instance of every registered partitioner, in [`NAMES`] order.
pub fn all() -> Vec<Box<dyn Partitioner>> {
    NAMES
        .iter()
        .map(|n| by_name(n).expect("every registry name resolves"))
        .collect()
}

/// GA partitioner tuned like the CLI's `partition` subcommand: smaller
/// budget knobs than the paper protocol, boundary mutation and offspring
/// hill climbing on.
pub fn tuned_ga(config: GaConfig) -> Box<dyn Partitioner> {
    Box::new(GaPartitioner::new(config))
}

/// DPGA partitioner from an explicit configuration.
pub fn tuned_dpga(config: DpgaConfig) -> Box<dyn Partitioner> {
    Box::new(DpgaPartitioner::new(config))
}

/// Wraps any partitioner in the generic multilevel V-cycle under the
/// given registry name (e.g. a custom-budget GA as the coarsest-level
/// algorithm).
pub fn multilevel(name: &'static str, inner: Box<dyn Partitioner>) -> Box<dyn Partitioner> {
    Box::new(MultilevelPartitioner::new(name, inner))
}

/// [`multilevel`] with explicit V-cycle knobs (coarsening target,
/// matching scheme, refinement options and engine).
pub fn multilevel_with(
    name: &'static str,
    inner: Box<dyn Partitioner>,
    config: MultilevelConfig,
) -> Box<dyn Partitioner> {
    Box::new(MultilevelPartitioner::with_config(name, inner, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_closed() {
        for name in NAMES {
            let p = by_name(name).unwrap();
            assert_eq!(p.name(), name);
        }
        assert!(by_name("metis").is_none());
        assert_eq!(all().len(), NAMES.len());
    }

    #[test]
    fn refine_scheme_variants_resolve_for_every_method() {
        use crate::graph::generators::jittered_mesh;
        let g = jittered_mesh(120, 7);
        for name in NAMES {
            for scheme in [
                RefineScheme::Sweep,
                RefineScheme::BoundaryFm,
                RefineScheme::ParallelFm,
                RefineScheme::ParallelFmRescan,
            ] {
                let p = by_name_with(name, scheme).unwrap();
                assert_eq!(p.name(), name);
                // Flat methods ignore the scheme; ml* must still satisfy
                // the basic contract under both engines.
                let report = p.partition(&g, 4, 3).unwrap();
                assert_eq!(report.partition.num_nodes(), 120);
            }
        }
    }

    #[test]
    fn every_flat_method_has_a_multilevel_twin() {
        for name in NAMES {
            if let Some(flat) = name.strip_prefix("ml") {
                assert!(
                    NAMES.contains(&flat),
                    "{name} wraps unregistered method {flat}"
                );
            } else {
                let ml = format!("ml{name}");
                assert!(by_name(&ml).is_some(), "{name} has no multilevel twin");
            }
        }
    }
}
