//! Implementation of the `gapart-cli` command-line tool.
//!
//! Kept in the library (rather than the binary) so the argument parser
//! and command logic are unit-testable. The binary in `src/bin` is a
//! thin wrapper around [`run`].
//!
//! Subcommands:
//!
//! * `gen`        — generate a graph (mesh / grid / geometric / gnp) to
//!   METIS format plus an optional coordinate file.
//! * `info`       — print graph statistics.
//! * `partition`  — partition with `dpga` (default), `ga`, `rsb`, `ibp`,
//!   or a multilevel wrapper (`mldpga`, `mlga`, `mlrsb`, `mlibp`); writes
//!   one part label per line.
//! * `eval`       — score an existing partition file.
//! * `grow`       — apply the paper's incremental local growth.
//! * `trace`      — generate a mutation trace (mesh-growth / churn /
//!   hotspot scenarios) for `stream`.
//! * `stream`     — replay a mutation trace through a dynamic
//!   repartitioning session (localized refinement + escalation).
//! * `serve`      — multi-session partition daemon over stdio or a Unix
//!   socket, with durable per-session tapes and crash recovery.

use crate::core::dynamic::{BatchAction, DynamicError, SessionSpec};
use crate::core::incremental::incremental_ga;
use crate::core::{CrossoverOp, DpgaConfig, FitnessKind, GaConfig, HillClimbMode};
use crate::graph::dynamic::scenario::{generate as generate_trace, Scenario, TraceSpec};
use crate::graph::dynamic::trace::{parse_trace, trace_to_text};
use crate::graph::generators::{gnp, grid2d, jittered_mesh, random_geometric, GridKind};
use crate::graph::incremental::grow_local;
use crate::graph::io::{attach_coords, coords_from_text, coords_to_text, from_metis, to_metis};
use crate::graph::partition::{hash_labels, Partition, PartitionMetrics};
use crate::graph::partitioner::Partitioner;
use crate::graph::refine::RefineScheme;
use crate::graph::CsrGraph;
use crate::rsb::{rsb_partition, RsbOptions};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed command line: positional arguments and `--key value` flags.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Args {
    /// Positional arguments in order (subcommand first).
    pub positional: Vec<String>,
    /// `--key value` options (keys without the `--`).
    pub flags: BTreeMap<String, String>,
}

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line (message explains; usage should be printed).
    Usage(String),
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Anything the library layers rejected.
    Failed(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Failed(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Parses raw arguments (excluding `argv[0]`) into [`Args`].
///
/// Grammar: anything starting with `--` is a flag and consumes the next
/// token as its value; everything else is positional.
pub fn parse_args<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, CliError> {
    let mut args = Args::default();
    let mut it = argv.into_iter();
    while let Some(tok) = it.next() {
        if let Some(key) = tok.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| CliError::Usage(format!("flag --{key} expects a value")))?;
            if args.flags.insert(key.to_string(), value).is_some() {
                return Err(CliError::Usage(format!("flag --{key} given twice")));
            }
        } else {
            args.positional.push(tok);
        }
    }
    Ok(args)
}

impl Args {
    fn flag(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    fn flag_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.flag(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key} {v}: cannot parse"))),
        }
    }

    fn require(&self, key: &str) -> Result<&str, CliError> {
        self.flag(key)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{key}")))
    }
}

/// The usage text printed on `help` or a usage error.
pub const USAGE: &str = "\
gapart-cli — GA graph partitioning (Maini et al., SC'94)

GLOBAL FLAGS (any subcommand):
  --threads N   worker threads for the parallel phases (coarsening,
                refinement, GA evaluation); 0 or absent = all cores.
                Output is bit-identical for every thread count.

USAGE:
  gapart-cli gen --kind mesh|grid|geometric|gnp --nodes N [--seed S]
             --out g.metis [--coords-out g.xy]
  gapart-cli info GRAPH.metis
  gapart-cli partition GRAPH.metis --parts P
             [--method dpga|ga|rsb|ibp|mldpga|mlga|mlrsb|mlibp]
             [--fitness total|worst] [--gens G] [--pop SIZE] [--seed S]
             [--refine fm|pfm|pfm-rescan|sweep] [--coords G.xy]
             [--out labels.part] [--svg view.svg]
             (ml* methods are the multilevel V-cycle; mlga/mldpga honour
              --fitness and default --gens/--pop to the coarse-level
              sizing, applying them only when given explicitly.
              --refine picks the per-level refinement engine of the ml*
              methods: the boundary FM refiner with gain buckets, the
              default; its parallel colored-batch variant, pfm;
              pfm-rescan, the same engine rebuilding its gain table
              every round — the bit-identical reference for pfm's
              incremental rounds; or the frozen-gain greedy sweep)
  gapart-cli eval GRAPH.metis LABELS.part --parts P [--coords G.xy]
             [--svg view.svg]
  gapart-cli grow GRAPH.metis --coords G.xy --add K [--seed S]
             --out grown.metis [--coords-out grown.xy]
             [--repartition P] [--old-labels labels.part]
  gapart-cli trace GRAPH.metis --scenario mesh-growth|churn|hotspot
             --batches B --ops N [--seed S] [--coords G.xy]
             --out trace.txt
             (mesh-growth needs --coords; ops is mutations per batch)
  gapart-cli stream GRAPH.metis --trace trace.txt --parts P
             [--coords G.xy] [--method mlga|mldpga|mlrsb|...]
             [--refine fm|pfm|pfm-rescan|sweep] [--threshold 1.5]
             [--hops 2] [--seed S]
             [--labels-out labels.part] [--graph-out final.metis]
             [--coords-out final.xy]
             (replays the trace through a dynamic session: new nodes are
              seeded per §3.5, refinement stays on the dirty frontier,
              and the cut degrading past --threshold × the epoch's
              baseline escalates to a full --method repartition)
  gapart-cli serve --tape-dir DIR [--socket PATH] [--snapshot-every N]
             (long-running daemon holding many named dynamic sessions;
              newline-delimited commands on stdin — or on a Unix socket
              with --socket — one `ok`/`err` reply line per command:
                open NAME graph=G.metis parts=P [coords=G.xy]
                          [method=..] [refine=..] [seed=..]
                          [threshold=..] [hops=..]
                open NAME                  # recover from DIR/NAME.tape
                mutate NAME node W | edge U V W | weight N W
                commit NAME | query NAME | snapshot NAME
                replay NAME trace=T [from=B]
                close NAME | sessions | shutdown
              every session appends to a durable tape in DIR with a
              snapshot every N batches (default 8); after a crash,
              `open NAME` replays the tail and lands on a labelling
              bit-identical to the uninterrupted run)
";

/// Executes a parsed command, returning the text to print.
///
/// The global `--threads N` flag bounds the worker pool every parallel
/// phase (coarsening, refinement, GA evaluation) runs under; `0` or
/// absent means one worker per hardware core. Results are bit-identical
/// for any thread count — the flag trades wall time, never output.
pub fn run(args: &Args) -> Result<String, CliError> {
    let threads: usize = args.flag_parse("threads", 0usize)?;
    if threads == 0 {
        return dispatch(args);
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map_err(|e| CliError::Failed(format!("thread pool: {e}")))?;
    pool.install(|| dispatch(args))
}

/// Subcommand dispatch, running inside the pool [`run`] installed.
fn dispatch(args: &Args) -> Result<String, CliError> {
    let Some(cmd) = args.positional.first() else {
        return Err(CliError::Usage("no subcommand given".into()));
    };
    match cmd.as_str() {
        "gen" => cmd_gen(args),
        "info" => cmd_info(args),
        "partition" => cmd_partition(args),
        "eval" => cmd_eval(args),
        "grow" => cmd_grow(args),
        "trace" => cmd_trace(args),
        "stream" => cmd_stream(args),
        "serve" => cmd_serve(args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::Usage(format!("unknown subcommand '{other}'"))),
    }
}

fn load_graph(path: &str, coords_path: Option<&str>) -> Result<CsrGraph, CliError> {
    let text = std::fs::read_to_string(path)?;
    let mut g = from_metis(&text).map_err(|e| CliError::Failed(format!("{path}: {e}")))?;
    if let Some(cp) = coords_path {
        let ctext = std::fs::read_to_string(cp)?;
        let coords =
            coords_from_text(&ctext).map_err(|e| CliError::Failed(format!("{cp}: {e}")))?;
        g = attach_coords(&g, coords).map_err(|e| CliError::Failed(format!("{cp}: {e}")))?;
    }
    Ok(g)
}

fn save_labels(path: &str, p: &Partition) -> Result<(), CliError> {
    let mut out = String::with_capacity(p.num_nodes() * 2);
    for &l in p.labels() {
        let _ = writeln!(out, "{l}");
    }
    std::fs::write(path, out)?;
    Ok(())
}

/// Parses a partition file: one label per line, `%` comments allowed.
pub fn labels_from_text(text: &str, num_parts: u32) -> Result<Partition, CliError> {
    let mut labels = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let l: u32 = line
            .parse()
            .map_err(|_| CliError::Failed(format!("line {}: bad label '{line}'", i + 1)))?;
        labels.push(l);
    }
    Partition::new(labels, num_parts).map_err(|e| CliError::Failed(e.to_string()))
}

/// Parses the `--refine` flag (boundary FM when absent).
fn parse_refine(args: &Args) -> Result<RefineScheme, CliError> {
    match args.flag("refine") {
        None => Ok(RefineScheme::default()),
        Some(s) => RefineScheme::by_name(s).ok_or_else(|| {
            CliError::Usage(format!("--refine {s}: expected fm|pfm|pfm-rescan|sweep"))
        }),
    }
}

fn cmd_gen(args: &Args) -> Result<String, CliError> {
    let kind = args.require("kind")?;
    let n: usize = args.flag_parse("nodes", 0)?;
    if n == 0 {
        return Err(CliError::Usage("--nodes must be positive".into()));
    }
    let seed: u64 = args.flag_parse("seed", 42u64)?;
    let graph = match kind {
        "mesh" => jittered_mesh(n, seed),
        "grid" => {
            let side = (n as f64).sqrt().round() as usize;
            grid2d(side.max(1), side.max(1), GridKind::Triangulated)
        }
        "geometric" => {
            let radius: f64 = args.flag_parse("radius", 1.5 / (n as f64).sqrt())?;
            random_geometric(n, radius, seed)
        }
        "gnp" => {
            let p: f64 = args.flag_parse("p", 0.05)?;
            gnp(n, p, seed)
        }
        other => {
            return Err(CliError::Usage(format!(
                "--kind {other}: expected mesh|grid|geometric|gnp"
            )))
        }
    };
    let out = args.require("out")?;
    std::fs::write(out, to_metis(&graph))?;
    let mut report = format!(
        "wrote {out}: {} nodes, {} edges\n",
        graph.num_nodes(),
        graph.num_edges()
    );
    if let Some(coords_out) = args.flag("coords-out") {
        match graph.coords() {
            Some(c) => {
                std::fs::write(coords_out, coords_to_text(c))?;
                let _ = writeln!(report, "wrote {coords_out}: {} coordinates", c.len());
            }
            None => {
                let _ = writeln!(
                    report,
                    "note: {kind} graphs have no coordinates; skipped {coords_out}"
                );
            }
        }
    }
    Ok(report)
}

fn cmd_info(args: &Args) -> Result<String, CliError> {
    let path = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::Usage("info needs a graph file".into()))?;
    let g = load_graph(path, args.flag("coords"))?;
    let (_, components) = crate::graph::traversal::connected_components(&g);
    let mut out = String::new();
    let _ = writeln!(out, "file        : {path}");
    let _ = writeln!(out, "nodes       : {}", g.num_nodes());
    let _ = writeln!(out, "edges       : {}", g.num_edges());
    let _ = writeln!(out, "avg degree  : {:.2}", g.avg_degree());
    let _ = writeln!(out, "max degree  : {}", g.max_degree());
    let _ = writeln!(out, "components  : {components}");
    let _ = writeln!(out, "total weight: {}", g.total_node_weight());
    let _ = writeln!(
        out,
        "coordinates : {}",
        if g.coords().is_some() { "yes" } else { "no" }
    );
    Ok(out)
}

fn cmd_partition(args: &Args) -> Result<String, CliError> {
    let path = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::Usage("partition needs a graph file".into()))?;
    let parts: u32 = args.flag_parse("parts", 0u32)?;
    if parts == 0 {
        return Err(CliError::Usage("--parts must be positive".into()));
    }
    let graph = load_graph(path, args.flag("coords"))?;
    let method = args.flag("method").unwrap_or("dpga");
    let fitness = match args.flag("fitness").unwrap_or("total") {
        "total" => FitnessKind::TotalCut,
        "worst" => FitnessKind::WorstCut,
        other => {
            return Err(CliError::Usage(format!(
                "--fitness {other}: expected total|worst"
            )))
        }
    };
    let gens: usize = args.flag_parse("gens", 150usize)?;
    let pop: usize = args.flag_parse("pop", 320usize)?;
    let seed: u64 = args.flag_parse("seed", 0x5343_3934u64)?;
    let refine_scheme = parse_refine(args)?;
    // `--refine` configures the V-cycle's per-level refinement; flat
    // methods have no refinement stage, so silently accepting the flag
    // there would misreport what ran.
    if args.flag("refine").is_some() && !method.starts_with("ml") {
        return Err(CliError::Usage(format!(
            "--refine applies only to the multilevel (ml*) methods, not {method}"
        )));
    }
    let ml_config = crate::graph::multilevel::MultilevelConfig {
        refine_scheme,
        ..Default::default()
    };

    // Every method goes through the one `Partitioner` abstraction; the
    // match only configures which implementation (and with what budget).
    // The multilevel GA methods honour --fitness like their flat twins
    // but use the coarse-level sizing — the V-cycle, not --gens/--pop,
    // sets their budget.
    let partitioner: Box<dyn Partitioner> = match method {
        "rsb" | "ibp" => crate::partitioners::by_name(method)
            .ok_or_else(|| CliError::Failed(format!("method {method} is not registered")))?,
        "mlrsb" | "mlibp" => crate::partitioners::by_name_with(method, refine_scheme)
            .ok_or_else(|| CliError::Failed(format!("method {method} is not registered")))?,
        "mlga" => {
            let mut config = GaConfig::coarse_defaults(parts).with_fitness(fitness);
            // Coarse-level sizing is the default, but an explicit budget
            // request wins — silently discarding a flag would be worse.
            if args.flag("pop").is_some() {
                config.population_size = pop;
            }
            if args.flag("gens").is_some() {
                config.generations = gens;
            }
            crate::partitioners::multilevel_with(
                "mlga",
                crate::partitioners::tuned_ga(config),
                ml_config,
            )
        }
        "mldpga" => {
            let mut cfg = DpgaConfig::coarse(parts);
            cfg.base = cfg.base.with_fitness(fitness);
            if args.flag("pop").is_some() {
                cfg.base.population_size = pop;
            }
            if args.flag("gens").is_some() {
                cfg.base.generations = gens;
            }
            crate::partitioners::multilevel_with(
                "mldpga",
                crate::partitioners::tuned_dpga(cfg),
                ml_config,
            )
        }
        "ga" => {
            let mut config = GaConfig::paper_defaults(parts)
                .with_fitness(fitness)
                .with_population_size(pop)
                .with_generations(gens)
                .with_hill_climb(HillClimbMode::Offspring { passes: 1 });
            config.boundary_mutation_rate = 0.05;
            config.crossover = CrossoverOp::Dknux;
            crate::partitioners::tuned_ga(config)
        }
        "dpga" => {
            let mut base = GaConfig::paper_defaults(parts)
                .with_fitness(fitness)
                .with_population_size(pop)
                .with_generations(gens)
                .with_hill_climb(HillClimbMode::Offspring { passes: 1 });
            base.boundary_mutation_rate = 0.05;
            crate::partitioners::tuned_dpga(DpgaConfig::paper(parts).with_base(base))
        }
        other => {
            return Err(CliError::Usage(format!(
                "--method {other}: expected dpga|ga|rsb|ibp|mldpga|mlga|mlrsb|mlibp"
            )))
        }
    };
    let report = partitioner
        .partition(&graph, parts, seed)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let partition = report.partition;

    let mut out = render_report(&report.metrics, partition.num_parts(), method);
    if let Some(out_path) = args.flag("out") {
        save_labels(out_path, &partition)?;
        let _ = writeln!(out, "labels written to {out_path}");
    }
    if let Some(svg_path) = args.flag("svg") {
        save_svg(svg_path, &graph, &partition)?;
        let _ = writeln!(out, "svg written to {svg_path}");
    }
    Ok(out)
}

fn save_svg(path: &str, graph: &CsrGraph, partition: &Partition) -> Result<(), CliError> {
    let svg = crate::graph::svg::render_partition(
        graph,
        partition,
        &crate::graph::svg::SvgOptions::default(),
    )
    .map_err(|e| CliError::Failed(format!("svg: {e} (pass --coords for METIS inputs)")))?;
    std::fs::write(path, svg)?;
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<String, CliError> {
    let gpath = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::Usage("eval needs a graph file".into()))?;
    let lpath = args
        .positional
        .get(2)
        .ok_or_else(|| CliError::Usage("eval needs a labels file".into()))?;
    let parts: u32 = args.flag_parse("parts", 0u32)?;
    if parts == 0 {
        return Err(CliError::Usage("--parts must be positive".into()));
    }
    let graph = load_graph(gpath, args.flag("coords"))?;
    let ltext = std::fs::read_to_string(lpath)?;
    let partition = labels_from_text(&ltext, parts)?;
    if partition.num_nodes() != graph.num_nodes() {
        return Err(CliError::Failed(format!(
            "{lpath}: {} labels for {} nodes",
            partition.num_nodes(),
            graph.num_nodes()
        )));
    }
    let mut out = render_metrics(&graph, &partition, "eval");
    if let Some(svg_path) = args.flag("svg") {
        save_svg(svg_path, &graph, &partition)?;
        let _ = writeln!(out, "svg written to {svg_path}");
    }
    Ok(out)
}

fn cmd_grow(args: &Args) -> Result<String, CliError> {
    let path = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::Usage("grow needs a graph file".into()))?;
    let coords = args.require("coords")?;
    let k: usize = args.flag_parse("add", 0usize)?;
    let seed: u64 = args.flag_parse("seed", 7u64)?;
    let graph = load_graph(path, Some(coords))?;
    let result = grow_local(&graph, k, seed).map_err(|e| CliError::Failed(e.to_string()))?;

    let out = args.require("out")?;
    std::fs::write(out, to_metis(&result.graph))?;
    let mut report = format!(
        "grew {} -> {} nodes (anchor {}), wrote {out}\n",
        graph.num_nodes(),
        result.graph.num_nodes(),
        result.anchor
    );
    if let Some(co) = args.flag("coords-out") {
        let coords = result.graph.coords().ok_or_else(|| {
            CliError::Failed("grown graph carries no coordinates; cannot write --coords-out".into())
        })?;
        std::fs::write(co, coords_to_text(coords))?;
        let _ = writeln!(report, "coordinates written to {co}");
    }

    // Optional: incrementally repartition the grown graph.
    if let Some(p) = args.flag("repartition") {
        let parts: u32 = p
            .parse()
            .map_err(|_| CliError::Usage(format!("--repartition {p}: bad part count")))?;
        let old = match args.flag("old-labels") {
            Some(lp) => {
                let text = std::fs::read_to_string(lp)?;
                labels_from_text(&text, parts)?
            }
            None => rsb_partition(&graph, parts, &RsbOptions::default())
                .map_err(|e| CliError::Failed(e.to_string()))?,
        };
        let config = GaConfig::paper_defaults(parts)
            .with_generations(args.flag_parse("gens", 120usize)?)
            .with_population_size(args.flag_parse("pop", 160usize)?)
            .with_seed(seed);
        let res = incremental_ga(&result.graph, &old, config)
            .map_err(|e| CliError::Failed(e.to_string()))?;
        report.push_str(&render_metrics(
            &result.graph,
            &res.best_partition,
            "incremental-ga",
        ));
        if let Some(out_labels) = args.flag("labels-out") {
            save_labels(out_labels, &res.best_partition)?;
            let _ = writeln!(report, "new labels written to {out_labels}");
        }
    }
    Ok(report)
}

fn cmd_trace(args: &Args) -> Result<String, CliError> {
    let path = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::Usage("trace needs a graph file".into()))?;
    let scenario_name = args.require("scenario")?;
    let scenario = Scenario::by_name(scenario_name).ok_or_else(|| {
        CliError::Usage(format!(
            "--scenario {scenario_name}: expected {}",
            Scenario::NAMES.join("|")
        ))
    })?;
    let batches: usize = args.flag_parse("batches", 10usize)?;
    let ops: usize = args.flag_parse("ops", 20usize)?;
    if batches == 0 || ops == 0 {
        return Err(CliError::Usage(
            "--batches and --ops must be positive".into(),
        ));
    }
    let seed: u64 = args.flag_parse("seed", 7u64)?;
    let graph = load_graph(path, args.flag("coords"))?;
    let trace = generate_trace(
        &graph,
        scenario,
        &TraceSpec {
            batches,
            ops_per_batch: ops,
            seed,
        },
    )
    .map_err(|e| CliError::Failed(e.to_string()))?;
    let out = args.require("out")?;
    std::fs::write(out, trace_to_text(&trace))?;
    let mutations: usize = trace.iter().map(Vec::len).sum();
    Ok(format!(
        "wrote {out}: {} {} batches, {mutations} mutations\n",
        trace.len(),
        scenario.name()
    ))
}

/// Builds a [`SessionSpec`] from the `--parts/--method/--refine/--seed/
/// --threshold/--hops` flags. The flag names ARE the spec keys, and the
/// values go through [`SessionSpec::set`] — the same validation path the
/// serve protocol's `open` command and the session tape use, so every
/// surface accepts and rejects identically.
fn spec_from_flags(args: &Args) -> Result<SessionSpec, CliError> {
    let mut spec = SessionSpec::new(0);
    let mut saw_parts = false;
    for key in ["parts", "method", "refine", "seed", "threshold", "hops"] {
        if let Some(v) = args.flag(key) {
            spec.set(key, v)
                .map_err(|e| CliError::Usage(format!("--{key} {v}: {e}")))?;
            saw_parts |= key == "parts";
        }
    }
    if !saw_parts {
        return Err(CliError::Usage("--parts must be set".into()));
    }
    Ok(spec)
}

/// Maps a session-open failure to the CLI's exit discipline: an unknown
/// method is a usage error (the user typed it), everything else failed
/// work.
fn open_error(e: DynamicError) -> CliError {
    match e {
        DynamicError::UnknownMethod(m) => CliError::Usage(format!(
            "--method {m}: expected one of {}",
            crate::partitioners::NAMES.join("|")
        )),
        other => CliError::Failed(other.to_string()),
    }
}

fn cmd_stream(args: &Args) -> Result<String, CliError> {
    let path = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::Usage("stream needs a graph file".into()))?;
    let spec = spec_from_flags(args)?;
    let trace_path = args.require("trace")?;

    let graph = load_graph(path, args.flag("coords"))?;
    let trace_text = std::fs::read_to_string(trace_path)?;
    let trace =
        parse_trace(&trace_text).map_err(|e| CliError::Failed(format!("{trace_path}: {e}")))?;
    // One engine for both refinement surfaces of a stream: the session's
    // dirty-frontier passes and the escalation method's V-cycle.
    let mut session = spec
        .open(graph, crate::partitioners::by_name_with)
        .map_err(open_error)?;

    let mut out = format!(
        "opened session: {} nodes, {} parts, method {}, baseline cut {}\n",
        session.graph().num_nodes(),
        spec.parts,
        spec.method,
        session.baseline_cut()
    );
    let _ = writeln!(
        out,
        "{:>5} {:>6} {:>9} {:>9} {:>8} {:>7} {:>6}  action",
        "batch", "muts", "frontier", "cut-seed", "cut", "moves", "epoch"
    );
    for batch in &trace {
        let rec = session
            .apply_batch(batch)
            .map_err(|e| CliError::Failed(e.to_string()))?;
        let _ = writeln!(
            out,
            "{:>5} {:>6} {:>9} {:>9} {:>8} {:>7} {:>6}  {}",
            rec.batch,
            rec.mutations,
            rec.frontier,
            rec.cut_seeded,
            rec.cut_after,
            rec.refine.moves,
            rec.epoch,
            match rec.action {
                BatchAction::Incremental => "incremental",
                BatchAction::FullRepartition => "FULL",
            }
        );
    }
    let escalations = session
        .history()
        .iter()
        .filter(|r| r.action == BatchAction::FullRepartition)
        .count();
    let _ = writeln!(
        out,
        "replayed {} batches: {escalations} escalation(s), final graph {} nodes",
        trace.len(),
        session.graph().num_nodes()
    );
    out.push_str(&render_metrics(
        session.graph(),
        session.partition(),
        &format!("stream/{}", spec.method),
    ));
    // The determinism witness: the same hash `serve`'s query/replay
    // paths report, so CI can diff live and recovered runs directly.
    let _ = writeln!(
        out,
        "labels hash: {}",
        hash_labels(session.partition().labels())
    );
    if let Some(lp) = args.flag("labels-out") {
        save_labels(lp, session.partition())?;
        let _ = writeln!(out, "labels written to {lp}");
    }
    if let Some(gp) = args.flag("graph-out") {
        std::fs::write(gp, to_metis(session.graph()))?;
        let _ = writeln!(out, "final graph written to {gp}");
    }
    if let Some(cp) = args.flag("coords-out") {
        let coords = session.graph().coords().ok_or_else(|| {
            CliError::Failed(
                "streamed graph carries no coordinates; cannot write --coords-out".into(),
            )
        })?;
        std::fs::write(cp, coords_to_text(coords))?;
        let _ = writeln!(out, "coordinates written to {cp}");
    }
    Ok(out)
}

/// `gapart-cli serve`: the multi-session partition daemon. Commands
/// come from stdin (or a Unix socket with `--socket`); replies go to
/// stdout, one line each, flushed per command. Session tapes live under
/// `--tape-dir`, one `<name>.tape` per session, so a later `serve` run
/// recovers any session by name with a bare `open <name>`.
fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let tape_dir = args.require("tape-dir")?;
    let snapshot_every: usize = args.flag_parse("snapshot-every", 8usize)?;
    let config = crate::serve::ServeConfig {
        tape_dir: tape_dir.into(),
        snapshot_every,
    };
    let mut daemon = crate::serve::Daemon::new(config, crate::partitioners::by_name_with)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let summary = match args.flag("socket") {
        Some(path) => crate::serve::serve_unix(&mut daemon, std::path::Path::new(path))
            .map_err(|e| CliError::Failed(e.to_string()))?,
        None => {
            let stdin = std::io::stdin();
            let mut stdout = std::io::stdout();
            crate::serve::serve(&mut daemon, stdin.lock(), &mut stdout)?
        }
    };
    // EOF without a shutdown command still ends the process: leave every
    // tape with a final snapshot so the next open recovers instantly.
    daemon
        .close_all()
        .map_err(|e| CliError::Failed(e.to_string()))?;
    if summary.errors > 0 {
        return Err(CliError::Failed(format!(
            "{} of {} commands failed (see err replies above)",
            summary.errors, summary.commands
        )));
    }
    Ok(format!(
        "served {} commands ({})\n",
        summary.commands,
        if summary.shutdown { "shutdown" } else { "eof" }
    ))
}

fn render_metrics(graph: &CsrGraph, partition: &Partition, method: &str) -> String {
    let m = PartitionMetrics::compute(graph, partition);
    render_report(&m, partition.num_parts(), method)
}

fn render_report(m: &PartitionMetrics, num_parts: u32, method: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "method     : {method}");
    let _ = writeln!(out, "parts      : {num_parts}");
    let _ = writeln!(out, "total cut  : {}", m.total_cut);
    let _ = writeln!(out, "worst cut  : {}", m.max_cut);
    let _ = writeln!(out, "imbalance  : {:.2}", m.imbalance);
    let _ = writeln!(out, "part loads : {:?}", m.part_loads);
    let _ = writeln!(out, "part cuts  : {:?}", m.part_cuts);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Args {
        parse_args(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn parser_splits_flags_and_positionals() {
        let a = argv("partition g.metis --parts 4 --method rsb");
        assert_eq!(a.positional, vec!["partition", "g.metis"]);
        assert_eq!(a.flag("parts"), Some("4"));
        assert_eq!(a.flag("method"), Some("rsb"));
    }

    #[test]
    fn parser_rejects_missing_value() {
        let err = parse_args(["gen".into(), "--kind".into()]).unwrap_err();
        assert!(err.to_string().contains("--kind"));
    }

    #[test]
    fn parser_rejects_duplicate_flags() {
        let err = parse_args("x --a 1 --a 2".split_whitespace().map(String::from)).unwrap_err();
        assert!(err.to_string().contains("twice"));
    }

    #[test]
    fn unknown_subcommand_is_usage_error() {
        let err = run(&argv("frobnicate")).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&argv("help")).unwrap();
        assert!(out.contains("gapart-cli"));
        assert!(out.contains("partition"));
    }

    #[test]
    fn threads_flag_is_validated_and_installs_a_pool() {
        let err = run(&argv("help --threads nope")).unwrap_err();
        assert!(err.to_string().contains("--threads"));
        // A bounded pool wraps the whole dispatch.
        let out = run(&argv("help --threads 2")).unwrap();
        assert!(out.contains("--threads"), "usage must document the flag");
    }

    #[test]
    fn labels_parse_and_validate() {
        let p = labels_from_text("0\n1\n% comment\n2\n", 3).unwrap();
        assert_eq!(p.labels(), &[0, 1, 2]);
        assert!(labels_from_text("0\n7\n", 3).is_err());
        assert!(labels_from_text("zebra\n", 3).is_err());
    }

    #[test]
    fn end_to_end_gen_info_partition_eval() {
        let dir = std::env::temp_dir().join(format!("gapart-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = dir.join("g.metis");
        let xy = dir.join("g.xy");
        let labels = dir.join("g.part");
        let gs = g.to_str().unwrap();
        let xys = xy.to_str().unwrap();
        let ls = labels.to_str().unwrap();

        // gen
        let out = run(&argv(&format!(
            "gen --kind mesh --nodes 60 --seed 5 --out {gs} --coords-out {xys}"
        )))
        .unwrap();
        assert!(out.contains("60 nodes"));

        // info
        let out = run(&argv(&format!("info {gs}"))).unwrap();
        assert!(out.contains("nodes       : 60"));
        assert!(out.contains("components  : 1"));

        // partition with RSB (fast, deterministic), with an SVG view
        let svg = dir.join("g.svg");
        let out = run(&argv(&format!(
            "partition {gs} --parts 4 --method rsb --coords {xys} --out {ls} --svg {}",
            svg.to_str().unwrap()
        )))
        .unwrap();
        assert!(out.contains("total cut"));
        assert!(out.contains("svg written"));
        let svg_text = std::fs::read_to_string(&svg).unwrap();
        assert!(svg_text.starts_with("<svg"));
        assert_eq!(svg_text.matches("<circle").count(), 60);

        // eval the written labels
        let out = run(&argv(&format!("eval {gs} {ls} --parts 4"))).unwrap();
        assert!(out.contains("part loads"));

        // ibp needs coordinates
        let out = run(&argv(&format!(
            "partition {gs} --parts 4 --method ibp --coords {xys}"
        )))
        .unwrap();
        assert!(out.contains("method     : ibp"));

        // grow
        let g2 = dir.join("g2.metis");
        let xy2 = dir.join("g2.xy");
        let out = run(&argv(&format!(
            "grow {gs} --coords {xys} --add 10 --out {} --coords-out {}",
            g2.to_str().unwrap(),
            xy2.to_str().unwrap()
        )))
        .unwrap();
        assert!(out.contains("60 -> 70 nodes"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_trace_and_stream() {
        let dir = std::env::temp_dir().join(format!("gapart-cli-stream-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = dir.join("g.metis");
        let xy = dir.join("g.xy");
        let trace = dir.join("churn.trace");
        let labels = dir.join("final.part");
        let g2 = dir.join("final.metis");
        let (gs, xys) = (g.to_str().unwrap(), xy.to_str().unwrap());
        let (ts, ls, g2s) = (
            trace.to_str().unwrap(),
            labels.to_str().unwrap(),
            g2.to_str().unwrap(),
        );

        run(&argv(&format!(
            "gen --kind mesh --nodes 120 --seed 3 --out {gs} --coords-out {xys}"
        )))
        .unwrap();

        // Generate a churn trace...
        let out = run(&argv(&format!(
            "trace {gs} --scenario churn --batches 3 --ops 6 --seed 9 --coords {xys} --out {ts}"
        )))
        .unwrap();
        assert!(out.contains("3 churn batches"), "{out}");

        // ...and replay it with a fast deterministic escalation method.
        let out = run(&argv(&format!(
            "stream {gs} --coords {xys} --trace {ts} --parts 4 --method mlrsb \
             --threshold 1.3 --labels-out {ls} --graph-out {g2s}"
        )))
        .unwrap();
        assert!(out.contains("replayed 3 batches"), "{out}");
        assert!(out.contains("stream/mlrsb"), "{out}");
        assert!(out.contains("labels written"), "{out}");

        // The written labels must cover the *final* (churned) graph.
        let final_nodes = std::fs::read_to_string(&g2)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse::<usize>()
            .unwrap();
        let label_count = std::fs::read_to_string(&labels).unwrap().lines().count();
        assert_eq!(label_count, final_nodes);
        assert!(final_nodes > 120, "churn should have grown the graph");

        // Streaming is deterministic: a second replay writes identical labels.
        let first = std::fs::read_to_string(&labels).unwrap();
        run(&argv(&format!(
            "stream {gs} --coords {xys} --trace {ts} --parts 4 --method mlrsb \
             --threshold 1.3 --labels-out {ls}"
        )))
        .unwrap();
        assert_eq!(first, std::fs::read_to_string(&labels).unwrap());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_and_stream_failures_are_typed_errors_not_panics() {
        let dir = std::env::temp_dir().join(format!("gapart-cli-stream2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = dir.join("g.metis");
        let gs = g.to_str().unwrap();
        run(&argv(&format!("gen --kind gnp --nodes 30 --out {gs}"))).unwrap();

        // Unknown scenario: usage error.
        let err = run(&argv(&format!(
            "trace {gs} --scenario lava --batches 2 --ops 2 --out /tmp/x"
        )))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");

        // mesh-growth on a coordinate-less graph: clean failure.
        let err = run(&argv(&format!(
            "trace {gs} --scenario mesh-growth --batches 2 --ops 2 --out /tmp/x"
        )))
        .unwrap_err();
        assert!(err.to_string().contains("coordinates"), "{err}");

        // Unknown stream method: usage error listing the registry.
        let trace = dir.join("t.trace");
        std::fs::write(&trace, "weight 0 2\ncommit\n").unwrap();
        let err = run(&argv(&format!(
            "stream {gs} --trace {} --parts 2 --method frob",
            trace.to_str().unwrap()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("mlga"), "{err}");

        // Malformed trace: failure naming the file and line.
        std::fs::write(&trace, "edge 0 1 1\nzap\n").unwrap();
        let err = run(&argv(&format!(
            "stream {gs} --trace {} --parts 2",
            trace.to_str().unwrap()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");

        // Structurally invalid trace (node out of range): failure, not panic.
        std::fs::write(&trace, "edge 0 999 1\ncommit\n").unwrap();
        let err = run(&argv(&format!(
            "stream {gs} --trace {} --parts 2",
            trace.to_str().unwrap()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");

        // grow without --coords: usage error (the old panic-adjacent path).
        let err = run(&argv(&format!("grow {gs} --add 5 --out /tmp/x"))).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eval_rejects_wrong_label_count() {
        let dir = std::env::temp_dir().join(format!("gapart-cli-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = dir.join("g.metis");
        let l = dir.join("bad.part");
        run(&argv(&format!(
            "gen --kind mesh --nodes 20 --out {}",
            g.to_str().unwrap()
        )))
        .unwrap();
        std::fs::write(&l, "0\n1\n").unwrap();
        let err = run(&argv(&format!(
            "eval {} {} --parts 2",
            g.to_str().unwrap(),
            l.to_str().unwrap()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("labels for"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn refine_flag_selects_the_engine_and_rejects_misuse() {
        let dir = std::env::temp_dir().join(format!("gapart-cli-refine-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = dir.join("g.metis");
        let gs = g.to_str().unwrap();
        run(&argv(&format!(
            "gen --kind mesh --nodes 80 --seed 2 --out {gs}"
        )))
        .unwrap();

        // Every engine runs on an ml* method; each report carries metrics.
        for scheme in ["fm", "pfm", "sweep"] {
            let out = run(&argv(&format!(
                "partition {gs} --parts 4 --method mlrsb --refine {scheme}"
            )))
            .unwrap();
            assert!(out.contains("total cut"), "{scheme}: {out}");
        }
        // The default (no flag) equals --refine fm bit for bit.
        let labels = dir.join("a.part");
        let ls = labels.to_str().unwrap();
        run(&argv(&format!(
            "partition {gs} --parts 4 --method mlrsb --out {ls}"
        )))
        .unwrap();
        let default_labels = std::fs::read_to_string(&labels).unwrap();
        run(&argv(&format!(
            "partition {gs} --parts 4 --method mlrsb --refine fm --out {ls}"
        )))
        .unwrap();
        assert_eq!(default_labels, std::fs::read_to_string(&labels).unwrap());

        // Unknown engine and flat-method misuse are usage errors.
        let err = run(&argv(&format!(
            "partition {gs} --parts 4 --method mlrsb --refine turbo"
        )))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        let err = run(&argv(&format!(
            "partition {gs} --parts 4 --method rsb --refine fm"
        )))
        .unwrap_err();
        assert!(err.to_string().contains("ml*"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gen_rejects_bad_kind_and_missing_nodes() {
        assert!(run(&argv("gen --kind blob --nodes 5 --out /tmp/x")).is_err());
        assert!(run(&argv("gen --kind mesh --out /tmp/x")).is_err());
    }
}
