//! `gapart-cli` — command-line front end for the gapart partitioners.
//!
//! See `gapart-cli help` (or [`gapart::cli::USAGE`]) for the subcommands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match gapart::cli::parse_args(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n\n{}", gapart::cli::USAGE);
            std::process::exit(2);
        }
    };
    match gapart::cli::run(&parsed) {
        Ok(output) => print!("{output}"),
        Err(gapart::cli::CliError::Usage(m)) => {
            eprintln!("usage error: {m}\n\n{}", gapart::cli::USAGE);
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
