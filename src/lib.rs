//! # gapart — Genetic Algorithms for Graph Partitioning
//!
//! Facade crate for the reproduction of Maini, Mehrotra, Mohan & Ranka,
//! *"Genetic Algorithms for Graph Partitioning and Incremental Graph
//! Partitioning"*, Proc. IEEE Supercomputing 1994.
//!
//! This crate re-exports the workspace's public API:
//!
//! * [`graph`] — CSR graphs, generators (including the paper's suite),
//!   incremental local growth, partition metrics.
//! * [`linalg`] — sparse matrices and the Lanczos eigensolver.
//! * [`rsb`] — the recursive-spectral-bisection baseline.
//! * [`ibp`] — the index-based partitioner from the paper's appendix.
//! * [`core`] — the paper's contribution: the GA partitioner with KNUX and
//!   DKNUX crossover, DPGA distributed populations, hill climbing, and
//!   incremental repartitioning.
//! * [`serve`] — the multi-session partition daemon behind
//!   `gapart-cli serve`: session protocol, durable session tape, crash
//!   recovery.
//!
//! ## Quickstart
//!
//! ```
//! use gapart::graph::generators::paper_graph;
//! use gapart::core::{GaConfig, GaEngine, FitnessKind};
//!
//! let graph = paper_graph(78);
//! let config = GaConfig::paper_defaults(4)      // 4 parts, paper's DPGA params
//!     .with_generations(60)
//!     .with_seed(42);
//! let result = GaEngine::new(&graph, config).unwrap().run();
//! assert!(result.best_metrics.total_cut > 0);
//! let _ = FitnessKind::TotalCut;
//! ```
//!
//! Every algorithm is also reachable through the unified
//! [`graph::partitioner::Partitioner`] trait via the [`partitioners`]
//! registry — the same dispatch path the CLI's `--method` flag uses:
//!
//! ```
//! use gapart::graph::generators::paper_graph;
//! use gapart::partitioners;
//!
//! let graph = paper_graph(78);
//! let rsb = partitioners::by_name("rsb").unwrap();
//! let report = rsb.partition(&graph, 4, 42).unwrap();
//! assert_eq!(report.algorithm, "rsb");
//! assert_eq!(report.partition.num_nodes(), 78);
//! assert!(report.metrics.total_cut > 0);
//! ```

pub use gapart_core as core;
pub use gapart_graph as graph;
pub use gapart_ibp as ibp;
pub use gapart_linalg as linalg;
pub use gapart_rsb as rsb;
pub use gapart_serve as serve;

pub mod cli;
pub mod partitioners;
