//! CLI for the workspace determinism/scale lint.
//!
//! Exit codes: 0 — clean (every finding baselined), 1 — new findings
//! (or baseline update needed), 2 — usage or I/O error.

use gapart_lint::baseline::Baseline;
use gapart_lint::engine::{apply_baseline, baseline_from_findings, scan_workspace, Ratchet};
use gapart_lint::rules::RULES;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
gapart-lint — workspace determinism/scale static analysis

USAGE:
    gapart-lint --workspace [OPTIONS]
    gapart-lint --list-rules

OPTIONS:
    --workspace            Scan the workspace source trees (required to scan)
    --root <DIR>           Workspace root (default: current directory)
    --baseline <FILE>      Baseline path (default: <root>/lint-baseline.toml)
    --update-baseline      Rewrite the baseline to match this scan's findings
    --no-baseline          Ignore the baseline: report every finding, fail on any
    --format <FMT>         Report format: text (default) or github
                           (::warning annotations for over-budget findings)
    --explain <RULE>       Print a rule's rationale and witness example, then exit
    --list-rules           Print the rule table and exit

Suppress a finding in source with a comment on its line or the line above:
    gapart-lint: allow(<rule>) -- <reason>

Exit codes: 0 clean, 1 findings over baseline, 2 usage/IO error.";

/// Prints a line to stdout, ignoring write errors — a downstream
/// `| head` closing the pipe must not turn the report into a panic.
fn out(args: std::fmt::Arguments) {
    use std::io::Write as _;
    let _ = std::io::stdout().write_fmt(args);
    let _ = std::io::stdout().write_all(b"\n");
}

macro_rules! out {
    ($($t:tt)*) => { out(format_args!($($t)*)) };
}

struct Options {
    workspace: bool,
    root: PathBuf,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    no_baseline: bool,
    list_rules: bool,
    github: bool,
    explain: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        workspace: false,
        root: PathBuf::from("."),
        baseline: None,
        update_baseline: false,
        no_baseline: false,
        list_rules: false,
        github: false,
        explain: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => o.workspace = true,
            "--root" => {
                o.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                o.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?));
            }
            "--update-baseline" => o.update_baseline = true,
            "--no-baseline" => o.no_baseline = true,
            "--list-rules" => o.list_rules = true,
            "--format" => match it.next().map(String::as_str) {
                Some("text") => o.github = false,
                Some("github") => o.github = true,
                Some(other) => return Err(format!("unknown format `{other}` (text|github)")),
                None => return Err("--format needs a value (text|github)".into()),
            },
            "--explain" => {
                o.explain = Some(it.next().ok_or("--explain needs a rule name")?.clone());
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(o)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                out!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if let Some(name) = &opts.explain {
        let Some(r) = gapart_lint::rules::rule_by_name(name) else {
            eprintln!("error: unknown rule `{name}` (see --list-rules)");
            return ExitCode::from(2);
        };
        out!("{}\n    {}\n", r.name, r.desc);
        out!("WHY");
        for line in squeeze(r.why).lines() {
            out!("    {line}");
        }
        out!("\nEXAMPLE");
        for line in r.example.lines() {
            out!("    {}", line.trim_start());
        }
        return ExitCode::SUCCESS;
    }
    if opts.list_rules {
        for r in RULES {
            out!("{:<20} {}", r.name, r.desc);
        }
        return ExitCode::SUCCESS;
    }
    if !opts.workspace {
        eprintln!("error: nothing to do (pass --workspace or --list-rules)\n\n{USAGE}");
        return ExitCode::from(2);
    }
    if !opts.root.join("Cargo.toml").is_file() {
        eprintln!(
            "error: {} does not look like the workspace root (no Cargo.toml); use --root",
            opts.root.display()
        );
        return ExitCode::from(2);
    }

    let findings = match scan_workspace(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("lint-baseline.toml"));

    if opts.update_baseline {
        let b = baseline_from_findings(&findings);
        if let Err(e) = std::fs::write(&baseline_path, b.to_toml()) {
            eprintln!("error: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        out!(
            "gapart-lint: baseline rewritten with {} findings across {} files -> {}",
            findings.len(),
            b.allowed.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if opts.no_baseline {
        Baseline::default()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!(
                    "error: reading {}: {e} (run with --update-baseline to create it)",
                    baseline_path.display()
                );
                return ExitCode::from(2);
            }
        }
    };

    let ratchet = apply_baseline(&findings, &baseline);
    report(&ratchet, opts.github);
    if ratchet.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Reflows a doc-style string (single newlines + indent runs collapse
/// to one space) and wraps it to ~72 columns for terminal output.
fn squeeze(text: &str) -> String {
    let words: Vec<&str> = text.split_whitespace().collect();
    let mut out = String::new();
    let mut col = 0;
    for w in words {
        if col > 0 && col + 1 + w.len() > 72 {
            out.push('\n');
            col = 0;
        } else if col > 0 {
            out.push(' ');
            col += 1;
        }
        out.push_str(w);
        col += w.len();
    }
    out
}

/// Escapes a message for a GitHub workflow-command annotation.
fn gh_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

fn report(r: &Ratchet, github: bool) {
    if github {
        for over in &r.over {
            for f in &over.findings {
                out!(
                    "::warning file={},line={}::gapart-lint[{}]: {}",
                    f.file,
                    f.line,
                    f.rule,
                    gh_escape(&f.excerpt)
                );
            }
        }
    }
    for over in &r.over {
        eprintln!(
            "NEW {} [{}]: {} finding(s), baseline allows {}",
            over.file, over.rule, over.found, over.allowed
        );
        for f in &over.findings {
            eprintln!("    {}:{}: {}", f.file, f.line, f.excerpt);
        }
    }
    for (file, rule, found, allowed) in &r.stale {
        eprintln!(
            "stale baseline: {file} [{rule}] allows {allowed}, scan found {found} — \
             shrink it with --update-baseline"
        );
    }
    let verdict = if r.ok() { "OK" } else { "FAIL" };
    out!(
        "gapart-lint: {} findings ({} baselined, {} over budget in {} group(s)) — {verdict}",
        r.total,
        r.baselined,
        r.total - r.baselined,
        r.over.len()
    );
    write_step_summary(r);
}

/// Appends a markdown digest to `$GITHUB_STEP_SUMMARY` when CI provides
/// it, so failures are readable without opening the log.
fn write_step_summary(r: &Ratchet) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if path.is_empty() || r.ok() {
        return;
    }
    let mut md = String::from("### gapart-lint: new findings over baseline\n\n");
    md.push_str("| file | rule | found | allowed |\n|---|---|---|---|\n");
    for over in &r.over {
        let _ = writeln!(
            md,
            "| `{}` | {} | {} | {} |",
            over.file, over.rule, over.found, over.allowed
        );
    }
    md.push('\n');
    for over in &r.over {
        for f in &over.findings {
            let _ = writeln!(md, "- `{}:{}` [{}] `{}`", f.file, f.line, f.rule, f.excerpt);
        }
    }
    md.push_str(
        "\nFix the finding, suppress it in source with \
         `gapart-lint: allow(<rule>) -- <reason>`, or (for accepted debt) \
         regenerate the baseline with `--update-baseline`.\n",
    );
    use std::io::Write as _;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(md.as_bytes());
    }
}
