//! The rule table: what each rule matches and where it applies.
//!
//! Every rule is grounded in a repo invariant the runtime determinism
//! matrix can only *sample*:
//!
//! * `det-hash-iter` — `HashMap`/`HashSet` in result-affecting crates.
//!   Iteration order is randomized per process, so any hash collection
//!   whose iteration can reach labels or cuts breaks the bit-identity
//!   contract. Use `BTreeMap`/`BTreeSet`, or keep the hash map strictly
//!   probe-only and suppress with the reason.
//! * `det-wallclock` — `Instant::now`/`SystemTime` outside `crates/bench`.
//!   Wall-clock reads feeding anything but a bench report make output
//!   timing-dependent.
//! * `det-thread-id` — thread-identity APIs (`thread::current`,
//!   `ThreadId`, rayon's `current_thread_index`, `thread_rng`). Output
//!   influenced by *which* thread ran is the canonical scheduling leak.
//! * `cast-truncate` — `as u32` inside the `u32` CSR core (`csr.rs`,
//!   `coarsen.rs`, `fm.rs`). The PR 7 `SmallCsr` overflow safety rests on
//!   every `usize → u32` crossing going through the checked
//!   `from_usize_offsets`-style constructors; a bare `as u32` silently
//!   truncates past 4 Gi entries.
//! * `lib-panic` — `unwrap`/`expect`/`panic!` in library code outside
//!   `#[cfg(test)]` / `debug_assert`. Library crates surface
//!   `GraphError`/`GaError`; panics belong to bins and tests.
//! * `par-side-effect` — a `par_iter`/`par_chunks` closure that mutates
//!   captured state (`&mut` on a non-local, `.lock()`, atomic
//!   `fetch_*`). The frozen-scan/sequential-apply idiom requires the
//!   parallel scan phase to stay pure; shared mutation makes results
//!   scheduling-dependent.
//! * `float-reduce-order` — a float reduction (`.sum::<f32/f64>()`, a
//!   float-seeded `fold`) inside a parallel iterator chain. Float
//!   addition is not associative, so reduction order breaks
//!   bit-identity across pool sizes.
//! * `panic-reach` — call-graph pass: a `pub` library function that
//!   *transitively* reaches a panic site (`unwrap`/`expect`/`panic!`/
//!   indexing). Reported with the full witness call path.
//! * `det-taint` — call-graph pass: a nondeterminism site
//!   (hash-iteration, wall-clock, thread-identity) reachable from a
//!   pipeline entry point (`Partitioner::partition` impls,
//!   `MultilevelPartitioner`, `DynamicSession`, `fm::ParallelFm`).
//! * `suppression-syntax` — a malformed or unknown-rule suppression
//!   directive. A typo'd suppression must fail loudly, not silently
//!   leave the finding live (or worse, look suppressed in review).

/// A single lint rule: name, rationale, and the code patterns it flags.
pub struct Rule {
    /// Kebab-case rule id, as used in suppressions and the baseline.
    pub name: &'static str,
    /// One-line rationale shown by `--list-rules`.
    pub desc: &'static str,
    /// Substring patterns matched against stripped code lines. Empty for
    /// rules driven by a dedicated pass (suppression parsing, parallel
    /// regions, call-graph propagation).
    pub patterns: &'static [&'static str],
    /// Longer rationale for `--explain`: what invariant the rule guards
    /// and what to do about a finding.
    pub why: &'static str,
    /// A minimal witness example for `--explain`.
    pub example: &'static str,
}

/// All rules, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "det-hash-iter",
        desc: "HashMap/HashSet in result-affecting code: iteration order can leak into labels/cuts; use BTreeMap/BTreeSet or sort before iterating",
        patterns: &["HashMap", "HashSet"],
        why: "std's hash collections randomize iteration order per process. Any \
              iteration whose order can reach partition labels, cut costs, or tie-breaks \
              violates the bit-identity contract pinned by tests/fm_determinism.rs and \
              the CI thread matrix. Replace with BTreeMap/BTreeSet, or keep the map \
              strictly probe-only and suppress with the reason.",
        example: "for (k, v) in hash_map.iter() { labels[k] = v; }  // order leaks\n\
                  for (k, v) in btree_map.iter() { labels[k] = v; } // fixed order",
    },
    Rule {
        name: "det-wallclock",
        desc: "wall-clock read outside crates/bench: Instant::now/SystemTime make output timing-dependent",
        patterns: &["Instant::now", "SystemTime"],
        why: "A wall-clock read feeding anything but a bench report makes output depend \
              on machine load: a time-based cutoff can stop refinement one pass earlier \
              on a slow run and change the partition. Budget by iteration counts instead; \
              measure time only in crates/bench.",
        example: "let t0 = Instant::now();\nwhile t0.elapsed() < budget { refine(); } // timing-dependent\n\
                  for _ in 0..max_passes { refine(); }             // deterministic",
    },
    Rule {
        name: "det-thread-id",
        desc: "thread-identity API: output influenced by which thread ran breaks pool-size bit-identity",
        patterns: &["thread::current", "ThreadId", "current_thread_index", "thread_rng"],
        why: "Output influenced by *which* thread executed a closure is the canonical \
              scheduling leak: per-thread RNGs, thread-indexed scratch selection, or \
              ThreadId ordering all change results with pool size. Seed RNGs from the \
              data (vertex id, round), not the executor.",
        example: "let r = thread_rng().gen::<u64>();      // differs per schedule\n\
                  let r = SplitMix64::new(seed ^ v).next(); // pure fn of data",
    },
    Rule {
        name: "cast-truncate",
        desc: "bare `as u32` in the u32 CSR core: silently truncates past u32::MAX; use the checked from_usize_offsets-style crossings",
        patterns: &["as u32"],
        why: "SmallCsr's overflow safety rests on every usize->u32 crossing going \
              through a checked constructor (from_usize_offsets returns \
              GraphError::AdjacencyOverflow). A bare `as u32` silently wraps past \
              4 Gi entries and corrupts adjacency on the 10M-node path.",
        example: "let off = total as u32;                 // wraps at 4 Gi\n\
                  let off = u32::try_from(total)?;         // surfaces the overflow",
    },
    Rule {
        name: "lib-panic",
        desc: "unwrap/expect/panic! in library code outside #[cfg(test)]/debug_assert: library crates return typed errors",
        patterns: &[".unwrap()", ".expect(", "panic!("],
        why: "Library crates surface GraphError/GaError; panics belong to bins and \
              tests. In the partition-as-a-service direction a reachable panic is an \
              outage, not a stack trace. Return a typed error, or suppress with the \
              invariant that makes the panic unreachable.",
        example: "let last = xadj.last().unwrap();        // panics on empty\n\
                  let last = xadj.last().ok_or(GraphError::Empty)?;",
    },
    Rule {
        name: "par-side-effect",
        desc: "parallel-iterator closure mutates captured state (&mut capture, .lock(), atomic fetch_*): the scan phase must stay pure",
        patterns: &[],
        why: "The repo's deterministic-parallelism idiom is frozen scan / sequential \
              apply: par_iter closures read frozen state and return values; all \
              mutation happens in a later index-ordered sequential phase. A closure \
              that mutates captured state (&mut on a non-local, a Mutex lock, an \
              atomic fetch_*) reintroduces scheduling order into results. \
              Closure-local `let mut` scratch is fine.",
        example: "items.par_iter().for_each(|v| shared.lock().push(v)); // order leaks\n\
                  let out: Vec<_> = items.par_iter().map(score).collect(); // pure scan",
    },
    Rule {
        name: "float-reduce-order",
        desc: "float reduction (.sum::<f32/f64>, float-seeded fold) inside a parallel iterator: reduction order breaks bit-identity",
        patterns: &[],
        why: "Float addition is not associative: a parallel sum's result depends on \
              how the runtime splits the input, so the same graph can produce \
              different cuts at different pool sizes. Reduce floats sequentially in \
              index order, or accumulate in integers (the cut/gain path uses \
              i64/u64 for exactly this reason).",
        example: "let s: f64 = xs.par_iter().map(score).sum::<f64>();   // split-dependent\n\
                  let s: f64 = xs.iter().map(score).sum::<f64>();       // index order",
    },
    Rule {
        name: "panic-reach",
        desc: "pub library function transitively reaches a panic site (unwrap/expect/panic!/indexing); witness call path in the message",
        patterns: &[],
        why: "The line-level lib-panic rule only sees direct panics; a public API \
              that reaches unwrap() three calls deep is the same outage in \
              production. This call-graph pass seeds at panic sites (including \
              slice indexing), propagates up caller edges (best-effort name \
              resolution; ambiguous edges marked), and reports pub functions in the \
              library crates with a concrete witness path. Fix the leaf, or \
              suppress on the pub fn with the invariant that bounds the index.",
        example: "pub fn api(g: &Graph) -> u32 { helper(g) }\n\
                  fn helper(g: &Graph) -> u32 { g.xadj[0] } // api -> helper -> index panic",
    },
    Rule {
        name: "det-taint",
        desc: "nondeterminism site reachable from a pipeline entry point (partition impls, MultilevelPartitioner, DynamicSession, ParallelFm)",
        patterns: &[],
        why: "A hash-order iteration (or wall-clock/thread-identity read) is only \
              fatal when the pipeline can actually reach it. This call-graph pass \
              seeds at det-hash-iter/det-wallclock/det-thread-id sites and reports \
              the ones reachable from the solver entry points, with the entry->site \
              witness path — exactly the latent nondeterminism the dynamic \
              thread-matrix can miss when a code path isn't exercised.",
        example: "impl Partitioner for X { fn partition(..) { seed_order(g) } }\n\
                  fn seed_order(g: &Graph) { for v in hash_set.iter() { .. } } // reachable",
    },
    Rule {
        name: "suppression-syntax",
        desc: "malformed gapart-lint suppression: must be `gapart-lint: allow(<known-rule>) -- <reason>`",
        patterns: &[],
        why: "A typo'd suppression must fail loudly: a directive that silently fails \
              to parse would leave the finding live (or worse, look suppressed in \
              review). Unknown rule names and missing reasons are findings.",
        example: "// gapart-lint: allow(lib-panick) -- oops     (unknown rule: finding)\n\
                  // gapart-lint: allow(lib-panic) -- len checked above  (valid)",
    },
];

/// Looks a rule up by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// The three files forming the `u32` CSR core (see `SmallCsr`).
const CAST_SCOPE: &[&str] = &[
    "crates/graph/src/csr.rs",
    "crates/graph/src/coarsen.rs",
    "crates/graph/src/fm.rs",
];

/// The library crates whose `pub` surface `panic-reach` covers: a panic
/// behind these APIs is a service outage, not a CLI exit.
const PANIC_REACH_SCOPE: &[&str] = &[
    "crates/graph/src/",
    "crates/core/src/",
    "crates/rsb/src/",
    "crates/ibp/src/",
    "crates/linalg/src/",
];

/// Whether `rule` applies to the workspace-relative path `relpath`
/// (forward slashes). Scopes mirror the invariants: bench code measures
/// time and threads legitimately; the CSR-core cast rule is per-file.
pub fn in_scope(rule: &str, relpath: &str) -> bool {
    match rule {
        "det-hash-iter" | "det-wallclock" | "det-thread-id" | "par-side-effect"
        | "float-reduce-order" | "det-taint" => !relpath.starts_with("crates/bench/"),
        "cast-truncate" => CAST_SCOPE.contains(&relpath),
        "lib-panic" => !relpath.starts_with("crates/bench/") && !relpath.starts_with("src/bin/"),
        "panic-reach" => PANIC_REACH_SCOPE.iter().any(|p| relpath.starts_with(p)),
        "suppression-syntax" => true,
        _ => false,
    }
}

/// Counts non-overlapping occurrences of `pat` in `hay`.
pub fn count_matches(hay: &str, pat: &str) -> usize {
    if pat.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut rest = hay;
    while let Some(pos) = rest.find(pat) {
        n += 1;
        rest = &rest[pos + pat.len()..];
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_name_resolves() {
        for r in RULES {
            assert_eq!(rule_by_name(r.name).map(|x| x.name), Some(r.name));
        }
        assert!(rule_by_name("no-such-rule").is_none());
    }

    #[test]
    fn every_rule_has_explain_material() {
        for r in RULES {
            assert!(!r.why.trim().is_empty(), "{} has no why", r.name);
            assert!(!r.example.trim().is_empty(), "{} has no example", r.name);
        }
    }

    #[test]
    fn scopes_follow_the_invariants() {
        assert!(in_scope("det-hash-iter", "crates/graph/src/geometry.rs"));
        assert!(!in_scope("det-hash-iter", "crates/bench/src/json.rs"));
        assert!(in_scope("det-wallclock", "crates/core/src/engine.rs"));
        assert!(!in_scope(
            "det-wallclock",
            "crates/bench/src/bin/benchsuite.rs"
        ));
        assert!(in_scope("cast-truncate", "crates/graph/src/fm.rs"));
        assert!(!in_scope("cast-truncate", "crates/graph/src/builder.rs"));
        assert!(in_scope("lib-panic", "src/cli.rs"));
        assert!(!in_scope("lib-panic", "src/bin/gapart-cli.rs"));
        assert!(!in_scope("lib-panic", "crates/bench/src/runner.rs"));
        assert!(in_scope("par-side-effect", "crates/graph/src/fm.rs"));
        assert!(!in_scope("par-side-effect", "crates/bench/src/runner.rs"));
        assert!(in_scope(
            "float-reduce-order",
            "crates/graph/src/coarsen.rs"
        ));
        assert!(in_scope("panic-reach", "crates/graph/src/fm.rs"));
        assert!(in_scope("panic-reach", "crates/linalg/src/tridiag.rs"));
        assert!(!in_scope("panic-reach", "src/cli.rs"));
        assert!(!in_scope("panic-reach", "crates/lint/src/engine.rs"));
        assert!(in_scope("det-taint", "crates/core/src/dynamic.rs"));
        assert!(!in_scope("det-taint", "crates/bench/src/json.rs"));
    }

    #[test]
    fn match_counting_is_non_overlapping() {
        assert_eq!(count_matches("x as u32; y as u32", "as u32"), 2);
        assert_eq!(count_matches("aaaa", "aa"), 2);
        assert_eq!(count_matches("abc", ""), 0);
    }
}
