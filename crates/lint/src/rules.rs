//! The rule table: what each rule matches and where it applies.
//!
//! Every rule is grounded in a repo invariant the runtime determinism
//! matrix can only *sample*:
//!
//! * `det-hash-iter` — `HashMap`/`HashSet` in result-affecting crates.
//!   Iteration order is randomized per process, so any hash collection
//!   whose iteration can reach labels or cuts breaks the bit-identity
//!   contract. Use `BTreeMap`/`BTreeSet`, or keep the hash map strictly
//!   probe-only and suppress with the reason.
//! * `det-wallclock` — `Instant::now`/`SystemTime` outside `crates/bench`.
//!   Wall-clock reads feeding anything but a bench report make output
//!   timing-dependent.
//! * `det-thread-id` — thread-identity APIs (`thread::current`,
//!   `ThreadId`, rayon's `current_thread_index`, `thread_rng`). Output
//!   influenced by *which* thread ran is the canonical scheduling leak.
//! * `cast-truncate` — `as u32` inside the `u32` CSR core (`csr.rs`,
//!   `coarsen.rs`, `fm.rs`). The PR 7 `SmallCsr` overflow safety rests on
//!   every `usize → u32` crossing going through the checked
//!   `from_usize_offsets`-style constructors; a bare `as u32` silently
//!   truncates past 4 Gi entries.
//! * `lib-panic` — `unwrap`/`expect`/`panic!` in library code outside
//!   `#[cfg(test)]` / `debug_assert`. Library crates surface
//!   `GraphError`/`GaError`; panics belong to bins and tests.
//! * `suppression-syntax` — a malformed or unknown-rule suppression
//!   directive. A typo'd suppression must fail loudly, not silently
//!   leave the finding live (or worse, look suppressed in review).

/// A single lint rule: name, rationale, and the code patterns it flags.
pub struct Rule {
    /// Kebab-case rule id, as used in suppressions and the baseline.
    pub name: &'static str,
    /// One-line rationale shown by `--list-rules`.
    pub desc: &'static str,
    /// Substring patterns matched against stripped code lines.
    pub patterns: &'static [&'static str],
}

/// All rules, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "det-hash-iter",
        desc: "HashMap/HashSet in result-affecting code: iteration order can leak into labels/cuts; use BTreeMap/BTreeSet or sort before iterating",
        patterns: &["HashMap", "HashSet"],
    },
    Rule {
        name: "det-wallclock",
        desc: "wall-clock read outside crates/bench: Instant::now/SystemTime make output timing-dependent",
        patterns: &["Instant::now", "SystemTime"],
    },
    Rule {
        name: "det-thread-id",
        desc: "thread-identity API: output influenced by which thread ran breaks pool-size bit-identity",
        patterns: &["thread::current", "ThreadId", "current_thread_index", "thread_rng"],
    },
    Rule {
        name: "cast-truncate",
        desc: "bare `as u32` in the u32 CSR core: silently truncates past u32::MAX; use the checked from_usize_offsets-style crossings",
        patterns: &["as u32"],
    },
    Rule {
        name: "lib-panic",
        desc: "unwrap/expect/panic! in library code outside #[cfg(test)]/debug_assert: library crates return typed errors",
        patterns: &[".unwrap()", ".expect(", "panic!("],
    },
    Rule {
        name: "suppression-syntax",
        desc: "malformed gapart-lint suppression: must be `gapart-lint: allow(<known-rule>) -- <reason>`",
        patterns: &[],
    },
];

/// Looks a rule up by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// The three files forming the `u32` CSR core (see `SmallCsr`).
const CAST_SCOPE: &[&str] = &[
    "crates/graph/src/csr.rs",
    "crates/graph/src/coarsen.rs",
    "crates/graph/src/fm.rs",
];

/// Whether `rule` applies to the workspace-relative path `relpath`
/// (forward slashes). Scopes mirror the invariants: bench code measures
/// time and threads legitimately; the CSR-core cast rule is per-file.
pub fn in_scope(rule: &str, relpath: &str) -> bool {
    match rule {
        "det-hash-iter" | "det-wallclock" | "det-thread-id" => {
            !relpath.starts_with("crates/bench/")
        }
        "cast-truncate" => CAST_SCOPE.contains(&relpath),
        "lib-panic" => !relpath.starts_with("crates/bench/") && !relpath.starts_with("src/bin/"),
        "suppression-syntax" => true,
        _ => false,
    }
}

/// Counts non-overlapping occurrences of `pat` in `hay`.
pub fn count_matches(hay: &str, pat: &str) -> usize {
    if pat.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut rest = hay;
    while let Some(pos) = rest.find(pat) {
        n += 1;
        rest = &rest[pos + pat.len()..];
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_name_resolves() {
        for r in RULES {
            assert_eq!(rule_by_name(r.name).map(|x| x.name), Some(r.name));
        }
        assert!(rule_by_name("no-such-rule").is_none());
    }

    #[test]
    fn scopes_follow_the_invariants() {
        assert!(in_scope("det-hash-iter", "crates/graph/src/geometry.rs"));
        assert!(!in_scope("det-hash-iter", "crates/bench/src/json.rs"));
        assert!(in_scope("det-wallclock", "crates/core/src/engine.rs"));
        assert!(!in_scope(
            "det-wallclock",
            "crates/bench/src/bin/benchsuite.rs"
        ));
        assert!(in_scope("cast-truncate", "crates/graph/src/fm.rs"));
        assert!(!in_scope("cast-truncate", "crates/graph/src/builder.rs"));
        assert!(in_scope("lib-panic", "src/cli.rs"));
        assert!(!in_scope("lib-panic", "src/bin/gapart-cli.rs"));
        assert!(!in_scope("lib-panic", "crates/bench/src/runner.rs"));
    }

    #[test]
    fn match_counting_is_non_overlapping() {
        assert_eq!(count_matches("x as u32; y as u32", "as u32"), 2);
        assert_eq!(count_matches("aaaa", "aa"), 2);
        assert_eq!(count_matches("abc", ""), 0);
    }
}
