//! Comment/string-stripping tokenizer and `#[cfg(test)]` region masking.
//!
//! The scanner deliberately stays at the token level — no `syn`, no full
//! parse — because the workspace's compat-shim policy forbids pulling a
//! parser stack, and because every rule this crate enforces is expressible
//! over stripped source lines. The stripping pass removes exactly the two
//! things that would otherwise produce false positives: comment text
//! (rule patterns quoted in docs) and the *contents* of string/char
//! literals (patterns embedded in messages or tables). Comment text is
//! preserved separately per line so suppression directives can be read
//! back out of it.

/// One source line after stripping.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line with comments removed and string/char literal contents
    /// blanked. Delimiting quotes are kept so the code still "reads".
    pub code: String,
    /// Concatenated text of every comment that starts or continues on
    /// this line (without the `//`, `/*`, `*/` markers).
    pub comment: String,
    /// Original, unstripped text (for excerpts in findings).
    pub raw: String,
    /// True when the line sits inside a `#[cfg(test)]`- or
    /// `cfg(debug_assertions)`-gated brace block.
    pub in_test: bool,
}

/// A whole file, stripped and test-masked, ready for rule matching.
#[derive(Debug, Clone)]
pub struct StrippedFile {
    /// Lines in order; `lines[i]` is source line `i + 1`.
    pub lines: Vec<Line>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    Block(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Strips `text` and computes the per-line test mask.
pub fn strip(text: &str) -> StrippedFile {
    let mut lines: Vec<Line> = Vec::new();
    let mut cur = Line::default();
    let mut state = State::Code;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let n = chars.len();
    while i < n {
        let c = chars[i];
        if c == '\n' {
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        cur.raw.push(c);
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                match c {
                    '/' if next == Some('/') => {
                        // Line comment: the rest of the line is comment
                        // text, whatever it contains. Doc markers (`///`,
                        // `//!`) stay out of the comment text but in raw.
                        let mut j = i + 1;
                        while j < n && (chars[j] == '/' || chars[j] == '!') {
                            cur.raw.push(chars[j]);
                            j += 1;
                        }
                        while j < n && chars[j] != '\n' {
                            cur.comment.push(chars[j]);
                            cur.raw.push(chars[j]);
                            j += 1;
                        }
                        i = j;
                        continue;
                    }
                    '/' if next == Some('*') => {
                        state = State::Block(1);
                        cur.raw.push('*');
                        i += 2;
                        continue;
                    }
                    '"' => {
                        cur.code.push('"');
                        state = State::Str;
                    }
                    // The raw/byte-string openers require the `r`/`b` to
                    // start its own token: `helper_r#"…"#`-style
                    // identifiers ending in `r` or `b` must not open a
                    // literal and silently swallow the code that follows.
                    'r' if token_start(&chars, i)
                        && matches!(next, Some('"') | Some('#'))
                        && raw_str_at(&chars, i + 1).is_some() =>
                    {
                        let hashes = raw_str_at(&chars, i + 1).unwrap_or(0);
                        cur.code.push('r');
                        for _ in 0..hashes {
                            cur.code.push('#');
                            cur.raw.push('#');
                        }
                        cur.code.push('"');
                        cur.raw.push('"');
                        i += 1 + hashes as usize + 1;
                        state = State::RawStr(hashes);
                        continue;
                    }
                    'b' if token_start(&chars, i) && next == Some('"') => {
                        cur.code.push_str("b\"");
                        cur.raw.push('"');
                        i += 2;
                        state = State::Str;
                        continue;
                    }
                    'b' if token_start(&chars, i) && next == Some('\'') => {
                        cur.code.push_str("b'");
                        cur.raw.push('\'');
                        i += 2;
                        state = State::Char;
                        continue;
                    }
                    'b' if token_start(&chars, i)
                        && next == Some('r')
                        && raw_str_at(&chars, i + 2).is_some() =>
                    {
                        let hashes = raw_str_at(&chars, i + 2).unwrap_or(0);
                        cur.code.push_str("br");
                        cur.raw.push('r');
                        for _ in 0..hashes {
                            cur.code.push('#');
                            cur.raw.push('#');
                        }
                        cur.code.push('"');
                        cur.raw.push('"');
                        i += 2 + hashes as usize + 1;
                        state = State::RawStr(hashes);
                        continue;
                    }
                    '\'' => {
                        // Char literal vs lifetime: a backslash makes it a
                        // literal; otherwise it is a literal only when the
                        // char after next closes it (`'a'`).
                        if next == Some('\\')
                            || (chars.get(i + 2).copied() == Some('\'') && next != Some('\''))
                        {
                            cur.code.push('\'');
                            state = State::Char;
                        } else {
                            cur.code.push('\'');
                        }
                    }
                    _ => cur.code.push(c),
                }
            }
            State::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    cur.raw.push('/');
                    i += 2;
                    state = if depth == 1 {
                        // Leave a space so tokens on either side of the
                        // comment do not fuse.
                        cur.code.push(' ');
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                    continue;
                }
                if c == '/' && next == Some('*') {
                    cur.raw.push('*');
                    i += 2;
                    state = State::Block(depth + 1);
                    continue;
                }
                cur.comment.push(c);
            }
            State::Str => {
                if c == '\\' {
                    // Skip the escaped char — unless it is a newline
                    // (line-continuation), which must still fall through
                    // to the line tracker above.
                    if let Some(nc) = chars.get(i + 1) {
                        if *nc != '\n' {
                            cur.raw.push(*nc);
                            i += 2;
                            continue;
                        }
                    }
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Code;
                }
                // String contents are dropped from `code`.
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i + 1, hashes) {
                    cur.code.push('"');
                    for k in 0..hashes as usize {
                        cur.code.push('#');
                        cur.raw.push(chars[i + 1 + k]);
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                    continue;
                }
            }
            State::Char => {
                if c == '\\' {
                    if let Some(nc) = chars.get(i + 1) {
                        if *nc != '\n' {
                            cur.raw.push(*nc);
                            i += 2;
                            continue;
                        }
                    }
                } else if c == '\'' {
                    cur.code.push('\'');
                    state = State::Code;
                }
            }
        }
        i += 1;
    }
    if !cur.raw.is_empty() || !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    mask_test_regions(&mut lines);
    StrippedFile { lines }
}

/// Whether `chars[at]` starts a token: the previous char is not an
/// identifier char, so an `r`/`b` here can open a raw/byte literal.
fn token_start(chars: &[char], at: usize) -> bool {
    at == 0 || !matches!(chars[at - 1], 'a'..='z' | 'A'..='Z' | '0'..='9' | '_')
}

/// If `chars[at..]` begins `#*"` (a raw-string opener minus the leading
/// `r`), returns the number of hashes.
fn raw_str_at(chars: &[char], at: usize) -> Option<u32> {
    let mut j = at;
    let mut hashes = 0u32;
    while chars.get(j).copied() == Some('#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j).copied() == Some('"')).then_some(hashes)
}

/// Whether `hashes` `#` chars follow position `at` (raw-string closer).
fn closes_raw(chars: &[char], at: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(at + k).copied() == Some('#'))
}

/// Marks lines inside `#[cfg(test)]`- / `cfg(debug_assertions)`-gated
/// brace blocks. Token-level heuristic: the attribute (or macro test)
/// arms a pending flag; the next `{` at statement level opens the gated
/// region, which ends when brace depth returns to its opening value. A
/// `;` before any `{` disarms the flag (braceless gated item).
fn mask_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending = false;
    // Depths at which a gated region opened (regions can nest).
    let mut gates: Vec<i64> = Vec::new();
    for line in lines.iter_mut() {
        let mut in_test = !gates.is_empty();
        if mentions_test_cfg(&line.code) || line.code.contains("debug_assertions") {
            pending = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending {
                        gates.push(depth);
                        pending = false;
                        in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if gates.last().copied() == Some(depth) {
                        gates.pop();
                    }
                }
                ';' => pending = false,
                _ => {}
            }
        }
        line.in_test = in_test || !gates.is_empty();
    }
}

/// Whether stripped code mentions a test-gating `cfg` condition.
///
/// The naive `contains("cfg(test)")` missed composed forms on `mod`
/// items stacked under other attributes — `#[cfg(all(test, ...))]`,
/// `#[cfg(any(test, fuzzing))]`, spaced `cfg( test )` — which left
/// whole test modules unmasked. This looks inside each `cfg(...)`
/// group for the standalone word `test`, excluding `not(test)` (that
/// gates *library* code and must stay scanned).
fn mentions_test_cfg(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find("cfg") {
        let at = from + pos;
        from = at + 3;
        // `cfg` must be its own word (not `my_cfg`, not `cfgx`).
        if at > 0 && matches!(bytes[at - 1], b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            continue;
        }
        // Accept `cfg(` and `cfg!(` with optional spaces.
        let mut j = at + 3;
        while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b'!') {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] != b'(' {
            continue;
        }
        // Balanced group contents.
        let mut depth = 0i32;
        let start = j + 1;
        let mut end = bytes.len();
        for (k, &b) in bytes.iter().enumerate().skip(j) {
            match b {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        end = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        let group = &code[start..end.max(start)];
        if group_has_test_word(group) {
            return true;
        }
    }
    false
}

/// Whether `group` (the inside of a `cfg(...)`) contains the word
/// `test` outside a `not(...)` sub-group.
fn group_has_test_word(group: &str) -> bool {
    let bytes = group.as_bytes();
    let mut from = 0;
    while let Some(pos) = group[from..].find("test") {
        let at = from + pos;
        from = at + 4;
        let before_ok =
            at == 0 || !matches!(bytes[at - 1], b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_');
        let after = at + 4;
        let after_ok = after >= bytes.len()
            || !matches!(bytes[after], b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_');
        if !(before_ok && after_ok) {
            continue;
        }
        // Count unclosed `not(` groups opened before this occurrence; a
        // `test` inside one gates non-test code.
        let prefix = &group[..at];
        let mut negated = 0i32;
        let mut k = 0;
        let pb = prefix.as_bytes();
        while k < pb.len() {
            if prefix[k..].starts_with("not(")
                && (k == 0 || !matches!(pb[k - 1], b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_'))
            {
                negated += 1;
                k += 4;
                continue;
            }
            if pb[k] == b')' && negated > 0 {
                negated -= 1;
            }
            k += 1;
        }
        if negated == 0 {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(text: &str) -> Vec<String> {
        strip(text).lines.iter().map(|l| l.code.clone()).collect()
    }

    #[test]
    fn line_comments_are_stripped_but_kept_as_comment_text() {
        let f = strip("let x = 1; // HashMap here\nlet y = 2;\n");
        assert_eq!(f.lines[0].code, "let x = 1; ");
        assert_eq!(f.lines[0].comment, " HashMap here");
        assert_eq!(f.lines[1].code, "let y = 2;");
    }

    #[test]
    fn doc_comments_are_comments() {
        let f = strip("/// calls .unwrap() in the example\nfn f() {}\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].comment.contains("unwrap"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let f = strip("let s = \"HashMap // not a comment\"; let t = 1;\n");
        assert_eq!(f.lines[0].code, "let s = \"\"; let t = 1;");
        assert!(f.lines[0].comment.is_empty());
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        let f = strip(r#"let s = "a\"HashMap\"b"; x();"#);
        assert_eq!(f.lines[0].code, "let s = \"\"; x();");
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = strip("let s = r#\"Instant::now() \"quoted\" \"#; y();\n");
        assert_eq!(f.lines[0].code, "let s = r#\"\"#; y();");
        let f = strip("let s = r\"SystemTime\"; y();\n");
        assert_eq!(f.lines[0].code, "let s = r\"\"; y();");
    }

    #[test]
    fn byte_strings_and_byte_chars_are_blanked() {
        let f = strip("let s = b\"panic!(\"; let c = b'x';\n");
        assert_eq!(f.lines[0].code, "let s = b\"\"; let c = b'';");
    }

    #[test]
    fn char_literals_are_blanked_but_lifetimes_survive() {
        let f = strip("fn f<'a>(x: &'a str) { let q = '\"'; let z = 'y'; }\n");
        assert_eq!(
            f.lines[0].code,
            "fn f<'a>(x: &'a str) { let q = ''; let z = ''; }"
        );
    }

    #[test]
    fn nested_block_comments_strip_fully() {
        let f = strip("a /* outer /* inner */ still comment */ b\n");
        assert_eq!(f.lines[0].code.replace(' ', ""), "ab");
        assert!(f.lines[0].comment.contains("inner"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let v = codes("x(); /* HashMap\n SystemTime\n */ y();\n");
        assert_eq!(v[0], "x(); ");
        assert_eq!(v[1], "");
        assert_eq!(v[2].trim_start(), "y();");
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let f = strip(src);
        let mask: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(mask, vec![false, false, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_poison_the_rest() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() { body(); }\n";
        let f = strip(src);
        assert!(f.lines.iter().all(|l| !l.in_test));
    }

    #[test]
    fn cfg_debug_assertions_blocks_are_masked() {
        let src = "fn f() {\n    if cfg!(debug_assertions) {\n        check().unwrap();\n    }\n    work();\n}\n";
        let f = strip(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[2].in_test);
        assert!(!f.lines[4].in_test);
    }

    #[test]
    fn strings_with_braces_do_not_break_masking() {
        let src =
            "#[cfg(test)]\nmod t {\n    const S: &str = \"}}}{\";\n    fn g() {}\n}\nfn lib() {}\n";
        let f = strip(src);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn raw_text_is_preserved_per_line() {
        let src = "let s = \"keep\"; // tail\n";
        let f = strip(src);
        assert_eq!(f.lines[0].raw, "let s = \"keep\"; // tail");
    }

    #[test]
    fn multi_hash_raw_strings_are_blanked() {
        let f = strip("let s = r##\"HashMap \"# inner\"##; x.unwrap();\n");
        assert_eq!(f.lines[0].code, "let s = r##\"\"##; x.unwrap();");
        let f = strip("let s = br#\"Instant::now()\"#; y();\n");
        assert_eq!(f.lines[0].code, "let s = br#\"\"#; y();");
        // Multi-line: the scanner must re-enter code exactly at the
        // matching-hash closer, not at an embedded `"`+fewer hashes.
        let f = strip("let s = r##\"a\nb\"# not closed\nc\"##; z();\n");
        assert_eq!(f.lines[0].code, "let s = r##\"");
        assert_eq!(f.lines[1].code, "");
        assert_eq!(f.lines[2].code, "\"##; z();");
    }

    #[test]
    fn identifier_ending_in_r_or_b_does_not_open_a_raw_string() {
        // `helper_r` / `make_b` end in the opener chars; treating them
        // as literal openers would swallow the rest of the file.
        let f = strip("let x = helper_r(\"arg\"); x.unwrap();\n");
        assert_eq!(f.lines[0].code, "let x = helper_r(\"\"); x.unwrap();");
        let f = strip("let y = make_b('c'); y.unwrap();\n");
        assert_eq!(f.lines[0].code, "let y = make_b(''); y.unwrap();");
    }

    #[test]
    fn cfg_test_mod_after_other_attributes_is_masked() {
        for src in [
            "#[allow(dead_code)]\n#[cfg(test)]\nmod t {\n    x.unwrap();\n}\nafter();\n",
            "#[cfg(test)]\n#[allow(dead_code)]\nmod t {\n    x.unwrap();\n}\nafter();\n",
            "#[allow(dead_code)]\n#[cfg(all(test, feature = \"x\"))]\nmod t {\n    x.unwrap();\n}\nafter();\n",
            "#[allow(dead_code)]\n#[cfg( test )]\nmod t {\n    x.unwrap();\n}\nafter();\n",
        ] {
            let f = strip(src);
            assert!(f.lines[3].in_test, "unwrap line unmasked in: {src}");
            assert!(!f.lines[5].in_test, "code after mod masked in: {src}");
        }
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nmod lib_only {\n    x.unwrap();\n}\n";
        let f = strip(src);
        assert!(f.lines.iter().all(|l| !l.in_test));
        assert!(!mentions_test_cfg("#[cfg(not(test))]"));
        assert!(mentions_test_cfg("#[cfg(all(not(fuzzing), test))]"));
        assert!(!mentions_test_cfg("#[cfg(feature = \"attest\")]"));
        assert!(!mentions_test_cfg("my_cfg(test)"));
    }
}
