//! Findings engine: runs the rule matchers over stripped files, honours
//! inline suppressions, walks the workspace, and applies the baseline
//! ratchet.

use crate::baseline::Baseline;
use crate::rules::{count_matches, in_scope, rule_by_name, RULES};
use crate::scan::{strip, StrippedFile};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One finding: a rule violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id.
    pub rule: &'static str,
    /// Trimmed source excerpt for the report.
    pub excerpt: String,
}

/// A parsed suppression directive.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Directive {
    /// `gapart-lint: allow(<rule>) -- <reason>` with a known rule and a
    /// non-empty reason.
    Allow(&'static str),
    /// Something that *tried* to be a directive but failed.
    Malformed(String),
}

/// Parses a suppression out of a comment, if the comment is one.
///
/// Only comments whose (trimmed) text *starts with* `gapart-lint:` are
/// treated as directives, so prose that merely mentions the tool is
/// ignored. The syntax is `gapart-lint: allow(<rule>) -- <reason>`; an
/// unknown rule or a missing/empty reason is malformed — a typo'd
/// suppression must fail loudly, not silently leave the finding live.
fn parse_directive(comment: &str) -> Option<Directive> {
    let text = comment.trim();
    let rest = text.strip_prefix("gapart-lint:")?.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Some(Directive::Malformed(format!(
            "expected `allow(<rule>)`, got `{text}`"
        )));
    };
    let Some((rule, tail)) = rest.split_once(')') else {
        return Some(Directive::Malformed(format!(
            "unterminated `allow(` in `{text}`"
        )));
    };
    let Some(rule) = rule_by_name(rule.trim()) else {
        return Some(Directive::Malformed(format!(
            "unknown rule `{}` in `{text}`",
            rule.trim()
        )));
    };
    let tail = tail.trim_start();
    match tail.strip_prefix("--") {
        Some(reason) if !reason.trim().is_empty() => Some(Directive::Allow(rule.name)),
        _ => Some(Directive::Malformed(format!(
            "missing `-- <reason>` in `{text}`"
        ))),
    }
}

/// Builds the per-line allow-sets for a stripped file: suppressions
/// attach to their own line (when it has code) or to the following line
/// (comment-only lines). Malformed directives come back as
/// `suppression-syntax` findings.
pub fn collect_allows(
    relpath: &str,
    file: &StrippedFile,
) -> (Vec<Vec<&'static str>>, Vec<Finding>) {
    let n = file.lines.len();
    let mut allows: Vec<Vec<&'static str>> = vec![Vec::new(); n];
    let mut findings = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if line.comment.trim().is_empty() {
            continue;
        }
        match parse_directive(&line.comment) {
            Some(Directive::Allow(rule)) => {
                let target = if line.code.trim().is_empty() {
                    i + 1
                } else {
                    i
                };
                if target < n {
                    allows[target].push(rule);
                }
            }
            Some(Directive::Malformed(msg)) if !line.in_test => findings.push(Finding {
                file: relpath.to_string(),
                line: i + 1,
                rule: "suppression-syntax",
                excerpt: msg,
            }),
            _ => {}
        }
    }
    (allows, findings)
}

/// The per-line substring rules over one stripped file.
fn line_rule_findings(
    relpath: &str,
    file: &StrippedFile,
    allows: &[Vec<&'static str>],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for rule in RULES {
            if rule.patterns.is_empty()
                || !in_scope(rule.name, relpath)
                || allows[i].contains(&rule.name)
            {
                continue;
            }
            // lib-panic tolerates panics spelled inside debug_assert
            // lines — debug-only checks are part of the contract.
            if rule.name == "lib-panic" && line.code.contains("debug_assert") {
                continue;
            }
            let hits: usize = rule
                .patterns
                .iter()
                .map(|p| count_matches(&line.code, p))
                .sum();
            for _ in 0..hits {
                findings.push(Finding {
                    file: relpath.to_string(),
                    line: i + 1,
                    rule: rule.name,
                    excerpt: excerpt_of(&line.raw),
                });
            }
        }
    }
    findings
}

/// Substrings that open a parallel-iterator chain (rayon-shim API).
const PAR_TRIGGERS: &[&str] = &[".par_iter", ".into_par_iter", ".par_chunks"];

/// Float reductions whose result depends on split order.
const FLOAT_REDUCE: &[&str] = &[
    ".sum::<f32",
    ".sum::<f64",
    ".fold(0.0",
    ".fold(0f32",
    ".fold(0f64",
];

/// The parallel-region rules (`par-side-effect`, `float-reduce-order`):
/// finds each parallel-iterator chain, extends the region while the
/// chain stays open (unbalanced brackets or a continuation line starting
/// with `.`), and flags shared mutation / float reductions inside it.
///
/// Closure-local state is exempt: names bound by `let mut` inside the
/// region or appearing in a closure's `|...|` parameter list may be
/// taken by `&mut` — that is the frozen-scan idiom's scratch space, not
/// a scheduling leak.
fn par_region_findings(
    relpath: &str,
    file: &StrippedFile,
    allows: &[Vec<&'static str>],
) -> Vec<Finding> {
    let n = file.lines.len();
    let mut region = vec![false; n];
    let mut i = 0;
    while i < n {
        let code = &file.lines[i].code;
        if file.lines[i].in_test || !PAR_TRIGGERS.iter().any(|t| code.contains(t)) {
            i += 1;
            continue;
        }
        // Extend: bracket balance below zero never happens at a chain
        // start; the region runs while depth > 0 or the next line
        // continues the chain with a leading `.`.
        let mut depth: i64 = 0;
        let mut j = i;
        loop {
            region[j] = true;
            for c in file.lines[j].code.chars() {
                match c {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => depth -= 1,
                    _ => {}
                }
            }
            let next = j + 1;
            if next >= n {
                break;
            }
            let cont = file.lines[next].code.trim_start().starts_with('.');
            if depth > 0 || cont {
                j = next;
            } else {
                break;
            }
        }
        i = j + 1;
    }

    // Names exempt from the &mut-capture check: closure params and
    // region-local `let mut` bindings.
    let mut locals: Vec<String> = Vec::new();
    for (k, line) in file.lines.iter().enumerate() {
        if !region[k] {
            continue;
        }
        let code = &line.code;
        let mut rest = code.as_str();
        while let Some(pos) = rest.find("let mut ") {
            rest = &rest[pos + "let mut ".len()..];
            if let Some(name) = leading_ident(rest) {
                locals.push(name);
            }
        }
        // `|a, (b, c)| ...` — every ident between a pair of `|` counts.
        if let Some(open) = code.find('|') {
            if let Some(close_rel) = code[open + 1..].find('|') {
                let params = &code[open + 1..open + 1 + close_rel];
                let mut cur = String::new();
                for c in params.chars().chain(std::iter::once(',')) {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        cur.push(c);
                    } else if !cur.is_empty() {
                        locals.push(std::mem::take(&mut cur));
                    }
                }
            }
        }
    }

    let mut findings = Vec::new();
    for (k, line) in file.lines.iter().enumerate() {
        if !region[k] || line.in_test {
            continue;
        }
        let code = &line.code;
        if in_scope("par-side-effect", relpath) && !allows[k].contains(&"par-side-effect") {
            let locking = code.contains(".lock(") || code.contains(".fetch_");
            let mut mut_capture = false;
            let mut rest = code.as_str();
            while let Some(pos) = rest.find("&mut ") {
                rest = &rest[pos + "&mut ".len()..];
                if let Some(name) = leading_ident(rest) {
                    if !locals.contains(&name) {
                        mut_capture = true;
                    }
                }
            }
            if locking || mut_capture {
                findings.push(Finding {
                    file: relpath.to_string(),
                    line: k + 1,
                    rule: "par-side-effect",
                    excerpt: excerpt_of(&line.raw),
                });
            }
        }
        if in_scope("float-reduce-order", relpath)
            && !allows[k].contains(&"float-reduce-order")
            && FLOAT_REDUCE.iter().any(|p| code.contains(p))
        {
            findings.push(Finding {
                file: relpath.to_string(),
                line: k + 1,
                rule: "float-reduce-order",
                excerpt: excerpt_of(&line.raw),
            });
        }
    }
    findings
}

/// The identifier starting at the head of `s`, if any.
fn leading_ident(s: &str) -> Option<String> {
    let name: String = s
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Scans already-stripped source with the *shallow* (per-line +
/// parallel-region) rules. Separated from I/O so fixtures can be
/// scanned under any pretend path (the path selects the rule scopes).
/// Cross-file propagation (`panic-reach`, `det-taint`) lives in
/// [`scan_files`].
pub fn scan_stripped(relpath: &str, file: &StrippedFile) -> Vec<Finding> {
    let (allows, mut findings) = collect_allows(relpath, file);
    findings.extend(line_rule_findings(relpath, file, &allows));
    findings.extend(par_region_findings(relpath, file, &allows));
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Strips and scans one source text under a pretend workspace path.
pub fn scan_source(relpath: &str, text: &str) -> Vec<Finding> {
    scan_stripped(relpath, &strip(text))
}

/// The deep scan: shallow rules per file, then item extraction, the
/// cross-file call graph, and both taint propagation passes. A
/// `panic-reach` finding sits on the `pub fn`'s declaration line and a
/// `det-taint` finding on the seed line, so suppressions there apply.
pub fn scan_files(inputs: &[(String, String)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut extracted = Vec::new();
    let mut panic_seeds = Vec::new();
    let mut det_seeds = Vec::new();
    let mut allows_by_file: BTreeMap<&str, Vec<Vec<&'static str>>> = BTreeMap::new();
    for (rel, text) in inputs {
        let stripped = strip(text);
        let (allows, mut supp) = collect_allows(rel, &stripped);
        findings.append(&mut supp);
        findings.extend(line_rule_findings(rel, &stripped, &allows));
        findings.extend(par_region_findings(rel, &stripped, &allows));
        panic_seeds.extend(crate::taint::panic_seeds(rel, &stripped, &allows));
        det_seeds.extend(crate::taint::det_seeds(rel, &stripped, &allows));
        extracted.push(crate::items::extract(rel, &stripped));
        allows_by_file.insert(rel, allows);
    }
    let graph = crate::callgraph::build(&extracted);
    let allowed = |f: &Finding| {
        allows_by_file
            .get(f.file.as_str())
            .and_then(|a| a.get(f.line.wrapping_sub(1)))
            .is_some_and(|rules| rules.contains(&f.rule))
    };
    findings.extend(
        crate::taint::panic_reach(&graph, &panic_seeds)
            .into_iter()
            .filter(|f| !allowed(f)),
    );
    findings.extend(
        crate::taint::det_taint(&graph, &det_seeds)
            .into_iter()
            .filter(|f| !allowed(f)),
    );
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

fn excerpt_of(raw: &str) -> String {
    let t = raw.trim();
    if t.len() > 96 {
        let mut end = 93;
        while !t.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}...", &t[..end])
    } else {
        t.to_string()
    }
}

/// The source trees the workspace lint covers: the facade's `src/` and
/// every `crates/<name>/src/`. `crates/compat/` (vendored API shims — the
/// external-world boundary, not our determinism surface) has no direct
/// `src/` and its nested crates are skipped explicitly. Test dirs are
/// never walked; per-rule path scopes are in [`crate::rules::in_scope`].
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), root, &mut files)?;
    let crates = root.join("crates");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    // read_dir order is platform-dependent; the lint's own output must be
    // deterministic.
    entries.sort();
    for entry in entries {
        if entry.file_name().is_some_and(|n| n == "compat") {
            continue;
        }
        let src = entry.join("src");
        if src.is_dir() {
            collect_rs(&src, root, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Scans every workspace source file — shallow rules plus the
/// cross-file call-graph passes — and returns all findings.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut inputs = Vec::new();
    for (rel, path) in workspace_files(root)? {
        inputs.push((rel, std::fs::read_to_string(&path)?));
    }
    Ok(scan_files(&inputs))
}

/// Outcome of comparing findings against the baseline.
#[derive(Debug, Clone, Default)]
pub struct Ratchet {
    /// `(file, rule)` groups that exceed their allowance, with the full
    /// finding list for the group (counts can't tell which one is new).
    pub over: Vec<OverBudget>,
    /// `(file, rule, found, allowed)` groups now under their allowance —
    /// the baseline is stale and can ratchet down.
    pub stale: Vec<(String, String, usize, usize)>,
    /// Total findings seen.
    pub total: usize,
    /// Findings covered by the baseline.
    pub baselined: usize,
}

/// One `(file, rule)` group over its baseline allowance.
#[derive(Debug, Clone)]
pub struct OverBudget {
    /// Workspace-relative path.
    pub file: String,
    /// Rule id.
    pub rule: String,
    /// Findings counted in this scan.
    pub found: usize,
    /// Baseline allowance.
    pub allowed: usize,
    /// Every finding in the group, for the report.
    pub findings: Vec<Finding>,
}

impl Ratchet {
    /// Whether the scan passes the ratchet.
    pub fn ok(&self) -> bool {
        self.over.is_empty()
    }
}

/// Applies the baseline ratchet to a finding list.
pub fn apply_baseline(findings: &[Finding], baseline: &Baseline) -> Ratchet {
    let mut groups: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for f in findings {
        groups
            .entry((f.file.clone(), f.rule.to_string()))
            .or_default()
            .push(f.clone());
    }
    let mut r = Ratchet {
        total: findings.len(),
        ..Default::default()
    };
    for ((file, rule), group) in &groups {
        let allowed = baseline.allowed_for(file, rule);
        let found = group.len();
        if found > allowed {
            r.over.push(OverBudget {
                file: file.clone(),
                rule: rule.clone(),
                found,
                allowed,
                findings: group.clone(),
            });
        } else {
            r.baselined += found;
            if found < allowed {
                r.stale.push((file.clone(), rule.clone(), found, allowed));
            }
        }
    }
    // Baseline entries for (file, rule) groups with zero findings are
    // stale too — the debt was paid, record the shrink.
    for (file, rules) in &baseline.allowed {
        for (rule, &allowed) in rules {
            if allowed > 0 && !groups.contains_key(&(file.clone(), rule.clone())) {
                r.stale.push((file.clone(), rule.clone(), 0, allowed));
            }
        }
    }
    r.stale.sort();
    r
}

/// Rebuilds a baseline that exactly matches `findings`.
pub fn baseline_from_findings(findings: &[Finding]) -> Baseline {
    let mut b = Baseline::default();
    for f in findings {
        *b.allowed
            .entry(f.file.clone())
            .or_default()
            .entry(f.rule.to_string())
            .or_insert(0) += 1;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directive_parsing() {
        assert_eq!(
            parse_directive(" gapart-lint: allow(lib-panic) -- invariant: len > 0"),
            Some(Directive::Allow("lib-panic"))
        );
        assert_eq!(
            parse_directive(" plain prose about gapart-lint: stuff"),
            None
        );
        assert!(matches!(
            parse_directive("gapart-lint: allow(lib-panic)"),
            Some(Directive::Malformed(_))
        ));
        assert!(matches!(
            parse_directive("gapart-lint: allow(nope) -- reason"),
            Some(Directive::Malformed(_))
        ));
        assert!(matches!(
            parse_directive("gapart-lint: deny(lib-panic) -- reason"),
            Some(Directive::Malformed(_))
        ));
    }

    #[test]
    fn suppression_on_same_and_previous_line() {
        let src = "\
fn f(x: Option<u32>) -> u32 {
    // gapart-lint: allow(lib-panic) -- checked two lines up
    x.unwrap()
}
fn g(x: Option<u32>) -> u32 {
    x.unwrap() // gapart-lint: allow(lib-panic) -- caller contract
}
fn h(x: Option<u32>) -> u32 {
    x.unwrap()
}
";
        let f = scan_source("crates/graph/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].line, f[0].rule), (9, "lib-panic"));
    }

    #[test]
    fn patterns_in_strings_and_comments_do_not_fire() {
        let src = "\
// HashMap in a comment, Instant::now too
fn f() -> &'static str {
    \"HashMap .unwrap() panic!( as u32\"
}
";
        assert!(scan_source("crates/graph/src/fm.rs", src).is_empty());
    }

    #[test]
    fn test_mods_are_exempt() {
        let src = "\
fn lib() {}
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        m.get(&0).unwrap();
    }
}
";
        assert!(scan_source("crates/graph/src/x.rs", src).is_empty());
    }

    #[test]
    fn ratchet_directions() {
        let finding = |file: &str, line| Finding {
            file: file.into(),
            line,
            rule: "lib-panic",
            excerpt: String::new(),
        };
        let two = vec![finding("a.rs", 1), finding("a.rs", 2)];
        let exact = baseline_from_findings(&two);

        let r = apply_baseline(&two, &exact);
        assert!(r.ok() && r.stale.is_empty() && r.baselined == 2);

        let three = vec![finding("a.rs", 1), finding("a.rs", 2), finding("a.rs", 3)];
        let r = apply_baseline(&three, &exact);
        assert!(!r.ok());
        assert_eq!((r.over[0].found, r.over[0].allowed), (3, 2));

        let one = vec![finding("a.rs", 1)];
        let r = apply_baseline(&one, &exact);
        assert!(r.ok());
        assert_eq!(r.stale, vec![("a.rs".into(), "lib-panic".into(), 1, 2)]);

        let r = apply_baseline(&[], &exact);
        assert!(r.ok());
        assert_eq!(r.stale, vec![("a.rs".into(), "lib-panic".into(), 0, 2)]);

        // Not in the baseline at all: a single finding fails.
        let r = apply_baseline(&one, &Baseline::default());
        assert!(!r.ok());
    }
}
