//! The ratcheting baseline: committed debt, counted per `(file, rule)`.
//!
//! `lint-baseline.toml` records how many findings each file is *allowed*
//! to carry for each rule. The ratchet: a scan that finds **more** than
//! the recorded count for any `(file, rule)` fails; finding fewer only
//! prints a staleness note (shrink the file with `--update-baseline`).
//! Counts rather than line numbers keep the baseline stable under
//! unrelated edits — debt neither moves nor grows silently.
//!
//! The format is a TOML subset parsed by hand (the workspace vendors no
//! registry crates): quoted-path tables with `rule = count` entries,
//! `#` comments, nothing else.
//!
//! ```toml
//! ["crates/graph/src/coarsen.rs"]
//! cast-truncate = 10
//! lib-panic = 2
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Allowed finding counts, keyed by workspace-relative path, then rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `file → rule → allowed count`. BTreeMaps keep serialization and
    /// reporting order deterministic.
    pub allowed: BTreeMap<String, BTreeMap<String, usize>>,
}

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for BaselineParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BaselineParseError {}

impl Baseline {
    /// Parses the TOML-subset baseline document.
    pub fn parse(text: &str) -> Result<Baseline, BaselineParseError> {
        let mut b = Baseline::default();
        let mut section: Option<String> = None;
        for (i, raw) in text.lines().enumerate() {
            let lno = i + 1;
            let line = match raw.find('#') {
                // A '#' only ever starts a comment here: section paths are
                // quoted but never contain '#', and values are integers.
                Some(pos) => raw[..pos].trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("[\"") {
                let Some(path) = rest.strip_suffix("\"]") else {
                    return Err(BaselineParseError {
                        line: lno,
                        message: format!("unterminated table header: {line}"),
                    });
                };
                b.allowed.entry(path.to_string()).or_default();
                section = Some(path.to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(BaselineParseError {
                    line: lno,
                    message: format!("expected `rule = count` or `[\"path\"]`, got: {line}"),
                });
            };
            let Some(section) = &section else {
                return Err(BaselineParseError {
                    line: lno,
                    message: "entry before any [\"path\"] table".into(),
                });
            };
            let rule = key.trim();
            let count: usize = value.trim().parse().map_err(|_| BaselineParseError {
                line: lno,
                message: format!("bad count for {rule}: {}", value.trim()),
            })?;
            if crate::rules::rule_by_name(rule).is_none() {
                return Err(BaselineParseError {
                    line: lno,
                    message: format!("unknown rule: {rule}"),
                });
            }
            b.allowed
                .entry(section.clone())
                .or_default()
                .insert(rule.to_string(), count);
        }
        Ok(b)
    }

    /// Serializes back to the committed format, deterministically sorted.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# gapart-lint baseline — committed findings debt, counted per (file, rule).\n\
             # The ratchet: a scan finding MORE than a recorded count fails CI; new\n\
             # files/rules start at zero. Shrink (never grow) this file by fixing\n\
             # findings and running `cargo run -p gapart-lint -- --workspace --update-baseline`.\n",
        );
        for (file, rules) in &self.allowed {
            if rules.is_empty() {
                continue;
            }
            let _ = write!(out, "\n[\"{file}\"]\n");
            for (rule, count) in rules {
                let _ = writeln!(out, "{rule} = {count}");
            }
        }
        out
    }

    /// Allowed count for `(file, rule)`; zero when absent.
    pub fn allowed_for(&self, file: &str, rule: &str) -> usize {
        self.allowed
            .get(file)
            .and_then(|m| m.get(rule))
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut b = Baseline::default();
        b.allowed
            .entry("crates/graph/src/fm.rs".into())
            .or_default()
            .insert("cast-truncate".into(), 7);
        b.allowed
            .entry("crates/graph/src/csr.rs".into())
            .or_default()
            .insert("lib-panic".into(), 2);
        let text = b.to_toml();
        assert_eq!(Baseline::parse(&text).unwrap(), b);
    }

    #[test]
    fn parses_comments_and_blanks() {
        let text = "# header\n\n[\"a/b.rs\"]\nlib-panic = 3 # trailing\n";
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.allowed_for("a/b.rs", "lib-panic"), 3);
        assert_eq!(b.allowed_for("a/b.rs", "det-wallclock"), 0);
        assert_eq!(b.allowed_for("missing.rs", "lib-panic"), 0);
    }

    #[test]
    fn rejects_unknown_rules_and_garbage() {
        assert!(Baseline::parse("[\"a.rs\"]\nnot-a-rule = 1\n").is_err());
        assert!(Baseline::parse("lib-panic = 1\n").is_err());
        assert!(Baseline::parse("[\"a.rs\"\n").is_err());
        assert!(Baseline::parse("[\"a.rs\"]\nlib-panic = x\n").is_err());
    }
}
