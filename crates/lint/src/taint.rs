//! Propagation passes over the call graph.
//!
//! * **panic-reachability** (`panic-reach`): seeds at every panic site
//!   in library code — the v1 `lib-panic` patterns plus slice/map
//!   indexing — and propagates *up* caller edges. Reported are `pub`,
//!   non-test functions inside the library-crate scope whose body
//!   transitively reaches a seed; the finding excerpt carries the whole
//!   witness call path down to the seed site.
//! * **determinism taint** (`det-taint`): seeds at every
//!   `det-hash-iter`/`det-wallclock`/`det-thread-id` site and
//!   propagates *down* from the pipeline entry points
//!   (`Partitioner::partition` impls, `MultilevelPartitioner`,
//!   `DynamicSession`, `fm::ParallelFm`). Reported at the seed line,
//!   with the entry-to-site witness path.
//!
//! Both BFS walks keep a visited set, so recursion and mutual recursion
//! terminate; hops over ambiguous edges render as `~>` instead of `->`
//! in the witness text.

use crate::callgraph::CallGraph;
use crate::engine::Finding;
use crate::rules::{in_scope, rule_by_name};
use crate::scan::StrippedFile;
use std::collections::VecDeque;

/// A taint source: one offending site in one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Seed {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// What the site does, for the witness text (e.g. `unwrap()`).
    pub what: String,
}

/// Collects panic seeds from one stripped file. `allows` is the per-line
/// suppression table from the engine: a `lib-panic` or `panic-reach`
/// allow on the site's line removes the seed (the suppression's reason
/// is exactly the invariant that makes the panic unreachable).
pub fn panic_seeds(rel: &str, file: &StrippedFile, allows: &[Vec<&'static str>]) -> Vec<Seed> {
    let mut seeds = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test
            || line.code.contains("debug_assert")
            || allows
                .get(i)
                .is_some_and(|a| a.contains(&"lib-panic") || a.contains(&"panic-reach"))
        {
            continue;
        }
        let what = if line.code.contains(".unwrap()") {
            "unwrap()"
        } else if line.code.contains(".expect(") {
            "expect()"
        } else if line.code.contains("panic!(") {
            "panic!"
        } else if line.code.contains("unreachable!(") {
            "unreachable!"
        } else if has_index_site(&line.code) {
            "indexing"
        } else {
            continue;
        };
        seeds.push(Seed {
            file: rel.to_string(),
            line: i + 1,
            what: what.to_string(),
        });
    }
    seeds
}

/// Whether a stripped code line contains a slice/map index expression
/// (`xs[`, `)(..)[`, `][`) as opposed to a type (`&[u32]`), an array
/// literal (`= [`), an attribute (`#[`), or a macro bang (`vec![`).
fn has_index_site(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' || i == 0 {
            continue;
        }
        if matches!(chars[i - 1], 'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ')' | ']') {
            return true;
        }
    }
    false
}

/// Collects determinism seeds (`det-hash-iter`, `det-wallclock`,
/// `det-thread-id` pattern hits) from one stripped file, honouring the
/// rules' path scopes and per-line suppressions.
pub fn det_seeds(rel: &str, file: &StrippedFile, allows: &[Vec<&'static str>]) -> Vec<Seed> {
    const DET_RULES: &[&str] = &["det-hash-iter", "det-wallclock", "det-thread-id"];
    let mut seeds = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for rule_name in DET_RULES {
            let Some(rule) = rule_by_name(rule_name) else {
                continue;
            };
            if !in_scope(rule_name, rel)
                || allows
                    .get(i)
                    .is_some_and(|a| a.contains(rule_name) || a.contains(&"det-taint"))
            {
                continue;
            }
            if let Some(pat) = rule.patterns.iter().find(|p| line.code.contains(*p)) {
                seeds.push(Seed {
                    file: rel.to_string(),
                    line: i + 1,
                    what: format!("{pat} ({rule_name})"),
                });
            }
        }
    }
    seeds
}

/// One hop of a recorded witness path.
#[derive(Debug, Clone, Copy)]
struct Hop {
    next: usize,
    ambiguous: bool,
}

/// Panic-reachability: reverse BFS from the seeds' enclosing functions,
/// reporting `pub` non-test functions in the `panic-reach` path scope.
/// The finding sits on the function's declaration line (so a
/// `panic-reach` allow there suppresses it) and the excerpt carries the
/// witness path down to the seed site.
pub fn panic_reach(g: &CallGraph, seeds: &[Seed]) -> Vec<Finding> {
    let n = g.fns.len();
    // First seed per node wins; seeds arrive in (file, line) order.
    let mut seed_at: Vec<Option<&Seed>> = vec![None; n];
    let mut queue = VecDeque::new();
    let mut visited = vec![false; n];
    let mut hop: Vec<Option<Hop>> = vec![None; n];
    for s in seeds {
        let Some(ix) = g.enclosing(&s.file, s.line) else {
            continue;
        };
        if g.fns[ix].in_test {
            continue;
        }
        if seed_at[ix].is_none() {
            seed_at[ix] = Some(s);
        }
        if !visited[ix] {
            visited[ix] = true;
            queue.push_back(ix);
        }
    }
    while let Some(v) = queue.pop_front() {
        for e in &g.rev[v] {
            if !visited[e.from] && !g.fns[e.from].in_test {
                visited[e.from] = true;
                hop[e.from] = Some(Hop {
                    next: v,
                    ambiguous: e.ambiguous,
                });
                queue.push_back(e.from);
            }
        }
    }

    let mut findings = Vec::new();
    for (i, f) in g.fns.iter().enumerate() {
        if !visited[i] || !f.is_pub || f.in_test || !in_scope("panic-reach", &f.file) {
            continue;
        }
        let mut path = g.fns[i].display();
        let mut cur = i;
        while let Some(h) = hop[cur] {
            path.push_str(if h.ambiguous { " ~> " } else { " -> " });
            path.push_str(&g.fns[h.next].display());
            cur = h.next;
        }
        let Some(seed) = seed_at[cur] else { continue };
        findings.push(Finding {
            file: f.file.clone(),
            line: f.line,
            rule: "panic-reach",
            excerpt: format!("{path}: {} at {}:{}", seed.what, seed.file, seed.line),
        });
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// Whether a function is a pipeline entry point for determinism taint.
fn is_entry(f: &crate::items::FnItem) -> bool {
    if f.in_test {
        return false;
    }
    f.name == "partition"
        || matches!(
            f.self_ty.as_deref(),
            Some("MultilevelPartitioner" | "DynamicSession" | "ParallelFm")
        )
}

/// Determinism taint: forward BFS from the pipeline entry points,
/// reporting every seed whose enclosing function is reachable. The
/// finding sits on the seed line; the excerpt carries the entry-to-site
/// witness path.
pub fn det_taint(g: &CallGraph, seeds: &[Seed]) -> Vec<Finding> {
    let n = g.fns.len();
    let mut visited = vec![false; n];
    let mut pred: Vec<Option<Hop>> = vec![None; n];
    let mut queue = VecDeque::new();
    for (i, f) in g.fns.iter().enumerate() {
        if is_entry(f) {
            visited[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(v) = queue.pop_front() {
        for e in &g.out[v] {
            if !visited[e.to] && !g.fns[e.to].in_test {
                visited[e.to] = true;
                pred[e.to] = Some(Hop {
                    next: v,
                    ambiguous: e.ambiguous,
                });
                queue.push_back(e.to);
            }
        }
    }

    let mut findings = Vec::new();
    for s in seeds {
        if !in_scope("det-taint", &s.file) {
            continue;
        }
        let Some(ix) = g.enclosing(&s.file, s.line) else {
            continue;
        };
        if !visited[ix] {
            continue;
        }
        // Walk predecessors back to the entry, then render forward.
        let mut chain = vec![(ix, false)];
        let mut cur = ix;
        while let Some(h) = pred[cur] {
            chain.push((h.next, h.ambiguous));
            cur = h.next;
        }
        let mut path = String::new();
        for (k, &(node, ambiguous)) in chain.iter().enumerate().rev() {
            if k + 1 < chain.len() {
                path.push_str(if ambiguous { " ~> " } else { " -> " });
            }
            path.push_str(&g.fns[node].display());
        }
        findings.push(Finding {
            file: s.file.clone(),
            line: s.line,
            rule: "det-taint",
            excerpt: format!("{} reachable from {path}", s.what),
        });
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::strip;

    #[test]
    fn index_site_detection() {
        assert!(has_index_site("let x = xs[i];"));
        assert!(has_index_site("m[&key] += 1;"));
        assert!(has_index_site("grid[r][c]"));
        assert!(has_index_site("f(a)[0]"));
        assert!(!has_index_site("fn f(xs: &[u32]) {}"));
        assert!(!has_index_site("#[derive(Debug)]"));
        assert!(!has_index_site("let a = [1, 2, 3];"));
        assert!(!has_index_site("let v = vec![0; 4];"));
        assert!(!has_index_site("Box<[u32]>"));
    }

    #[test]
    fn panic_seed_kinds_and_suppressions() {
        let src = "\
fn a(x: Option<u32>) -> u32 { x.unwrap() }
fn b(x: Option<u32>) -> u32 { x.expect(\"msg\") }
fn c() { panic!(\"boom\") }
fn d(xs: &[u32]) -> u32 { xs[0] }
fn e(xs: &[u32]) { debug_assert!(xs[0] > 0); }
fn f(x: Option<u32>) -> u32 {
    x.unwrap() // gapart-lint: allow(lib-panic) -- checked by caller
}
";
        let stripped = strip(src);
        let n = stripped.lines.len();
        let mut allows = vec![Vec::new(); n];
        allows[6] = vec!["lib-panic"];
        let seeds = panic_seeds("crates/graph/src/x.rs", &stripped, &allows);
        let kinds: Vec<(usize, &str)> = seeds.iter().map(|s| (s.line, s.what.as_str())).collect();
        assert_eq!(
            kinds,
            vec![
                (1, "unwrap()"),
                (2, "expect()"),
                (3, "panic!"),
                (4, "indexing"),
            ]
        );
    }

    #[test]
    fn det_seeds_respect_scope_and_tests() {
        let src = "\
use std::collections::HashMap;
fn order() { let m: HashMap<u32, u32> = HashMap::new(); let _ = m; }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let _ = std::collections::HashMap::<u32, u32>::new(); }
}
";
        let stripped = strip(src);
        let allows = vec![Vec::new(); stripped.lines.len()];
        let seeds = det_seeds("crates/core/src/x.rs", &stripped, &allows);
        // Lines 1 and 2 (use + body); the test mod contributes nothing.
        assert_eq!(seeds.len(), 2);
        assert!(seeds.iter().all(|s| s.line <= 2));
        assert!(det_seeds("crates/bench/src/x.rs", &stripped, &allows).is_empty());
    }
}
