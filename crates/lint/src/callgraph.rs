//! Module-path-qualified call graph over [`crate::items`] extraction.
//!
//! Name resolution is best-effort and tiered, most-specific first:
//!
//! 1. same file **and** same module path,
//! 2. same file,
//! 3. same module path (sibling file),
//! 4. `use`-imported name (the import *decides*: if it points outside
//!    the workspace, no edge is created rather than falling through),
//! 5. unique in the workspace.
//!
//! A call site that still resolves to several candidates (trait methods
//! with multiple impls, same-named helpers) keeps **all** edges, marked
//! [`Edge::ambiguous`] — the taint passes propagate through them but the
//! witness path renders the hop as `~>` so a reader knows the resolution
//! was plural.

use crate::items::{FileItems, FnItem};
use std::collections::BTreeMap;

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Caller node index.
    pub from: usize,
    /// Callee node index.
    pub to: usize,
    /// 1-based call-site line in the caller's file.
    pub line: usize,
    /// True when this call site resolved to more than one candidate.
    pub ambiguous: bool,
}

/// The workspace call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Flattened function nodes, in (file, declaration) order.
    pub fns: Vec<FnItem>,
    /// Outgoing edges per node, sorted by (to, line).
    pub out: Vec<Vec<Edge>>,
    /// Incoming edges per node, sorted by (from, line).
    pub rev: Vec<Vec<Edge>>,
}

impl CallGraph {
    /// The innermost function whose body span contains `file:line`.
    pub fn enclosing(&self, file: &str, line: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, f) in self.fns.iter().enumerate() {
            if f.file != file {
                continue;
            }
            let Some((lo, hi)) = f.body else { continue };
            if lo <= line && line <= hi {
                // Innermost wins: nested fns start later.
                if best.is_none_or(|b| self.fns[b].body.unwrap_or((0, 0)).0 <= lo) {
                    best = Some(i);
                }
            }
        }
        best
    }
}

/// Normalizes written path segments: resolves `Self` against the
/// caller's impl type, drops `crate`/`self`/`super`, and maps
/// `gapart_<x>` crate names to the bare `<x>` used by module paths.
fn normalize_segments(segs: &[String], caller: &FnItem) -> Vec<String> {
    let mut out = Vec::with_capacity(segs.len());
    for (i, s) in segs.iter().enumerate() {
        if i == 0 && s == "Self" {
            if let Some(t) = &caller.self_ty {
                out.push(t.clone());
            }
            continue;
        }
        if s == "crate" || s == "self" || s == "super" {
            continue;
        }
        match s.strip_prefix("gapart_") {
            Some(rest) => out.push(rest.to_string()),
            None => out.push(s.clone()),
        }
    }
    out
}

fn ends_with(qual: &[String], suffix: &[String]) -> bool {
    suffix.len() <= qual.len() && qual[qual.len() - suffix.len()..] == *suffix
}

/// Builds the call graph for a set of extracted files.
pub fn build(files: &[FileItems]) -> CallGraph {
    let mut g = CallGraph::default();
    let mut file_of: Vec<usize> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for item in &f.fns {
            g.fns.push(item.clone());
            file_of.push(fi);
        }
    }
    let n = g.fns.len();
    g.out = vec![Vec::new(); n];
    g.rev = vec![Vec::new(); n];

    // Candidate index: bare name -> non-test node indices, in node order.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in g.fns.iter().enumerate() {
        if !f.in_test {
            by_name.entry(f.name.as_str()).or_default().push(i);
        }
    }

    for (caller_ix, caller) in g.fns.iter().enumerate() {
        if caller.in_test {
            continue;
        }
        let uses = &files[file_of[caller_ix]].uses;
        // (to, line, ambiguous); deduped per callee below.
        let mut edges: Vec<(usize, usize, bool)> = Vec::new();
        for call in &caller.calls {
            let Some(name) = call.segments.last() else {
                continue;
            };
            let Some(cands) = by_name.get(name.as_str()) else {
                continue;
            };
            let targets: Vec<usize> = if call.segments.len() > 1 && !call.method {
                resolve_qualified(&g.fns, caller, cands, &call.segments, uses)
            } else {
                resolve_bare(&g.fns, caller, cands, name, call.method, uses)
            };
            let ambiguous = targets.len() > 1;
            for t in targets {
                edges.push((t, call.line, ambiguous));
            }
        }
        // One edge per callee: earliest line, unambiguous preferred.
        edges.sort_by_key(|&(to, line, amb)| (to, amb, line));
        edges.dedup_by_key(|e| e.0);
        for (to, line, ambiguous) in edges {
            g.out[caller_ix].push(Edge {
                from: caller_ix,
                to,
                line,
                ambiguous,
            });
        }
    }
    for i in 0..n {
        for e in g.out[i].clone() {
            g.rev[e.to].push(e);
        }
    }
    for v in &mut g.rev {
        v.sort_by_key(|e| (e.from, e.line));
    }
    g
}

/// Resolves a qualified path call (`a::b::name(`) by suffix match on
/// fully qualified names, splicing the first segment through the file's
/// `use` imports when the direct match is empty.
fn resolve_qualified(
    fns: &[FnItem],
    caller: &FnItem,
    cands: &[usize],
    segments: &[String],
    uses: &[(String, Vec<String>)],
) -> Vec<usize> {
    let segs = normalize_segments(segments, caller);
    if segs.is_empty() {
        return Vec::new();
    }
    let direct: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| ends_with(&fns[c].qual(), &segs))
        .collect();
    if !direct.is_empty() {
        return direct;
    }
    // `use gapart_graph::fm;` + `fm::refine(` -> graph::fm::refine.
    if let Some((_, path)) = uses.iter().find(|(nm, _)| nm == &segs[0]) {
        let mut spliced = path.clone();
        spliced.extend(segs[1..].iter().cloned());
        return cands
            .iter()
            .copied()
            .filter(|&c| ends_with(&fns[c].qual(), &spliced))
            .collect();
    }
    Vec::new()
}

/// Resolves a bare-name call (`name(`) or method call (`.name(`)
/// through the specificity tiers.
fn resolve_bare(
    fns: &[FnItem],
    caller: &FnItem,
    cands: &[usize],
    name: &str,
    method: bool,
    uses: &[(String, Vec<String>)],
) -> Vec<usize> {
    let same_file_mod: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| fns[c].file == caller.file && fns[c].mods == caller.mods)
        .collect();
    if !same_file_mod.is_empty() {
        return same_file_mod;
    }
    let same_file: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| fns[c].file == caller.file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_mod: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| fns[c].mods == caller.mods)
        .collect();
    if !same_mod.is_empty() {
        return same_mod;
    }
    if !method {
        // An import decides the resolution: if it points outside the
        // workspace the call is external and gets no edge.
        if let Some((_, path)) = uses.iter().find(|(nm, _)| nm == name) {
            return cands
                .iter()
                .copied()
                .filter(|&c| ends_with(&fns[c].qual(), path))
                .collect();
        }
    } else if STD_METHODS.contains(&name) {
        // `.expect(` / `.get(` etc. almost always mean the std method;
        // binding them to a same-named workspace fn in another crate
        // would fabricate cross-crate edges.
        return Vec::new();
    }
    // Last tier: whatever the workspace has under this name. One
    // candidate resolves cleanly; several become marked ambiguous edges
    // (trait-method fan-out lands here).
    cands.to_vec()
}

/// Ubiquitous std method names, excluded from the
/// unique-in-the-workspace tier for *method* calls (local tiers still
/// apply, so a file can define and call its own `expect`).
const STD_METHODS: &[&str] = &[
    "expect",
    "unwrap",
    "unwrap_or",
    "clone",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "collect",
    "map",
    "filter",
    "fold",
    "sum",
    "min",
    "max",
    "abs",
    "take",
    "replace",
    "extend",
    "sort",
    "sort_by",
    "contains",
    "to_string",
    "to_owned",
    "as_ref",
    "as_mut",
    "write",
    "read",
    "cmp",
    "eq",
    "fmt",
    "resize",
    "clear",
    "first",
    "last",
    "position",
    "find",
    "count",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::scan::strip;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let extracted: Vec<FileItems> = files
            .iter()
            .map(|(rel, text)| extract(rel, &strip(text)))
            .collect();
        build(&extracted)
    }

    fn ix(g: &CallGraph, name: &str) -> usize {
        g.fns
            .iter()
            .position(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    fn edge(g: &CallGraph, from: &str, to: &str) -> Option<Edge> {
        let (f, t) = (ix(g, from), ix(g, to));
        g.out[f].iter().copied().find(|e| e.to == t)
    }

    #[test]
    fn same_file_call_resolves() {
        let g = graph_of(&[(
            "crates/graph/src/a.rs",
            "fn leaf() {}\npub fn root() { leaf(); }\n",
        )]);
        let e = edge(&g, "root", "leaf").expect("edge");
        assert!(!e.ambiguous);
        assert_eq!(e.line, 2);
    }

    #[test]
    fn shadowed_name_prefers_same_file_over_workspace() {
        let g = graph_of(&[
            (
                "crates/graph/src/a.rs",
                "fn helper() {}\npub fn go() { helper(); }\n",
            ),
            ("crates/core/src/b.rs", "pub fn helper() {}\n"),
        ]);
        let to = ix(&g, "go");
        assert_eq!(g.out[to].len(), 1);
        let callee = &g.fns[g.out[to][0].to];
        assert_eq!(callee.file, "crates/graph/src/a.rs");
        assert!(!g.out[to][0].ambiguous);
    }

    #[test]
    fn qualified_call_resolves_by_suffix() {
        let g = graph_of(&[
            ("crates/graph/src/fm.rs", "pub fn refine() {}\n"),
            (
                "crates/rsb/src/b.rs",
                "use gapart_graph::fm;\npub fn go() { fm::refine(); }\n",
            ),
        ]);
        let e = edge(&g, "go", "refine").expect("edge");
        assert!(!e.ambiguous);
    }

    #[test]
    fn use_imported_bare_call_resolves_across_crates() {
        let g = graph_of(&[
            ("crates/graph/src/fm.rs", "pub fn refine() {}\n"),
            (
                "crates/rsb/src/b.rs",
                "use gapart_graph::fm::refine;\npub fn go() { refine(); }\n",
            ),
        ]);
        assert!(edge(&g, "go", "refine").is_some());
    }

    #[test]
    fn import_from_outside_the_workspace_creates_no_edge() {
        // `take` is imported from std; the same-named workspace fn in an
        // unrelated crate must not capture the call.
        let g = graph_of(&[
            ("crates/graph/src/a.rs", "pub fn take() {}\n"),
            (
                "crates/core/src/b.rs",
                "use std::mem::take;\npub fn go(x: &mut u32) { take(x); }\n",
            ),
        ]);
        assert!(edge(&g, "go", "take").is_none());
    }

    #[test]
    fn unique_in_workspace_resolves_without_import() {
        let g = graph_of(&[
            ("crates/graph/src/a.rs", "pub fn only_here() {}\n"),
            ("crates/core/src/b.rs", "pub fn go() { only_here(); }\n"),
        ]);
        let e = edge(&g, "go", "only_here").expect("edge");
        assert!(!e.ambiguous);
    }

    #[test]
    fn trait_method_with_multiple_impls_fans_out_ambiguous() {
        let g = graph_of(&[(
            "crates/graph/src/a.rs",
            "pub struct A;\npub struct B;\n\
             pub trait Part { fn part(&self) -> u32; }\n\
             impl Part for A { fn part(&self) -> u32 { 1 } }\n\
             impl Part for B { fn part(&self) -> u32 { 2 } }\n\
             pub fn go(p: &dyn Part) -> u32 { p.part() }\n",
        )]);
        let go = ix(&g, "go");
        // Decl + two impls: three candidates, all ambiguous.
        assert_eq!(g.out[go].len(), 3);
        assert!(g.out[go].iter().all(|e| e.ambiguous));
    }

    #[test]
    fn self_path_resolves_to_own_impl() {
        let g = graph_of(&[(
            "crates/graph/src/a.rs",
            "pub struct Fm;\nimpl Fm {\n  fn leaf(&self) {}\n  pub fn go(&self) { Self::leaf(self); }\n}\n",
        )]);
        assert!(edge(&g, "go", "leaf").is_some());
    }

    #[test]
    fn recursion_and_mutual_recursion_edges_exist() {
        let g = graph_of(&[(
            "crates/graph/src/a.rs",
            "pub fn rec(n: u32) -> u32 { if n == 0 { 0 } else { rec(n - 1) } }\n\
             pub fn ping(n: u32) { if n > 0 { pong(n - 1) } }\n\
             pub fn pong(n: u32) { if n > 0 { ping(n - 1) } }\n",
        )]);
        assert!(edge(&g, "rec", "rec").is_some());
        assert!(edge(&g, "ping", "pong").is_some());
        assert!(edge(&g, "pong", "ping").is_some());
    }

    #[test]
    fn test_fns_neither_call_nor_get_called() {
        let g = graph_of(&[(
            "crates/graph/src/a.rs",
            "pub fn lib() { helper(); }\nfn helper() {}\n\
             #[cfg(test)]\nmod tests {\n  use super::*;\n  #[test]\n  fn t() { lib(); helper(); }\n}\n",
        )]);
        let t = ix(&g, "t");
        assert!(g.out[t].is_empty());
        assert!(g.rev[ix(&g, "helper")].iter().all(|e| e.from != t));
    }

    #[test]
    fn enclosing_finds_innermost() {
        let g = graph_of(&[(
            "crates/graph/src/a.rs",
            "pub fn outer() {\n  fn inner() {\n    body();\n  }\n  inner();\n}\n",
        )]);
        let at = |line| {
            g.enclosing("crates/graph/src/a.rs", line)
                .map(|i| g.fns[i].name.clone())
        };
        assert_eq!(at(3).as_deref(), Some("inner"));
        assert_eq!(at(5).as_deref(), Some("outer"));
        assert_eq!(at(7), None);
    }
}
