//! `gapart-lint` — the static leg of the workspace determinism contract.
//!
//! The CI determinism matrix *samples* the bit-identity invariant by
//! re-running anchors under 1/2/4/8-thread pools; this crate checks the
//! same invariants at the source level, offline, over every library
//! line. It is a hand-rolled pass (comment/string-stripping tokenizer +
//! per-rule substring matchers — no `syn`, consistent with the
//! workspace's no-registry compat-shim policy) with:
//!
//! * a rule table ([`rules::RULES`]) grounded in repo invariants,
//! * parallel-region rules (`par-side-effect`, `float-reduce-order`)
//!   checked only inside `par_iter`/`par_chunks` chains,
//! * a whole-workspace cross-file layer — [`items`] extracts `fn`
//!   items and call sites, [`callgraph`] resolves them into a
//!   module-path-qualified call graph, and [`taint`] propagates
//!   panic-reachability up to `pub` APIs (`panic-reach`) and
//!   nondeterminism down from the pipeline entry points (`det-taint`),
//!   each finding carrying a witness call path,
//! * inline suppressions — a comment of the form
//!   `gapart-lint: allow(<rule>) -- <reason>` on the finding's line or
//!   the line above (the reason is mandatory),
//! * a committed, ratcheting baseline ([`baseline::Baseline`],
//!   `lint-baseline.toml`): existing debt is recorded per `(file, rule)`
//!   count; any scan exceeding a count fails, so debt can shrink but
//!   never silently grow.
//!
//! The binary (`cargo run -p gapart-lint -- --workspace`) is wired into
//! CI as the `lint` job; see `docs/ARCHITECTURE.md` for the rule table
//! and semantics.

pub mod baseline;
pub mod callgraph;
pub mod engine;
pub mod items;
pub mod rules;
pub mod scan;
pub mod taint;

pub use baseline::Baseline;
pub use engine::{
    apply_baseline, baseline_from_findings, scan_files, scan_source, scan_workspace, Finding,
    Ratchet,
};
