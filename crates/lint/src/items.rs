//! Item-level extraction on top of the stripping tokenizer: `fn` items
//! (name, module path, brace span, `pub`-ness, test masking, enclosing
//! `impl`/`trait` type), the call sites inside each body, and the file's
//! `use` imports.
//!
//! Still no full parser — the extractor re-tokenizes stripped code lines
//! (strings/comments already blanked by [`crate::scan::strip`], so brace
//! counting is reliable) and runs a single stack-machine pass. It is
//! deliberately best-effort: the consumers ([`crate::callgraph`],
//! [`crate::taint`]) treat unresolved names as absent edges and
//! multiply-resolved names as ambiguous edges, so extraction errors
//! degrade coverage, never correctness of the build.

use crate::scan::StrippedFile;

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based inclusive body line span (brace to brace); `None` for
    /// body-less trait method declarations.
    pub body: Option<(usize, usize)>,
    /// Whether the item carries a `pub` visibility (any form).
    pub is_pub: bool,
    /// Whether the declaration sits in a `#[cfg(test)]`-masked region.
    pub in_test: bool,
    /// Module path from the crate root, derived from the file path plus
    /// nested `mod` blocks (crate dir name without the `gapart-` prefix,
    /// e.g. `["graph", "fm"]`).
    pub mods: Vec<String>,
    /// Enclosing `impl`/`trait` self type, when any (`impl X for Y`
    /// records `Y`).
    pub self_ty: Option<String>,
    /// Call sites inside the body, in source order.
    pub calls: Vec<CallSite>,
}

impl FnItem {
    /// Fully qualified path segments: modules, self type, name.
    pub fn qual(&self) -> Vec<String> {
        let mut q = self.mods.clone();
        if let Some(t) = &self.self_ty {
            q.push(t.clone());
        }
        q.push(self.name.clone());
        q
    }

    /// Human-readable qualified name for witness paths.
    pub fn display(&self) -> String {
        self.qual().join("::")
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based line.
    pub line: usize,
    /// Path segments as written: `refine(` → `["refine"]`,
    /// `fm::refine(` → `["fm", "refine"]`, `.refine(` → `["refine"]`.
    pub segments: Vec<String>,
    /// True for method-call syntax (`.name(`): no receiver type is
    /// known, so resolution is by name only.
    pub method: bool,
}

/// Extraction result for one file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    /// Workspace-relative path.
    pub rel: String,
    /// Functions in declaration order.
    pub fns: Vec<FnItem>,
    /// `use` imports: local name → normalized path segments.
    pub uses: Vec<(String, Vec<String>)>,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    PathSep,
    Sym(char),
}

fn tokenize(code: &str) -> Vec<Tok> {
    let chars: Vec<char> = code.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            toks.push(Tok::Ident(chars[start..i].iter().collect()));
            continue;
        }
        if c == ':' && chars.get(i + 1) == Some(&':') {
            toks.push(Tok::PathSep);
            i += 2;
            continue;
        }
        if !c.is_whitespace() && !c.is_ascii_digit() {
            toks.push(Tok::Sym(c));
        } else if c.is_ascii_digit() {
            // Skip number literals wholesale (incl. suffixes) so `0f64`
            // does not read as an ident.
            while i < chars.len()
                && (chars[i].is_ascii_alphanumeric() || chars[i] == '.' || chars[i] == '_')
            {
                i += 1;
            }
            continue;
        }
        i += 1;
    }
    toks
}

/// Module path implied by a workspace-relative file path.
pub fn file_mods(rel: &str) -> Vec<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    let mut mods = Vec::new();
    let rest: &[&str] = if parts.first() == Some(&"crates") && parts.len() > 3 {
        mods.push(parts[1].to_string());
        &parts[3..] // skip crates/<name>/src
    } else if parts.first() == Some(&"src") {
        mods.push("gapart".to_string());
        &parts[1..]
    } else {
        &parts[..]
    };
    for (i, p) in rest.iter().enumerate() {
        let last = i + 1 == rest.len();
        if last {
            let stem = p.strip_suffix(".rs").unwrap_or(p);
            if stem != "lib" && stem != "main" && stem != "mod" {
                mods.push(stem.to_string());
            }
        } else {
            mods.push(p.to_string());
        }
    }
    mods
}

/// Normalizes a use-path segment list: drops `crate`/`self`/`super`,
/// maps `gapart_<x>` crate names to the bare `<x>` used by
/// [`file_mods`].
fn normalize_path(segs: Vec<String>) -> Vec<String> {
    segs.into_iter()
        .filter(|s| s != "crate" && s != "self" && s != "super")
        .map(|s| match s.strip_prefix("gapart_") {
            Some(rest) => rest.to_string(),
            None => s,
        })
        .collect()
}

/// Parses the token text of one `use` declaration (without `use`/`;`)
/// into `(name, path)` pairs. Handles one nesting level of `{...}`
/// groups and `as` renames; `*` globs are skipped.
fn parse_use(text: &str, out: &mut Vec<(String, Vec<String>)>) {
    let text = text.trim();
    if let Some(open) = text.find('{') {
        let prefix = text[..open].trim_end_matches("::").trim();
        let inner = text[open + 1..].trim_end_matches(['}', ' ']);
        let mut depth = 0i32;
        let mut start = 0;
        let inner_b = inner.as_bytes();
        for k in 0..=inner.len() {
            let split = k == inner.len() || (inner_b[k] == b',' && depth == 0);
            if k < inner.len() {
                match inner_b[k] {
                    b'{' => depth += 1,
                    b'}' => depth -= 1,
                    _ => {}
                }
            }
            if split {
                let item = inner[start..k].trim();
                if !item.is_empty() {
                    let joined = if prefix.is_empty() {
                        item.to_string()
                    } else {
                        format!("{prefix}::{item}")
                    };
                    parse_use(&joined, out);
                }
                start = k + 1;
            }
        }
        return;
    }
    let (path_text, alias) = match text.split_once(" as ") {
        Some((p, a)) => (p.trim(), Some(a.trim().to_string())),
        None => (text, None),
    };
    let segs: Vec<String> = path_text
        .split("::")
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let Some(last) = segs.last() else { return };
    if last == "*" {
        return;
    }
    // `use a::b::{self}` imports `b` itself.
    let local = if last == "self" && segs.len() >= 2 {
        segs[segs.len() - 2].clone()
    } else {
        last.clone()
    };
    let name = alias.unwrap_or(local);
    out.push((name, normalize_path(segs)));
}

/// Keywords and ubiquitous constructors that look like calls but are
/// never workspace function calls worth an edge.
fn skip_call_name(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "move"
            | "as"
            | "in"
            | "let"
            | "mut"
            | "ref"
            | "unsafe"
            | "else"
            | "break"
            | "continue"
            | "fn"
            | "impl"
            | "mod"
            | "use"
            | "pub"
            | "where"
            | "trait"
            | "struct"
            | "enum"
            | "type"
            | "const"
            | "static"
            | "dyn"
            | "Some"
            | "None"
            | "Ok"
            | "Err"
            | "self"
            | "super"
            | "crate"
    )
}

/// Extracts items from one stripped file.
pub fn extract(rel: &str, file: &StrippedFile) -> FileItems {
    let base_mods = file_mods(rel);
    let mut items = FileItems {
        rel: rel.to_string(),
        ..Default::default()
    };

    #[derive(Debug, Clone, PartialEq)]
    enum Mode {
        Code,
        AwaitFnName {
            is_pub: bool,
            line: usize,
        },
        FnHeader,
        AwaitModName,
        ImplHeader {
            angle: i32,
        },
        TraitHeader {
            named: bool,
        },
        UseDecl(String),
        Turbofish {
            angle: i32,
            method: bool,
            segments: Vec<String>,
        },
    }

    let mut mode = Mode::Code;
    let mut depth: i32 = 0;
    let mut mod_stack: Vec<(String, i32)> = Vec::new();
    let mut ty_stack: Vec<(String, i32)> = Vec::new();
    let mut fn_stack: Vec<(usize, i32)> = Vec::new();
    // Pending fn awaiting its body `{` (name, decl line, is_pub, in_test).
    let mut pending_fn: Option<(String, usize, bool, bool)> = None;
    let mut pending_mod: Option<String> = None;
    let mut pending_ty: Option<String> = None;
    let mut pub_armed = false;
    // Path accumulation for call detection.
    let mut cur_path: Vec<String> = Vec::new();
    let mut path_cont = false; // last token was `::` after an ident
    let mut after_dot = false;
    let mut last_was_ident = false;

    // Closes out a pending fn declaration into the item list.
    macro_rules! push_fn {
        ($body:expr, $lno:expr) => {{
            let (name, fline, is_pub, in_test) = pending_fn.take().unwrap_or_default();
            let mut mods = base_mods.clone();
            mods.extend(mod_stack.iter().map(|(m, _)| m.clone()));
            items.fns.push(FnItem {
                name,
                file: rel.to_string(),
                line: fline,
                body: $body.then_some((fline, $lno)),
                is_pub,
                in_test,
                mods,
                self_ty: ty_stack.last().map(|(t, _)| t.clone()),
                calls: Vec::new(),
            });
        }};
    }

    for (li, line) in file.lines.iter().enumerate() {
        let lno = li + 1;
        let toks = tokenize(&line.code);
        for tok in toks {
            // Header modes consume tokens before generic call tracking.
            // `mode` is taken by value so transitions cannot fight the
            // borrow checker; every arm restores or replaces it.
            match std::mem::replace(&mut mode, Mode::Code) {
                Mode::UseDecl(mut buf) => {
                    match &tok {
                        Tok::Ident(s) if s == "as" => buf.push_str(" as "),
                        Tok::Ident(s) => buf.push_str(s),
                        Tok::PathSep => buf.push_str("::"),
                        Tok::Sym(';') => {
                            parse_use(&buf, &mut items.uses);
                            continue; // mode stays Code
                        }
                        Tok::Sym(c) if matches!(c, '{' | '}' | ',' | '*') => buf.push(*c),
                        Tok::Sym(_) => {}
                    }
                    mode = Mode::UseDecl(buf);
                    continue;
                }
                Mode::AwaitFnName { is_pub, line: fl } => {
                    if let Tok::Ident(name) = &tok {
                        pending_fn = Some((name.clone(), fl, is_pub, file.lines[fl - 1].in_test));
                        mode = Mode::FnHeader;
                    } else if pending_fn.is_some() {
                        // `fn(u32)` pointer type inside a signature we
                        // were already parsing: stay in that header.
                        mode = Mode::FnHeader;
                    }
                    continue;
                }
                Mode::AwaitModName => {
                    if let Tok::Ident(name) = &tok {
                        pending_mod = Some(name.clone());
                    }
                    continue;
                }
                Mode::ImplHeader { mut angle } => {
                    match &tok {
                        Tok::Ident(s) if angle == 0 => {
                            if s == "for" {
                                pending_ty = None;
                            } else if s == "where" {
                                continue; // to Code; `{` consumes pending_ty
                            } else {
                                pending_ty = Some(s.clone());
                            }
                        }
                        Tok::Sym('<') => angle += 1,
                        Tok::Sym('>') => angle = (angle - 1).max(0),
                        Tok::Sym('{') => {
                            if let Some(t) = pending_ty.take() {
                                ty_stack.push((t, depth));
                            }
                            depth += 1;
                            continue;
                        }
                        Tok::Sym(';') => {
                            pending_ty = None;
                            continue;
                        }
                        _ => {}
                    }
                    mode = Mode::ImplHeader { angle };
                    continue;
                }
                Mode::TraitHeader { mut named } => {
                    match &tok {
                        Tok::Ident(s) if !named => {
                            pending_ty = Some(s.clone());
                            named = true;
                        }
                        Tok::Ident(_) => {}
                        Tok::Sym('{') => {
                            if let Some(t) = pending_ty.take() {
                                ty_stack.push((t, depth));
                            }
                            depth += 1;
                            continue;
                        }
                        Tok::Sym(';') => {
                            pending_ty = None;
                            continue;
                        }
                        _ => {}
                    }
                    mode = Mode::TraitHeader { named };
                    continue;
                }
                Mode::Turbofish {
                    mut angle,
                    method,
                    segments,
                } => {
                    match &tok {
                        Tok::Sym('<') => angle += 1,
                        Tok::Sym('>') => {
                            angle -= 1;
                            if angle == 0 {
                                // Restore the path; a following `(`
                                // records the call.
                                cur_path = segments;
                                last_was_ident = true;
                                after_dot = method;
                                continue;
                            }
                        }
                        _ => {}
                    }
                    mode = Mode::Turbofish {
                        angle,
                        method,
                        segments,
                    };
                    continue;
                }
                other @ (Mode::Code | Mode::FnHeader) => mode = other,
            }

            match &tok {
                Tok::Ident(name) => {
                    match name.as_str() {
                        "fn" => {
                            mode = Mode::AwaitFnName {
                                is_pub: pub_armed,
                                line: lno,
                            };
                            pub_armed = false;
                        }
                        "mod" if mode == Mode::Code => mode = Mode::AwaitModName,
                        "impl" if mode == Mode::Code => {
                            mode = Mode::ImplHeader { angle: 0 };
                            pub_armed = false;
                        }
                        "trait" if mode == Mode::Code => {
                            mode = Mode::TraitHeader { named: false };
                            pub_armed = false;
                        }
                        "use" if mode == Mode::Code && fn_stack.is_empty() => {
                            mode = Mode::UseDecl(String::new());
                            pub_armed = false;
                        }
                        "pub" => pub_armed = true,
                        "struct" | "enum" | "union" | "const" | "static" | "type" => {
                            pub_armed = false;
                        }
                        _ => {
                            if path_cont {
                                cur_path.push(name.clone());
                            } else {
                                cur_path = vec![name.clone()];
                            }
                            last_was_ident = true;
                            path_cont = false;
                            continue;
                        }
                    }
                    cur_path.clear();
                    last_was_ident = false;
                    path_cont = false;
                    after_dot = false;
                }
                Tok::PathSep => {
                    path_cont = last_was_ident;
                    last_was_ident = false;
                }
                Tok::Sym('.') => {
                    after_dot = true;
                    last_was_ident = false;
                    cur_path.clear();
                    path_cont = false;
                }
                Tok::Sym('<') if path_cont => {
                    // `name::<...>(` turbofish: keep the path across it.
                    mode = Mode::Turbofish {
                        angle: 1,
                        method: after_dot,
                        segments: std::mem::take(&mut cur_path),
                    };
                    path_cont = false;
                }
                Tok::Sym('(') => {
                    if last_was_ident && !cur_path.is_empty() {
                        let name = cur_path.last().cloned().unwrap_or_default();
                        let plain_kw = cur_path.len() == 1 && skip_call_name(&name);
                        if !plain_kw && !name.is_empty() {
                            if let Some(&(fi, _)) = fn_stack.last() {
                                items.fns[fi].calls.push(CallSite {
                                    line: lno,
                                    segments: std::mem::take(&mut cur_path),
                                    method: after_dot,
                                });
                            }
                        }
                    }
                    cur_path.clear();
                    last_was_ident = false;
                    path_cont = false;
                    after_dot = false;
                }
                Tok::Sym('!') => {
                    // Macro invocation: not a fn call.
                    cur_path.clear();
                    last_was_ident = false;
                    path_cont = false;
                    after_dot = false;
                }
                Tok::Sym('{') => {
                    if mode == Mode::FnHeader {
                        push_fn!(true, lno);
                        fn_stack.push((items.fns.len() - 1, depth));
                        mode = Mode::Code;
                    } else if let Some(m) = pending_mod.take() {
                        mod_stack.push((m, depth));
                    } else if let Some(t) = pending_ty.take() {
                        // `impl .. where ..` header that re-entered Code
                        // mode before its body opened.
                        ty_stack.push((t, depth));
                    }
                    depth += 1;
                    pub_armed = false;
                    cur_path.clear();
                    last_was_ident = false;
                    path_cont = false;
                    after_dot = false;
                }
                Tok::Sym('}') => {
                    depth -= 1;
                    if fn_stack.last().is_some_and(|&(_, d)| d == depth) {
                        let (fi, _) = fn_stack.pop().unwrap_or_default();
                        if let Some(b) = &mut items.fns[fi].body {
                            b.1 = lno;
                        }
                    }
                    if mod_stack.last().is_some_and(|&(_, d)| d == depth) {
                        mod_stack.pop();
                    }
                    if ty_stack.last().is_some_and(|&(_, d)| d == depth) {
                        ty_stack.pop();
                    }
                    cur_path.clear();
                    last_was_ident = false;
                    path_cont = false;
                    after_dot = false;
                }
                Tok::Sym(';') => {
                    if mode == Mode::FnHeader {
                        // Body-less trait method declaration.
                        push_fn!(false, lno);
                        mode = Mode::Code;
                    }
                    pending_mod = None;
                    pending_ty = None;
                    pub_armed = false;
                    cur_path.clear();
                    last_was_ident = false;
                    path_cont = false;
                    after_dot = false;
                }
                Tok::Sym(_) => {
                    last_was_ident = false;
                    path_cont = false;
                    after_dot = false;
                    cur_path.clear();
                }
            }
        }
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::strip;

    fn extract_src(rel: &str, src: &str) -> FileItems {
        extract(rel, &strip(src))
    }

    #[test]
    fn file_mods_shapes() {
        assert_eq!(file_mods("crates/graph/src/fm.rs"), vec!["graph", "fm"]);
        assert_eq!(file_mods("crates/graph/src/lib.rs"), vec!["graph"]);
        assert_eq!(
            file_mods("crates/graph/src/dynamic/mod.rs"),
            vec!["graph", "dynamic"]
        );
        assert_eq!(
            file_mods("crates/graph/src/generators/grid.rs"),
            vec!["graph", "generators", "grid"]
        );
        assert_eq!(
            file_mods("src/partitioners.rs"),
            vec!["gapart", "partitioners"]
        );
    }

    #[test]
    fn fns_with_visibility_span_and_mods() {
        let src = "\
pub fn api(x: u32) -> u32 {
    helper(x)
}
fn helper(x: u32) -> u32 {
    x + 1
}
mod inner {
    pub(crate) fn nested() {}
}
";
        let it = extract_src("crates/graph/src/fm.rs", src);
        let names: Vec<(&str, bool)> = it.fns.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(
            names,
            vec![("api", true), ("helper", false), ("nested", true)]
        );
        assert_eq!(it.fns[0].body, Some((1, 3)));
        assert_eq!(it.fns[1].body, Some((4, 6)));
        assert_eq!(it.fns[2].mods, vec!["graph", "fm", "inner"]);
        assert_eq!(it.fns[0].calls.len(), 1);
        assert_eq!(it.fns[0].calls[0].segments, vec!["helper"]);
        assert!(!it.fns[0].calls[0].method);
    }

    #[test]
    fn impl_and_trait_self_types() {
        let src = "\
impl Engine {
    pub fn step(&mut self) { self.tick(); }
}
impl Runner for Engine {
    fn run(&self) {}
}
pub trait Runner {
    fn run(&self);
    fn all(&self) { self.run(); }
}
";
        let it = extract_src("crates/core/src/engine.rs", src);
        let tys: Vec<(&str, Option<&str>)> = it
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.self_ty.as_deref()))
            .collect();
        assert_eq!(
            tys,
            vec![
                ("step", Some("Engine")),
                ("run", Some("Engine")),
                ("run", Some("Runner")),
                ("all", Some("Runner")),
            ]
        );
        // Trait decl without body.
        assert_eq!(it.fns[2].body, None);
        // Method call recorded as method.
        assert!(it.fns[0]
            .calls
            .iter()
            .any(|c| c.method && c.segments == ["tick"]));
    }

    #[test]
    fn qualified_and_turbofish_calls() {
        let src = "\
fn f() {
    fm::refine(1);
    Partition::new(labels, k);
    let s = xs.iter().sum::<f64>();
    vec![1, 2];
    if cond(x) { loop {} }
}
";
        let it = extract_src("crates/graph/src/multilevel.rs", src);
        let calls: Vec<(Vec<String>, bool)> = it.fns[0]
            .calls
            .iter()
            .map(|c| (c.segments.clone(), c.method))
            .collect();
        assert!(calls.contains(&(vec!["fm".into(), "refine".into()], false)));
        assert!(calls.contains(&(vec!["Partition".into(), "new".into()], false)));
        assert!(calls.contains(&(vec!["sum".into()], true)));
        assert!(calls.contains(&(vec!["cond".into()], false)));
        // `vec!` macro and keywords are not calls.
        assert!(!calls.iter().any(|(s, _)| s == &vec!["vec".to_string()]));
        assert!(!calls.iter().any(|(s, _)| s == &vec!["if".to_string()]));
    }

    #[test]
    fn use_imports_parse_groups_and_renames() {
        let src = "\
use gapart_graph::fm::{ParallelFm, FmRefiner};
use crate::geometry::NearestGrid as Grid;
use std::collections::BTreeMap;
fn f() {}
";
        let it = extract_src("crates/core/src/dynamic.rs", src);
        let find = |n: &str| it.uses.iter().find(|(a, _)| a == n).map(|(_, p)| p.clone());
        assert_eq!(
            find("ParallelFm"),
            Some(vec!["graph".into(), "fm".into(), "ParallelFm".into()])
        );
        assert_eq!(
            find("FmRefiner"),
            Some(vec!["graph".into(), "fm".into(), "FmRefiner".into()])
        );
        assert_eq!(
            find("Grid"),
            Some(vec!["geometry".into(), "NearestGrid".into()])
        );
        assert_eq!(
            find("BTreeMap"),
            Some(vec!["std".into(), "collections".into(), "BTreeMap".into()])
        );
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "\
fn lib() {}
#[cfg(test)]
mod tests {
    fn t() {}
}
";
        let it = extract_src("crates/graph/src/fm.rs", src);
        assert!(!it.fns[0].in_test);
        assert!(it.fns[1].in_test);
        assert_eq!(it.fns[1].mods, vec!["graph", "fm", "tests"]);
    }
}
