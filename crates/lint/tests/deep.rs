//! Fixture tests for the cross-file analysis: call-graph
//! panic-reachability and determinism taint, finding by finding,
//! including the exact witness-path text.

use gapart_lint::engine::scan_files;
use gapart_lint::Finding;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Scans fixture files under pretend workspace paths and keeps only the
/// named rule's findings.
fn scan_rule(files: &[(&str, &str)], rule: &str) -> Vec<Finding> {
    let inputs: Vec<(String, String)> = files
        .iter()
        .map(|(pretend, name)| (pretend.to_string(), fixture(name)))
        .collect();
    scan_files(&inputs)
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect()
}

#[test]
fn pub_api_reaching_a_panic_carries_the_exact_witness_path() {
    let f = scan_rule(
        &[("crates/graph/src/api.rs", "panic_reach_pub_api.rs")],
        "panic-reach",
    );
    assert_eq!(f.len(), 1);
    assert_eq!(
        (f[0].file.as_str(), f[0].line),
        ("crates/graph/src/api.rs", 3)
    );
    assert_eq!(
        f[0].excerpt,
        "graph::api::cut_cost -> graph::api::total -> graph::api::head: \
         unwrap() at crates/graph/src/api.rs:12"
    );
}

#[test]
fn clean_file_produces_no_panic_reach() {
    let f = scan_rule(
        &[("crates/graph/src/api.rs", "panic_reach_clean.rs")],
        "panic-reach",
    );
    assert!(f.is_empty(), "unexpected: {f:?}");
}

#[test]
fn recursion_and_mutual_recursion_terminate_and_report() {
    let f = scan_rule(
        &[("crates/graph/src/api.rs", "panic_reach_recursive.rs")],
        "panic-reach",
    );
    let got: Vec<(usize, &str)> = f.iter().map(|x| (x.line, x.excerpt.as_str())).collect();
    assert_eq!(
        got,
        vec![
            (
                4,
                "graph::api::collapse: indexing at crates/graph/src/api.rs:6"
            ),
            (
                12,
                "graph::api::ping -> graph::api::pong: indexing at crates/graph/src/api.rs:22"
            ),
        ]
    );
}

#[test]
fn ambiguous_trait_dispatch_is_reported_with_a_marked_hop() {
    let f = scan_rule(
        &[("crates/graph/src/api.rs", "panic_reach_ambiguous.rs")],
        "panic-reach",
    );
    assert_eq!(f.len(), 1);
    assert_eq!(f[0].line, 23, "finding sits on pub fn run");
    assert_eq!(
        f[0].excerpt,
        "graph::api::run ~> graph::api::Exact::cost: indexing at crates/graph/src/api.rs:13"
    );
}

#[test]
fn panic_reach_is_scoped_to_the_library_crates() {
    // The same reachable panic under a bench path is not reported.
    let f = scan_rule(
        &[("crates/bench/src/api.rs", "panic_reach_pub_api.rs")],
        "panic-reach",
    );
    assert!(f.is_empty(), "unexpected: {f:?}");
}

#[test]
fn det_taint_reports_reachable_seed_with_entry_witness() {
    let f = scan_rule(
        &[
            ("crates/core/src/engine.rs", "det_taint_entry.rs"),
            ("crates/core/src/order.rs", "det_taint_order.rs"),
        ],
        "det-taint",
    );
    assert_eq!(f.len(), 1);
    assert_eq!(
        (f[0].file.as_str(), f[0].line),
        ("crates/core/src/order.rs", 4)
    );
    assert_eq!(
        f[0].excerpt,
        "HashMap (det-hash-iter) reachable from \
         core::engine::MultilevelPartitioner::partition -> core::order::seed_order"
    );
}

#[test]
fn det_seed_unreachable_from_entries_is_not_tainted() {
    // Without the entry file, nothing reaches the seeds: no det-taint,
    // while the line-level det-hash-iter findings remain.
    let inputs = vec![(
        "crates/core/src/order.rs".to_string(),
        fixture("det_taint_order.rs"),
    )];
    let all = scan_files(&inputs);
    assert!(
        all.iter().all(|f| f.rule != "det-taint"),
        "unexpected: {all:?}"
    );
    assert!(all.iter().any(|f| f.rule == "det-hash-iter"));
}

#[test]
fn suppressing_the_pub_fn_silences_panic_reach() {
    let mut text = fixture("panic_reach_pub_api.rs");
    text = text.replace(
        "pub fn cut_cost",
        "// gapart-lint: allow(panic-reach) -- fixture: slice is never empty here\npub fn cut_cost",
    );
    let inputs = vec![("crates/graph/src/api.rs".to_string(), text)];
    let f: Vec<Finding> = scan_files(&inputs)
        .into_iter()
        .filter(|f| f.rule == "panic-reach")
        .collect();
    assert!(f.is_empty(), "unexpected: {f:?}");
}
