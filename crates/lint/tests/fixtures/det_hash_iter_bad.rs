//! Fixture: det-hash-iter violations — hash collections in library code.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn count_labels(labels: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &l in labels {
        *counts.entry(l).or_insert(0) += 1;
    }
    // Iteration order reaches the return value: the classic leak.
    counts.into_iter().map(|(l, c)| (l, c)).collect()
}

pub fn distinct(labels: &[u32]) -> usize {
    labels.iter().collect::<HashSet<_>>().len()
}
