//! Fixture: cast-truncate clean — checked crossings into the u32 core.

pub struct Overflow {
    pub entries: usize,
}

pub fn pack_offsets(xadj: &[usize]) -> Result<Vec<u32>, Overflow> {
    let entries = xadj.last().copied().unwrap_or(0);
    if entries > u32::MAX as usize {
        return Err(Overflow { entries });
    }
    // Widening and in-range-by-construction conversions stay legal.
    Ok(xadj.iter().map(|&x| u32::try_from(x).unwrap_or(u32::MAX)).collect())
}
