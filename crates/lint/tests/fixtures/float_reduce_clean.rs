//! Order-safe reductions: sequential float sums and parallel integer
//! sums are both exact-by-construction.

pub fn clean_seq_sum(xs: &[f64]) -> f64 {
    xs.iter().map(|&x| x * 0.5).sum::<f64>()
}

pub fn clean_int_par(xs: &[u64]) -> u64 {
    xs.par_iter().map(|&x| x / 2).sum::<u64>()
}

pub fn clean_fixed_point(xs: &[u32]) -> i64 {
    xs.par_iter().map(|&x| i64::from(x) * 1000).sum::<i64>()
}
