//! Deep fixture (file 1 of 2): the pipeline entry point. The partition
//! impl calls into the sibling file's hash-ordered helper.

pub struct MultilevelPartitioner;

impl MultilevelPartitioner {
    pub fn partition(&self, n: u32) -> u32 {
        crate::order::seed_order(n)
    }
}
