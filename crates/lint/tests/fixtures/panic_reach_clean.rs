//! Deep fixture: no pub function reaches a panic. The private panicking
//! helper is never called, and the pub API is total.

pub fn safe_sum(xs: &[u32]) -> u32 {
    xs.iter().copied().fold(0u32, u32::wrapping_add)
}

fn dead_helper(x: Option<u32>) -> u32 {
    // gapart-lint: allow(lib-panic) -- fixture: uncalled helper, not a seed
    x.unwrap()
}
