//! Parallel closures that mutate shared state: every form the rule
//! catches — a lock, an atomic RMW, and a captured `&mut`.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

pub fn bad_lock(xs: &[u32], acc: &Mutex<Vec<u32>>) {
    xs.par_iter().for_each(|&x| acc.lock().push(x));
}

pub fn bad_atomic(xs: &[u32], n: &AtomicU32) {
    xs.par_iter().for_each(|&x| {
        n.fetch_add(x, Ordering::Relaxed);
    });
}

pub fn bad_mut_capture(xs: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    xs.par_iter().for_each(|&x| grow(&mut out, x));
    out
}
