//! Tokenizer fixture: `#[cfg(test)]` after other attributes, and
//! `cfg(all(test, ...))`, still mask the module; `cfg(not(test))` code
//! stays scanned.

pub fn lib(x: u32) -> u32 {
    x + 1
}

#[allow(dead_code)]
#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn t() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
    }
}

#[cfg(all(test, feature = "slow"))]
mod slow_tests {
    fn u(x: Option<u32>) -> u32 {
        x.unwrap()
    }
}

#[cfg(not(test))]
pub fn real(x: Option<u32>) -> u32 {
    x.unwrap()
}
