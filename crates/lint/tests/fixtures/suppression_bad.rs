//! Fixture: malformed suppressions — each directive is itself a finding,
//! and the violation it failed to cover stays live.

pub fn missing_reason(xs: &[u32]) -> u32 {
    // gapart-lint: allow(lib-panic)
    *xs.first().unwrap()
}

pub fn unknown_rule(xs: &[u32]) -> u32 {
    // gapart-lint: allow(no-such-rule) -- confidently wrong
    *xs.first().unwrap()
}
