//! Float reductions inside parallel iterators: split order decides the
//! rounding, so the result is not bit-identical across pool sizes.

pub fn bad_sum(xs: &[f64]) -> f64 {
    xs.par_iter().map(|&x| x * 0.5).sum::<f64>()
}

pub fn bad_sum_f32(xs: &[f32]) -> f32 {
    xs.par_iter().copied().sum::<f32>()
}

pub fn bad_fold(xs: &[f32]) -> f32 {
    xs.par_iter().cloned().fold(0.0f32, |a, b| a + b)
}
