//! Fixture: cast-truncate violations — bare `as u32` in the u32 core.

pub fn pack_offsets(xadj: &[usize]) -> Vec<u32> {
    // Silently truncates past u32::MAX entries.
    xadj.iter().map(|&x| x as u32).collect()
}

pub fn half_edges(total: usize) -> u32 {
    (total / 2) as u32
}
