//! Fixture: one violation per rule, every one suppressed with a reasoned
//! allow — the whole file must scan clean.

use std::collections::HashMap; // gapart-lint: allow(det-hash-iter) -- probe-only cache, read via get() exclusively

// gapart-lint: allow(det-hash-iter) -- probe-only access, no iteration
pub fn lookup(m: &HashMap<u32, u32>, k: u32) -> Option<u32> {
    m.get(&k).copied()
}

pub fn trace_epoch() -> u64 {
    // gapart-lint: allow(det-wallclock) -- diagnostic-only timestamp, never reaches labels or cuts
    std::time::SystemTime::now();
    0
}

pub fn pool_width() -> usize {
    // gapart-lint: allow(det-thread-id) -- pool sizing only; the result is order-independent
    rayon::current_thread_index().map_or(1, |_| 2)
}

pub fn pack(x: usize) -> u32 {
    debug_checked(x);
    x as u32 // gapart-lint: allow(cast-truncate) -- bounded by the builder's AdjacencyOverflow check upstream
}

fn debug_checked(x: usize) {
    assert!(x <= u32::MAX as usize);
}

pub fn must(xs: &[u32]) -> u32 {
    // gapart-lint: allow(lib-panic) -- invariant: callers guarantee non-empty, enforced at construction
    *xs.first().unwrap()
}
