//! Deep fixture: a pub API reaching a panic two calls down.

pub fn cut_cost(xs: &[u32]) -> u32 {
    total(xs)
}

fn total(xs: &[u32]) -> u32 {
    head(xs)
}

fn head(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap()
}
