//! The frozen-scan idiom: parallel closures with closure-local scratch
//! only. `&mut` to a region-local binding or a closure parameter is not
//! a captured side effect.

pub fn clean_scan(xs: &[u32]) -> Vec<u32> {
    xs.par_iter()
        .map(|&x| {
            let mut local = Vec::new();
            fill(&mut local, x);
            local.into_iter().map(|y| y + 1).sum::<u32>()
        })
        .collect()
}

pub fn clean_chunks(labels: &mut [u32]) {
    labels.par_chunks_mut(1024).for_each(|chunk| {
        let mut scratch = 0u32;
        for c in chunk.iter_mut() {
            scratch = scratch.wrapping_add(*c);
            *c = scratch;
        }
    });
}

pub fn sequential_mutation_after_scan(xs: &[u32], out: &mut Vec<u32>) {
    let moves: Vec<u32> = xs.par_iter().map(|&x| x + 1).collect();
    out.extend(moves);
}
