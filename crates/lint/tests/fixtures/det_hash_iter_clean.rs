//! Fixture: det-hash-iter clean — ordered collections in library code,
//! hash collections only under `#[cfg(test)]`.

use std::collections::BTreeMap;

pub fn count_labels(labels: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for &l in labels {
        *counts.entry(l).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn counts() {
        // HashSet is fine in tests.
        let s: HashSet<u32> = [1, 2, 2].into_iter().collect();
        assert_eq!(s.len(), 2);
    }
}
