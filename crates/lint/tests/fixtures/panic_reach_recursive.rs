//! Deep fixture: recursion and mutual recursion — propagation must
//! terminate and still report the pub entries.

pub fn collapse(n: u32, xs: &[u32]) -> u32 {
    if n == 0 {
        xs[0]
    } else {
        collapse(n - 1, xs)
    }
}

pub fn ping(n: u32, xs: &[u32]) -> u32 {
    if n == 0 {
        pong(0, xs)
    } else {
        pong(n - 1, xs)
    }
}

fn pong(n: u32, xs: &[u32]) -> u32 {
    if n == 0 {
        xs[xs.len() - 1]
    } else {
        ping(n - 1, xs)
    }
}
