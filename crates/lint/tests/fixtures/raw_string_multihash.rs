//! Tokenizer fixture: multi-hash raw strings and byte raw strings are
//! blanked — the patterns inside must not fire, and scanning must
//! resume cleanly after each literal.

pub fn doc() -> &'static str {
    r##"HashMap .unwrap() panic!( "quoted" Instant::now"##
}

pub fn byte_doc() -> &'static [u8] {
    br#".expect( thread_rng SystemTime as u32"#
}

pub fn nested_hash() -> &'static str {
    r###"ends with "## not here: thread::current"###
}

pub fn after(x: Option<u32>) -> u32 {
    x.unwrap()
}
