//! Fixture: lib-panic violations — panics on library paths.

pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("caller passed garbage")
}

pub fn explode(kind: &str) {
    panic!("unsupported kind: {kind}");
}
