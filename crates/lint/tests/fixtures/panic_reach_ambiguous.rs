//! Deep fixture: a trait method with two impls — the call fans out to
//! ambiguous edges, and the witness renders the hop as `~>`.

pub struct Exact;
pub struct Greedy;

pub trait Cost {
    fn cost(&self, xs: &[u32]) -> u32;
}

impl Cost for Exact {
    fn cost(&self, xs: &[u32]) -> u32 {
        xs[0]
    }
}

impl Cost for Greedy {
    fn cost(&self, xs: &[u32]) -> u32 {
        xs.len() as u32
    }
}

pub fn run(c: &dyn Cost, xs: &[u32]) -> u32 {
    c.cost(xs)
}
