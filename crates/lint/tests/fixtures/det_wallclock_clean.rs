//! Fixture: det-wallclock clean — time arrives as data, not as a read.

pub fn budget_remaining(budget_ns: u64, spent_ns: u64) -> u64 {
    budget_ns.saturating_sub(spent_ns)
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_in_tests_is_fine() {
        let t = Instant::now();
        assert!(t.elapsed().as_secs() < 1);
    }
}
