//! Fixture: det-thread-id clean — work identity comes from the data.

pub fn shard_of(item_index: usize, shards: usize) -> usize {
    item_index % shards.max(1)
}
