//! Fixture: lib-panic clean — typed errors outside, panics confined to
//! tests, debug assertions, docs, and strings.

/// Calling `.unwrap()` in a doc example is fine — comments are stripped.
pub fn head(xs: &[u32]) -> Option<u32> {
    debug_assert!(!xs.is_empty(), "caller should pre-check; panic!( here is exempt");
    xs.first().copied()
}

pub fn parse(s: &str) -> Result<u32, String> {
    // The pattern inside a string literal must not fire either:
    s.parse().map_err(|_| "not .unwrap() material".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(parse("7").unwrap(), 7);
        assert_eq!(head(&[1]).unwrap(), 1);
    }
}
