//! Deep fixture (file 2 of 2): one reachable det seed, one stray one.

pub fn seed_order(n: u32) -> u32 {
    let mut m = std::collections::HashMap::new();
    m.insert(n, n);
    m.len() as u32
}

pub fn stray_order(n: u32) -> u32 {
    let mut m = std::collections::HashMap::new();
    m.insert(n, n + 1);
    m.len() as u32
}
