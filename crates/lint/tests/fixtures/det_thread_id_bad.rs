//! Fixture: det-thread-id violations — thread identity reaching output.

pub fn worker_tag() -> u64 {
    let id = std::thread::current().id();
    // ThreadId influencing a result value: the canonical scheduling leak.
    format!("{id:?}").len() as u64
}

pub fn shard_of() -> usize {
    rayon::current_thread_index().unwrap_or(0)
}
