//! Fixture: det-wallclock violations — wall-clock reads in library code.

use std::time::{Instant, SystemTime};

pub fn seed_from_clock() -> u64 {
    let t = Instant::now();
    let _ = SystemTime::now();
    t.elapsed().as_nanos() as u64
}
