//! Fixture-based self-tests: known-bad snippets must produce exactly the
//! expected findings, clean snippets must be silent, suppressions must
//! silence (or, malformed, become findings), and the baseline must
//! ratchet in both directions. The lint is itself regression-pinned.

use gapart_lint::baseline::Baseline;
use gapart_lint::engine::{apply_baseline, baseline_from_findings, scan_source};

/// Loads a fixture and scans it under a pretend workspace path (the path
/// selects which rule scopes apply — fixtures impersonate library files).
fn scan_fixture(name: &str, pretend_path: &str) -> Vec<(usize, String)> {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    scan_source(pretend_path, &text)
        .into_iter()
        .map(|f| (f.line, f.rule.to_string()))
        .collect()
}

/// A library path inside every rule's scope (it is one of the three
/// cast-truncate core files, and core files get all det rules too).
const FULL_SCOPE: &str = "crates/graph/src/fm.rs";

#[test]
fn det_hash_iter_bad_is_flagged_finding_by_finding() {
    assert_eq!(
        scan_fixture("det_hash_iter_bad.rs", FULL_SCOPE),
        vec![
            (3, "det-hash-iter".into()),
            (4, "det-hash-iter".into()),
            (7, "det-hash-iter".into()),
            (7, "det-hash-iter".into()),
            (16, "det-hash-iter".into()),
        ]
    );
}

#[test]
fn det_hash_iter_clean_is_silent() {
    assert_eq!(scan_fixture("det_hash_iter_clean.rs", FULL_SCOPE), vec![]);
}

#[test]
fn det_wallclock_bad_is_flagged() {
    assert_eq!(
        scan_fixture("det_wallclock_bad.rs", FULL_SCOPE),
        vec![
            (3, "det-wallclock".into()),
            (6, "det-wallclock".into()),
            (7, "det-wallclock".into()),
        ]
    );
}

#[test]
fn det_wallclock_clean_is_silent() {
    assert_eq!(scan_fixture("det_wallclock_clean.rs", FULL_SCOPE), vec![]);
}

#[test]
fn det_wallclock_is_legal_in_bench() {
    assert_eq!(
        scan_fixture("det_wallclock_bad.rs", "crates/bench/src/runner.rs"),
        vec![]
    );
}

#[test]
fn det_thread_id_bad_is_flagged() {
    assert_eq!(
        scan_fixture("det_thread_id_bad.rs", FULL_SCOPE),
        vec![(4, "det-thread-id".into()), (10, "det-thread-id".into())]
    );
}

#[test]
fn det_thread_id_clean_is_silent() {
    assert_eq!(scan_fixture("det_thread_id_clean.rs", FULL_SCOPE), vec![]);
}

#[test]
fn cast_truncate_bad_is_flagged_only_in_the_u32_core() {
    assert_eq!(
        scan_fixture("cast_truncate_bad.rs", "crates/graph/src/csr.rs"),
        vec![(5, "cast-truncate".into()), (9, "cast-truncate".into())]
    );
    // The same text outside the core files is not cast-truncate's business.
    assert_eq!(
        scan_fixture("cast_truncate_bad.rs", "crates/graph/src/builder.rs"),
        vec![]
    );
}

#[test]
fn cast_truncate_clean_is_silent() {
    assert_eq!(
        scan_fixture("cast_truncate_clean.rs", "crates/graph/src/csr.rs"),
        vec![]
    );
}

#[test]
fn lib_panic_bad_is_flagged() {
    assert_eq!(
        scan_fixture("lib_panic_bad.rs", FULL_SCOPE),
        vec![
            (4, "lib-panic".into()),
            (8, "lib-panic".into()),
            (12, "lib-panic".into()),
        ]
    );
}

#[test]
fn lib_panic_clean_is_silent() {
    assert_eq!(scan_fixture("lib_panic_clean.rs", FULL_SCOPE), vec![]);
}

#[test]
fn par_side_effect_bad_is_flagged_finding_by_finding() {
    assert_eq!(
        scan_fixture("par_side_effect_bad.rs", FULL_SCOPE),
        vec![
            (8, "par-side-effect".into()),
            (13, "par-side-effect".into()),
            (19, "par-side-effect".into()),
        ]
    );
}

#[test]
fn par_side_effect_clean_closure_local_scratch_is_silent() {
    assert_eq!(scan_fixture("par_side_effect_clean.rs", FULL_SCOPE), vec![]);
}

#[test]
fn float_reduce_bad_is_flagged_finding_by_finding() {
    assert_eq!(
        scan_fixture("float_reduce_bad.rs", FULL_SCOPE),
        vec![
            (5, "float-reduce-order".into()),
            (9, "float-reduce-order".into()),
            (13, "float-reduce-order".into()),
        ]
    );
}

#[test]
fn float_reduce_clean_sequential_or_integer_is_silent() {
    assert_eq!(scan_fixture("float_reduce_clean.rs", FULL_SCOPE), vec![]);
}

#[test]
fn multi_hash_raw_strings_are_blanked_and_scanning_resumes() {
    assert_eq!(
        scan_fixture("raw_string_multihash.rs", FULL_SCOPE),
        vec![(18, "lib-panic".into())]
    );
}

#[test]
fn cfg_test_after_other_attributes_masks_and_not_test_does_not() {
    assert_eq!(
        scan_fixture("cfg_attr_order.rs", FULL_SCOPE),
        vec![(31, "lib-panic".into())]
    );
}

#[test]
fn reasoned_suppressions_silence_every_rule() {
    assert_eq!(scan_fixture("suppressed.rs", FULL_SCOPE), vec![]);
}

#[test]
fn malformed_suppressions_are_findings_and_do_not_suppress() {
    assert_eq!(
        scan_fixture("suppression_bad.rs", FULL_SCOPE),
        vec![
            (5, "suppression-syntax".into()),
            (6, "lib-panic".into()),
            (10, "suppression-syntax".into()),
            (11, "lib-panic".into()),
        ]
    );
}

#[test]
fn baseline_ratchet_blocks_growth_and_reports_shrink() {
    let path = format!(
        "{}/tests/fixtures/lib_panic_bad.rs",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(path).unwrap();
    let findings = scan_source(FULL_SCOPE, &text);
    assert_eq!(findings.len(), 3);

    // Exactly-baselined debt passes.
    let exact = baseline_from_findings(&findings);
    let r = apply_baseline(&findings, &exact);
    assert!(r.ok());
    assert_eq!((r.total, r.baselined), (3, 3));
    assert!(r.stale.is_empty());

    // A fixture-style injection — one more panic — must fail the ratchet.
    let grown = format!("{text}\npub fn extra(x: Option<u32>) -> u32 {{ x.unwrap() }}\n");
    let more = scan_source(FULL_SCOPE, &grown);
    assert_eq!(more.len(), 4);
    let r = apply_baseline(&more, &exact);
    assert!(!r.ok());
    assert_eq!(r.over.len(), 1);
    assert_eq!((r.over[0].found, r.over[0].allowed), (4, 3));

    // Paying debt down doesn't fail, it reports the stale allowance.
    let fewer = &findings[..2];
    let r = apply_baseline(fewer, &exact);
    assert!(r.ok());
    assert_eq!(
        r.stale,
        vec![(FULL_SCOPE.to_string(), "lib-panic".to_string(), 2, 3)]
    );

    // The committed-format round trip preserves the ratchet exactly.
    let reparsed = Baseline::parse(&exact.to_toml()).unwrap();
    assert_eq!(reparsed, exact);
}
