//! End-to-end pin: the real workspace, scanned against the committed
//! baseline, has no findings over budget — `cargo test` proves the same
//! thing CI's lint job does, so the ratchet can't rot between CI edits.

use gapart_lint::baseline::Baseline;
use gapart_lint::engine::{apply_baseline, scan_workspace};
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_scan_has_no_findings_over_baseline() {
    let root = workspace_root();
    let findings = scan_workspace(root).expect("workspace scan");
    let text =
        std::fs::read_to_string(root.join("lint-baseline.toml")).expect("committed baseline");
    let baseline = Baseline::parse(&text).expect("baseline parses");
    let ratchet = apply_baseline(&findings, &baseline);
    assert!(
        ratchet.ok(),
        "findings over baseline (fix them, suppress with a reasoned allow, or \
         regenerate via --update-baseline): {:#?}",
        ratchet.over
    );
    // The committed baseline must also be tight: stale allowances mean
    // debt was paid but the ratchet wasn't lowered.
    assert!(
        ratchet.stale.is_empty(),
        "stale baseline entries — run `cargo run -p gapart-lint -- --workspace \
         --update-baseline`: {:?}",
        ratchet.stale
    );
}

#[test]
fn baseline_has_no_entries_for_files_that_no_longer_exist() {
    // Stale-path ratchet: a deleted or renamed file must take its debt
    // allowance with it, or the budget could silently migrate.
    let root = workspace_root();
    let text =
        std::fs::read_to_string(root.join("lint-baseline.toml")).expect("committed baseline");
    let baseline = Baseline::parse(&text).expect("baseline parses");
    let missing: Vec<&String> = baseline
        .allowed
        .keys()
        .filter(|rel| !root.join(rel.as_str()).is_file())
        .collect();
    assert!(
        missing.is_empty(),
        "baseline entries for nonexistent files — run `cargo run -p gapart-lint -- \
         --workspace --update-baseline`: {missing:?}"
    );
}

#[test]
fn the_lint_crate_itself_is_debt_free() {
    let root = workspace_root();
    let findings = scan_workspace(root).expect("workspace scan");
    let own: Vec<_> = findings
        .iter()
        .filter(|f| f.file.starts_with("crates/lint/"))
        .collect();
    assert!(own.is_empty(), "lint findings in the lint crate: {own:#?}");
}
