//! Micro-benchmarks of the genetic operators — the per-generation cost
//! drivers behind the paper's "GAs do require much more execution time"
//! caveat, and the ablation data for operator choice.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gapart_core::hillclimb::{hill_climb, swap_climb};
use gapart_core::ops::crossover::{CrossoverCtx, CrossoverOp};
use gapart_core::ops::mutation::{boundary_mutate, mutate};
use gapart_core::{FitnessEvaluator, FitnessKind};
use gapart_graph::generators::paper_graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn crossover_ops(c: &mut Criterion) {
    let graph = paper_graph(309);
    let n = graph.num_nodes();
    let parts = 8u32;
    let mut rng = StdRng::seed_from_u64(1);
    let a: Vec<u32> = (0..n).map(|_| rng.gen_range(0..parts)).collect();
    let b: Vec<u32> = (0..n).map(|_| rng.gen_range(0..parts)).collect();
    let reference: Vec<u32> = (0..n).map(|_| rng.gen_range(0..parts)).collect();
    let ctx = CrossoverCtx::with_reference(&graph, &reference);

    let mut group = c.benchmark_group("crossover_309n_8p");
    group.sample_size(30);
    for op in CrossoverOp::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(op), &op, |bench, op| {
            bench.iter(|| op.apply(black_box(&a), black_box(&b), &ctx, &mut rng))
        });
    }
    group.finish();
}

fn mutation_ops(c: &mut Criterion) {
    let graph = paper_graph(309);
    let n = graph.num_nodes();
    let parts = 8u32;
    let mut rng = StdRng::seed_from_u64(2);
    let base: Vec<u32> = (0..n).map(|_| rng.gen_range(0..parts)).collect();

    let mut group = c.benchmark_group("mutation_309n");
    group.sample_size(30);
    group.bench_function("uniform_pm0.01", |bench| {
        bench.iter_batched(
            || base.clone(),
            |mut genes| mutate(&mut genes, 0.01, parts, &mut rng),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("boundary_pm0.05", |bench| {
        bench.iter_batched(
            || base.clone(),
            |mut genes| boundary_mutate(&mut genes, &graph, 0.05, &mut rng),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn fitness_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("fitness_eval");
    group.sample_size(50);
    for n in [78usize, 167, 309] {
        let graph = paper_graph(n);
        let evaluator = FitnessEvaluator::new(&graph, 8, FitnessKind::TotalCut, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let genes: Vec<u32> = (0..n).map(|_| rng.gen_range(0..8)).collect();
        let mut scratch = gapart_core::fitness::EvalScratch::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| evaluator.evaluate_with(black_box(&genes), &mut scratch))
        });
    }
    group.finish();
}

fn climbers(c: &mut Criterion) {
    let graph = paper_graph(309);
    let evaluator = FitnessEvaluator::new(&graph, 8, FitnessKind::TotalCut, 1.0);
    let mut rng = StdRng::seed_from_u64(4);
    let base: Vec<u32> = (0..309).map(|_| rng.gen_range(0..8)).collect();

    let mut group = c.benchmark_group("climbers_309n_8p");
    group.sample_size(20);
    group.bench_function("hill_climb_to_optimum", |bench| {
        bench.iter_batched(
            || base.clone(),
            |mut genes| hill_climb(&evaluator, &mut genes, 100),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("swap_climb_to_optimum", |bench| {
        bench.iter_batched(
            || base.clone(),
            |mut genes| swap_climb(&evaluator, &mut genes, 100),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400));
    targets = crossover_ops, mutation_ops, fitness_eval, climbers
}
criterion_main!(benches);
