//! Whole-partitioner benchmarks: the RSB and IBP baselines the paper
//! compares against, plus the multilevel variant and greedy refinement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gapart_graph::generators::{jittered_mesh, paper_graph};
use gapart_graph::refine::{refine_kway, RefineOptions};
use gapart_graph::Partition;
use gapart_ibp::index::IndexScheme;
use gapart_ibp::{ibp_partition, IbpOptions};
use gapart_rsb::multilevel::MultilevelOptions;
use gapart_rsb::{multilevel_rsb, rsb_partition, RsbOptions};

fn rsb(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsb_8parts");
    group.sample_size(10);
    for n in [167usize, 309, 1000] {
        let graph = jittered_mesh(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| rsb_partition(&graph, 8, &RsbOptions::default()).unwrap())
        });
    }
    group.finish();
}

fn multilevel(c: &mut Criterion) {
    let mut group = c.benchmark_group("multilevel_rsb_8parts");
    group.sample_size(10);
    for n in [1000usize, 3000] {
        let graph = jittered_mesh(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| multilevel_rsb(&graph, 8, &MultilevelOptions::default()).unwrap())
        });
    }
    group.finish();
}

fn ibp(c: &mut Criterion) {
    let graph = paper_graph(309);
    let mut group = c.benchmark_group("ibp_309n_8parts");
    group.sample_size(30);
    for scheme in IndexScheme::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(scheme), &scheme, |bench, &s| {
            let opts = IbpOptions {
                scheme: s,
                resolution: 1024,
            };
            bench.iter(|| ibp_partition(&graph, 8, &opts).unwrap())
        });
    }
    group.finish();
}

/// All five algorithms through the unified `Partitioner` trait — the same
/// dispatch path the CLI and the table binaries use. GA/DPGA run with a
/// small budget so the group finishes in seconds.
fn unified_trait_dispatch(c: &mut Criterion) {
    use gapart_core::GaConfig;
    use gapart_graph::partitioner::Partitioner;

    let graph = paper_graph(167);
    let mut group = c.benchmark_group("trait_dispatch_167n_4parts");
    group.sample_size(10);
    for name in gapart::partitioners::NAMES {
        let p: Box<dyn Partitioner> = match name {
            "ga" => gapart::partitioners::tuned_ga(
                GaConfig::paper_defaults(4)
                    .with_population_size(32)
                    .with_generations(10),
            ),
            "dpga" => {
                let mut cfg = gapart_core::DpgaConfig::paper(4);
                cfg.topology = gapart_core::Topology::Hypercube(2);
                cfg.base = GaConfig::paper_defaults(4)
                    .with_population_size(32)
                    .with_generations(10);
                gapart::partitioners::tuned_dpga(cfg)
            }
            other => gapart::partitioners::by_name(other).expect("registered"),
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &p, |bench, p| {
            bench.iter(|| p.partition(&graph, 4, 42).unwrap())
        });
    }
    group.finish();
}

fn refinement(c: &mut Criterion) {
    let graph = paper_graph(309);
    let mut group = c.benchmark_group("refine_kway_309n");
    group.sample_size(20);
    group.bench_function("from_round_robin_8p", |bench| {
        bench.iter_batched(
            || Partition::round_robin(309, 8),
            |mut p| {
                refine_kway(
                    &graph,
                    &mut p,
                    &RefineOptions {
                        balance_slack: 0.05,
                        max_passes: 8,
                    },
                )
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(400));
    targets = rsb, multilevel, ibp, unified_trait_dispatch, refinement
}
criterion_main!(benches);
