//! End-to-end GA benchmarks: per-generation cost by operator, DPGA
//! thread-parallel vs sequential (the paper's near-linear-speedup claim,
//! within one machine), and the incremental pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gapart_core::dpga::MigrationPolicy;
use gapart_core::incremental::incremental_ga;
use gapart_core::population::InitStrategy;
use gapart_core::{CrossoverOp, DpgaConfig, DpgaEngine, GaConfig, GaEngine, Topology};
use gapart_graph::generators::paper_graph;
use gapart_graph::incremental::grow_local;
use gapart_rsb::{rsb_partition, RsbOptions};

fn generation_cost_by_operator(c: &mut Criterion) {
    let graph = paper_graph(167);
    let mut group = c.benchmark_group("ga_10gens_167n_pop64");
    group.sample_size(10);
    for op in [
        CrossoverOp::TwoPoint,
        CrossoverOp::Uniform,
        CrossoverOp::Knux,
        CrossoverOp::Dknux,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(op), &op, |bench, &op| {
            bench.iter(|| {
                let config = GaConfig::paper_defaults(4)
                    .with_crossover(op)
                    .with_population_size(64)
                    .with_generations(10)
                    .with_seed(1);
                GaEngine::new(&graph, config).unwrap().run()
            })
        });
    }
    group.finish();
}

fn dpga_parallel_vs_sequential(c: &mut Criterion) {
    let graph = paper_graph(309);
    let mut group = c.benchmark_group("dpga_16subpops_10gens_309n");
    group.sample_size(10);
    for (label, parallel) in [("parallel", true), ("sequential", false)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &parallel,
            |bench, &par| {
                bench.iter(|| {
                    let config = DpgaConfig {
                        base: GaConfig::paper_defaults(8)
                            .with_population_size(320)
                            .with_generations(10)
                            .with_seed(2),
                        topology: Topology::Hypercube(4),
                        migration_interval: 5,
                        num_migrants: 2,
                        migration_policy: MigrationPolicy::Best,
                        parallel: par,
                        init_overrides: None,
                    };
                    DpgaEngine::new(&graph, config).unwrap().run()
                })
            },
        );
    }
    group.finish();
}

fn incremental_pipeline(c: &mut Criterion) {
    let base = paper_graph(183);
    let old = rsb_partition(&base, 4, &RsbOptions::default()).unwrap();
    let grown = grow_local(&base, 60, 3).unwrap().graph;
    let mut group = c.benchmark_group("incremental_ga_183p60");
    group.sample_size(10);
    group.bench_function("30gens_pop64", |bench| {
        bench.iter(|| {
            let config = GaConfig::paper_defaults(4)
                .with_population_size(64)
                .with_generations(30)
                .with_seed(4);
            incremental_ga(&grown, &old, config).unwrap()
        })
    });
    group.finish();
}

fn seeding_strategies(c: &mut Criterion) {
    let graph = paper_graph(167);
    let rsb = rsb_partition(&graph, 4, &RsbOptions::default()).unwrap();
    let mut group = c.benchmark_group("init_20gens_167n_pop64");
    group.sample_size(10);
    let cases: [(&str, InitStrategy); 3] = [
        ("random", InitStrategy::Random),
        ("balanced", InitStrategy::BalancedRandom),
        (
            "seeded",
            InitStrategy::Seeded {
                partition: rsb.labels().to_vec(),
                perturbation: 0.1,
            },
        ),
    ];
    for (label, init) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(label), &init, |bench, init| {
            bench.iter(|| {
                let config = GaConfig::paper_defaults(4)
                    .with_population_size(64)
                    .with_generations(20)
                    .with_init(init.clone())
                    .with_seed(5);
                GaEngine::new(&graph, config).unwrap().run()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = generation_cost_by_operator, dpga_parallel_vs_sequential,
              incremental_pipeline, seeding_strategies
}
criterion_main!(benches);
