//! Substrate benchmarks: graph generation, Laplacian assembly, the
//! Lanczos eigensolver, coarsening, traversal, and METIS IO.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gapart_graph::coarsen::coarsen_hem;
use gapart_graph::generators::jittered_mesh;
use gapart_graph::io::{from_metis, to_metis};
use gapart_graph::traversal::{bfs_distances, connected_components};
use gapart_linalg::lanczos::lanczos_smallest_csr;
use gapart_linalg::LanczosOptions;
use gapart_rsb::laplacian;

fn generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("jittered_mesh");
    group.sample_size(20);
    for n in [309usize, 2000, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| jittered_mesh(black_box(n), 7))
        });
    }
    group.finish();
}

fn spectral(c: &mut Criterion) {
    let mut group = c.benchmark_group("fiedler_via_lanczos");
    group.sample_size(10);
    for n in [309usize, 1000, 3000] {
        let graph = jittered_mesh(n, 5);
        let l = laplacian(&graph);
        let ones = vec![1.0 / (n as f64).sqrt(); n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                lanczos_smallest_csr(
                    &l,
                    1,
                    std::slice::from_ref(&ones),
                    &LanczosOptions::default(),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn laplacian_assembly(c: &mut Criterion) {
    let graph = jittered_mesh(3000, 5);
    let mut group = c.benchmark_group("laplacian_assembly");
    group.sample_size(20);
    group.bench_function("3000n", |bench| bench.iter(|| laplacian(black_box(&graph))));
    group.finish();
}

fn coarsening(c: &mut Criterion) {
    let mut group = c.benchmark_group("coarsen_hem");
    group.sample_size(20);
    for n in [1000usize, 5000] {
        let graph = jittered_mesh(n, 9);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| coarsen_hem(black_box(&graph), 3))
        });
    }
    group.finish();
}

fn traversal(c: &mut Criterion) {
    let graph = jittered_mesh(5000, 11);
    let mut group = c.benchmark_group("traversal_5000n");
    group.sample_size(30);
    group.bench_function("bfs_distances", |bench| {
        bench.iter(|| bfs_distances(black_box(&graph), 0))
    });
    group.bench_function("connected_components", |bench| {
        bench.iter(|| connected_components(black_box(&graph)))
    });
    group.finish();
}

fn metis_io(c: &mut Criterion) {
    let graph = jittered_mesh(2000, 13);
    let text = to_metis(&graph);
    let mut group = c.benchmark_group("metis_io_2000n");
    group.sample_size(20);
    group.bench_function("serialize", |bench| {
        bench.iter(|| to_metis(black_box(&graph)))
    });
    group.bench_function("parse", |bench| {
        bench.iter(|| from_metis(black_box(&text)).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400));
    targets = generation, spectral, laplacian_assembly, coarsening, traversal, metis_io
}
criterion_main!(benches);
