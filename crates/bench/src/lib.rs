//! Experiment harness: regenerates every table and figure of the SC'94
//! paper.
//!
//! * [`paper_data`] — the numbers the paper actually reports, transcribed
//!   from Tables 1–6, so every binary prints paper-vs-measured side by
//!   side.
//! * [`runner`] — the standard experimental protocol: DPGA (16
//!   subpopulations, total population 320, `p_c = 0.7`, `p_m = 0.01`),
//!   tables take the best of 5 runs, figures average 5 runs.
//! * [`table`] — plain-text table rendering for the experiment binaries.
//!
//! Binaries (run with `cargo run -p gapart-bench --release --bin <name>`):
//! `table1` … `table6`, `figure1`, `convergence`, `ablation`.
//!
//! Environment knobs (all optional): `GAPART_RUNS` (default 5),
//! `GAPART_GENS` (default 150), `GAPART_POP` (default 320), and
//! `GAPART_FAST=1` (shrinks everything for smoke tests).

pub mod json;
pub mod paper_data;
pub mod runner;
pub mod table;

pub use runner::{ExperimentProtocol, RunSummary};
