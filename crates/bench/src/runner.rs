//! The paper's experimental protocol (§4), shared by every table binary.
//!
//! "All experiments were done with algorithm DPGA set with a total
//! population size of 320. The crossover rate p_c = 0.7 and the mutation
//! rate p_m = 0.01. […] The figures are obtained by averaging the results
//! of 5 runs, and the tables represent the best solutions obtained in
//! these 5 runs."

use gapart_core::dpga::MigrationPolicy;
use gapart_core::history::ConvergenceHistory;
use gapart_core::incremental::extend_partition_balanced;
use gapart_core::population::InitStrategy;
use gapart_core::{
    CrossoverOp, DpgaConfig, DpgaEngine, FitnessKind, GaConfig, HillClimbMode, Topology,
};
use gapart_graph::partitioner::PartitionReport;
use gapart_graph::{CsrGraph, Partition};

/// Knobs of the experimental protocol. Defaults mirror §4; everything can
/// be overridden from the environment (`GAPART_RUNS`, `GAPART_GENS`,
/// `GAPART_POP`, `GAPART_FAST=1`).
#[derive(Debug, Clone)]
pub struct ExperimentProtocol {
    /// Independent GA runs per cell (paper: 5).
    pub runs: usize,
    /// Generations per run.
    pub generations: usize,
    /// Total DPGA population (paper: 320).
    pub population: usize,
    /// DPGA topology (paper: 16 subpopulations on a 4-d hypercube).
    pub topology: Topology,
    /// Hill-climbing mode for the GA (§3.6; the paper treats it as an
    /// optional add-on, so the default polishes offspring lightly).
    pub hill_climb: HillClimbMode,
    /// Crossover operator under test (DKNUX for the headline tables).
    pub crossover: CrossoverOp,
    /// Boundary-mutation rate (extension knob; see
    /// [`gapart_core::GaConfig::boundary_mutation_rate`]).
    pub boundary_mutation_rate: f64,
    /// Base RNG seed; run `r` uses `seed + 1000·r`.
    pub seed: u64,
}

impl Default for ExperimentProtocol {
    fn default() -> Self {
        ExperimentProtocol {
            runs: 5,
            generations: 150,
            population: 320,
            topology: Topology::PAPER,
            hill_climb: HillClimbMode::Offspring { passes: 1 },
            crossover: CrossoverOp::Dknux,
            boundary_mutation_rate: 0.05,
            seed: 0x5343_3934,
        }
    }
}

impl ExperimentProtocol {
    /// Runs a registered partitioner through the unified
    /// [`gapart_graph::partitioner::Partitioner`] trait — the same
    /// dispatch path as the CLI's `--method` flag. The table binaries use
    /// this for their RSB / IBP baseline columns and seed partitions.
    ///
    /// # Panics
    ///
    /// On unknown names or algorithm failure: the experiment binaries
    /// have no error channel besides aborting the run.
    pub fn baseline(&self, name: &str, graph: &CsrGraph, num_parts: u32) -> PartitionReport {
        let p = gapart::partitioners::by_name(name)
            .unwrap_or_else(|| panic!("unknown partitioner '{name}'"));
        p.partition(graph, num_parts, BASELINE_SEED)
            .unwrap_or_else(|e| panic!("baseline {name} failed: {e}"))
    }

    /// Builds the protocol from the environment (see module docs).
    pub fn from_env() -> Self {
        let mut p = ExperimentProtocol::default();
        let parse = |name: &str| -> Option<usize> { std::env::var(name).ok()?.parse().ok() };
        if std::env::var("GAPART_FAST").is_ok_and(|v| v == "1") {
            p.runs = 2;
            p.generations = 30;
            p.population = 64;
            p.topology = Topology::Hypercube(2);
        }
        if let Some(r) = parse("GAPART_RUNS") {
            p.runs = r.max(1);
        }
        if let Some(g) = parse("GAPART_GENS") {
            p.generations = g.max(1);
        }
        if let Some(pop) = parse("GAPART_POP") {
            p.population = pop.max(8);
        }
        p
    }

    /// The DPGA configuration for one run. `init_overrides` (if given)
    /// cycle across subpopulations — the heterogeneous-island pattern the
    /// seeded protocols use.
    pub fn dpga_config(
        &self,
        num_parts: u32,
        fitness: FitnessKind,
        init: InitStrategy,
        init_overrides: Option<Vec<InitStrategy>>,
        run: usize,
    ) -> DpgaConfig {
        let mut base = GaConfig::paper_defaults(num_parts)
            .with_fitness(fitness)
            .with_crossover(self.crossover)
            .with_population_size(self.population)
            .with_generations(self.generations)
            .with_init(init)
            .with_hill_climb(self.hill_climb)
            .with_seed(self.seed.wrapping_add(1000 * run as u64));
        base.boundary_mutation_rate = self.boundary_mutation_rate;
        DpgaConfig {
            base,
            topology: self.topology,
            migration_interval: 5,
            num_migrants: 2,
            migration_policy: MigrationPolicy::Best,
            parallel: true,
            init_overrides,
        }
    }

    /// Runs the protocol: `runs` independent DPGA runs, returning the
    /// best-of-runs cut (tables) and the full per-run histories (figures).
    pub fn run(
        &self,
        graph: &CsrGraph,
        num_parts: u32,
        fitness: FitnessKind,
        init: InitStrategy,
    ) -> RunSummary {
        self.run_with_overrides(graph, num_parts, fitness, init, None)
    }

    /// Like [`ExperimentProtocol::run`] but with per-subpopulation
    /// initialization overrides.
    pub fn run_with_overrides(
        &self,
        graph: &CsrGraph,
        num_parts: u32,
        fitness: FitnessKind,
        init: InitStrategy,
        init_overrides: Option<Vec<InitStrategy>>,
    ) -> RunSummary {
        let mut best_cut = u64::MAX;
        let mut cuts = Vec::with_capacity(self.runs);
        let mut histories = Vec::with_capacity(self.runs);
        for r in 0..self.runs {
            let config =
                self.dpga_config(num_parts, fitness, init.clone(), init_overrides.clone(), r);
            let result = DpgaEngine::new(graph, config)
                .expect("protocol configs are valid")
                .run();
            best_cut = best_cut.min(result.best_cut);
            cuts.push(result.best_cut);
            histories.push(result.history);
        }
        RunSummary {
            best_cut,
            cuts,
            histories,
        }
    }

    /// Random-initialization protocol (Table 4).
    pub fn run_random_init(
        &self,
        graph: &CsrGraph,
        num_parts: u32,
        fitness: FitnessKind,
    ) -> RunSummary {
        self.run(graph, num_parts, fitness, InitStrategy::BalancedRandom)
    }

    /// Heuristic-seeded protocol (Tables 1, 2, 5): heterogeneous islands —
    /// half the subpopulations are seeded from `seed_partition` (first
    /// copy exact, rest 10% perturbed), the other half start
    /// balanced-random. Seeded islands plus elitism guarantee the result
    /// is never worse than the seed; random islands keep exploring, and
    /// migration merges the two.
    pub fn run_seeded(
        &self,
        graph: &CsrGraph,
        num_parts: u32,
        fitness: FitnessKind,
        seed_partition: &Partition,
    ) -> RunSummary {
        let seeded = InitStrategy::Seeded {
            partition: seed_partition.labels().to_vec(),
            perturbation: 0.1,
        };
        let overrides = vec![seeded.clone(), InitStrategy::BalancedRandom];
        self.run_with_overrides(graph, num_parts, fitness, seeded, Some(overrides))
    }

    /// Incremental protocol (Tables 3, 6): extend the old partition to the
    /// grown graph balanced-randomly (§3.5) and seed the population from
    /// the extension with a small perturbation.
    pub fn run_incremental(
        &self,
        grown: &CsrGraph,
        old: &Partition,
        fitness: FitnessKind,
    ) -> RunSummary {
        let extended = extend_partition_balanced(grown, old, self.seed)
            .expect("old partition fits the grown graph");
        let seeded = InitStrategy::Seeded {
            partition: extended.labels().to_vec(),
            perturbation: 0.05,
        };
        let overrides = vec![seeded.clone(), seeded.clone(), InitStrategy::BalancedRandom];
        self.run_with_overrides(grown, old.num_parts(), fitness, seeded, Some(overrides))
    }
}

/// Outcome of one protocol cell.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Best cut over all runs (what the paper's tables report).
    pub best_cut: u64,
    /// Each run's best cut.
    pub cuts: Vec<u64>,
    /// Each run's convergence history (what the paper's figures average).
    pub histories: Vec<ConvergenceHistory>,
}

impl RunSummary {
    /// Mean of the per-run best cuts.
    pub fn mean_cut(&self) -> f64 {
        if self.cuts.is_empty() {
            return 0.0;
        }
        self.cuts.iter().map(|&c| c as f64).sum::<f64>() / self.cuts.len() as f64
    }
}

/// Seed used for baseline partitioners run through
/// [`ExperimentProtocol::baseline`] — RSB's traditional default, so trait
/// dispatch reproduces the historical direct-call results exactly (IBP
/// has no randomness and ignores it).
pub const BASELINE_SEED: u64 = 0x5253_4200;

/// Standard graph fixtures shared by the binaries: the deterministic growth
/// seed used for the incremental experiments (Tables 3 & 6), so every
/// binary and test sees identical grown graphs.
pub const GROWTH_SEED: u64 = 0x6772_6f77;

/// Builds the `(base_graph, grown_graph, base_partition)` triple for an
/// incremental cell: the base graph is partitioned with RSB (the "previous
/// partitioning"), then grown locally by `added` nodes.
pub fn incremental_fixture(
    base_nodes: usize,
    added: usize,
    num_parts: u32,
) -> (CsrGraph, CsrGraph, Partition) {
    let base = gapart_graph::generators::paper_graph(base_nodes);
    let old = gapart::partitioners::by_name("rsb")
        .expect("rsb is registered")
        .partition(&base, num_parts, BASELINE_SEED)
        .expect("paper graphs are partitionable")
        .partition;
    let grown = gapart_graph::incremental::grow_local(&base, added, GROWTH_SEED)
        .expect("paper graphs carry coordinates")
        .graph;
    (base, grown, old)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapart_graph::generators::paper_graph;

    fn tiny() -> ExperimentProtocol {
        ExperimentProtocol {
            runs: 2,
            generations: 10,
            population: 32,
            topology: Topology::Hypercube(2),
            hill_climb: HillClimbMode::Off,
            crossover: CrossoverOp::Dknux,
            boundary_mutation_rate: 0.0,
            seed: 1,
        }
    }

    #[test]
    fn protocol_runs_and_summarizes() {
        let g = paper_graph(78);
        let s = tiny().run_random_init(&g, 4, FitnessKind::TotalCut);
        assert_eq!(s.cuts.len(), 2);
        assert_eq!(s.histories.len(), 2);
        assert_eq!(s.best_cut, *s.cuts.iter().min().unwrap());
        assert!(s.mean_cut() >= s.best_cut as f64);
    }

    #[test]
    fn seeded_run_accepts_rsb_partition() {
        let g = paper_graph(78);
        let rsb = gapart_rsb::rsb_partition(&g, 4, &Default::default()).unwrap();
        let s = tiny().run_seeded(&g, 4, FitnessKind::WorstCut, &rsb);
        assert!(s.best_cut > 0);
    }

    #[test]
    fn incremental_fixture_is_consistent() {
        let (base, grown, old) = incremental_fixture(78, 10, 4);
        assert_eq!(base.num_nodes(), 78);
        assert_eq!(grown.num_nodes(), 88);
        assert_eq!(old.num_nodes(), 78);
        let s = tiny().run_incremental(&grown, &old, FitnessKind::TotalCut);
        assert!(s.best_cut > 0);
    }

    #[test]
    fn every_registered_partitioner_is_invocable_from_the_runner() {
        let g = paper_graph(78);
        let mut protocol = tiny();
        protocol.generations = 3;
        for name in gapart::partitioners::NAMES {
            // GA/DPGA at registry defaults are slow; shrink via env-free
            // trait dispatch with the tiny protocol's own config instead.
            let report = match name {
                "ga" => gapart::partitioners::tuned_ga(
                    gapart_core::GaConfig::paper_defaults(4)
                        .with_population_size(16)
                        .with_generations(3),
                )
                .partition(&g, 4, 1)
                .unwrap(),
                "dpga" => gapart::partitioners::tuned_dpga(protocol.dpga_config(
                    4,
                    FitnessKind::TotalCut,
                    InitStrategy::BalancedRandom,
                    None,
                    0,
                ))
                .partition(&g, 4, 1)
                .unwrap(),
                _ => protocol.baseline(name, &g, 4),
            };
            assert_eq!(report.algorithm, name);
            assert_eq!(report.partition.num_nodes(), 78);
            assert!(report.partition.labels().iter().all(|&l| l < 4));
        }
    }

    #[test]
    fn deterministic_protocol() {
        let g = paper_graph(88);
        let a = tiny().run_random_init(&g, 4, FitnessKind::TotalCut);
        let b = tiny().run_random_init(&g, 4, FitnessKind::TotalCut);
        assert_eq!(a.cuts, b.cuts);
    }
}
