//! Minimal JSON support for the persistent benchmark trajectory.
//!
//! The workspace has no network registry, so rather than vendoring a full
//! serde stack this module implements exactly what `BENCH_*.json` needs:
//! a strict parser for the JSON subset the benchsuite emits (objects,
//! arrays, strings, finite numbers, booleans, null) and the schema
//! validator CI runs against every emitted trajectory file. Both sides —
//! writer in the `benchsuite` binary, reader here — are tested against
//! each other.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The schema identifier every trajectory document must carry.
pub const TRAJECTORY_SCHEMA: &str = "gapart-bench-trajectory/v1";

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is normalized (sorted); duplicates rejected.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (no fraction, no sign, within `u64`).
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// A human-readable message naming the byte offset of the problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of document".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key_at = *pos;
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        if map.insert(key, value).is_some() {
            return Err(format!("duplicate key at byte {key_at}"));
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogates are not worth supporting for this
                        // schema; reject rather than mis-decode.
                        let c = char::from_u32(code)
                            .ok_or_else(|| format!("surrogate \\u escape at byte {}", *pos))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so boundaries
                // are valid; find the next one).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).expect("valid UTF-8 slice"));
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let tok = std::str::from_utf8(&b[start..*pos]).expect("ascii number token");
    let x: f64 = tok
        .parse()
        .map_err(|_| format!("bad number '{tok}' at byte {start}"))?;
    if !x.is_finite() {
        return Err(format!("non-finite number at byte {start}"));
    }
    Ok(Json::Num(x))
}

/// One validated row of a trajectory document, as the downstream tooling
/// consumes it.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryRow {
    /// Scenario name (`grid`, `geometric`, `churn-stream`, …).
    pub scenario: String,
    /// Registry method name (or `stream+<method>` for streaming rows).
    pub method: String,
    /// `flat`, `multilevel`, or `stream`.
    pub mode: String,
    /// Forced worker-pool size for this row.
    pub threads: u64,
    /// Part count of the run.
    pub parts: u64,
    /// Seed of the run.
    pub seed: u64,
    /// Node count of the scenario graph.
    pub nodes: u64,
    /// Edge count of the scenario graph.
    pub edges: u64,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Final total cut weight.
    pub total_cut: u64,
    /// FNV-1a hash of the final labels, hex — the determinism witness.
    pub partition_hash: String,
}

impl TrajectoryRow {
    /// The identity a row is matched on across documents: everything
    /// that pins the run except its outputs (`wall_ms`, cut, hash).
    pub fn key(&self) -> (String, String, String, u64, u64, u64, u64, u64) {
        (
            self.scenario.clone(),
            self.method.clone(),
            self.mode.clone(),
            self.threads,
            self.parts,
            self.seed,
            self.nodes,
            self.edges,
        )
    }
}

/// Validates a trajectory document against the `BENCH_*.json` schema and
/// returns the parsed rows.
///
/// Checks, in order: top-level shape and types, per-row required fields,
/// and the determinism contract — rows of the same
/// `(scenario, method, parts, seed)` cell must report identical
/// `partition_hash` and `total_cut` across thread counts.
///
/// # Errors
///
/// A message naming the first offending field or row.
pub fn validate_trajectory(doc: &Json) -> Result<Vec<TrajectoryRow>, String> {
    let need = |key: &str| doc.get(key).ok_or(format!("missing top-level '{key}'"));
    let schema = need("schema")?
        .as_str()
        .ok_or("'schema' must be a string")?;
    if schema != TRAJECTORY_SCHEMA {
        return Err(format!(
            "schema is '{schema}', expected '{TRAJECTORY_SCHEMA}'"
        ));
    }
    need("pr")?
        .as_uint()
        .ok_or("'pr' must be a non-negative integer")?;
    need("smoke")?
        .as_bool()
        .ok_or("'smoke' must be a boolean")?;
    let host = need("host")?;
    host.get("cpus")
        .and_then(Json::as_uint)
        .filter(|&c| c >= 1)
        .ok_or("'host.cpus' must be a positive integer")?;
    let results = need("results")?
        .as_arr()
        .ok_or("'results' must be an array")?;
    if results.is_empty() {
        return Err("'results' must not be empty".into());
    }

    let mut rows = Vec::with_capacity(results.len());
    let mut cells: BTreeMap<(String, String, u64, u64), (String, u64)> = BTreeMap::new();
    for (i, row) in results.iter().enumerate() {
        let field = |key: &str| {
            row.get(key)
                .ok_or_else(|| format!("results[{i}]: missing '{key}'"))
        };
        let str_field = |key: &str| -> Result<String, String> {
            field(key)?
                .as_str()
                .map(String::from)
                .ok_or_else(|| format!("results[{i}]: '{key}' must be a string"))
        };
        let uint_field = |key: &str| -> Result<u64, String> {
            field(key)?
                .as_uint()
                .ok_or_else(|| format!("results[{i}]: '{key}' must be a non-negative integer"))
        };
        let scenario = str_field("scenario")?;
        let method = str_field("method")?;
        let mode = str_field("mode")?;
        if !matches!(mode.as_str(), "flat" | "multilevel" | "stream") {
            return Err(format!(
                "results[{i}]: mode '{mode}' is not flat|multilevel|stream"
            ));
        }
        let threads = uint_field("threads")?;
        if threads == 0 {
            return Err(format!("results[{i}]: 'threads' must be positive"));
        }
        let parts = uint_field("parts")?;
        if parts == 0 {
            return Err(format!("results[{i}]: 'parts' must be positive"));
        }
        let seed = uint_field("seed")?;
        let nodes = uint_field("nodes")?;
        let edges = uint_field("edges")?;
        let wall_ms = field("wall_ms")?
            .as_f64()
            .filter(|&x| x >= 0.0)
            .ok_or_else(|| format!("results[{i}]: 'wall_ms' must be a non-negative number"))?;
        let total_cut = uint_field("total_cut")?;
        uint_field("max_cut")?;
        field("imbalance")?
            .as_f64()
            .ok_or_else(|| format!("results[{i}]: 'imbalance' must be a number"))?;
        // Optional memory telemetry (PR 7+): when present it must be a
        // non-negative integer byte count. Older documents simply omit it.
        if let Some(rss) = row.get("peak_rss_bytes") {
            rss.as_uint().ok_or_else(|| {
                format!("results[{i}]: 'peak_rss_bytes' must be a non-negative integer")
            })?;
        }
        let partition_hash = str_field("partition_hash")?;
        if partition_hash.len() != 16 || !partition_hash.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!(
                "results[{i}]: 'partition_hash' must be 16 hex digits, got '{partition_hash}'"
            ));
        }

        // Determinism across thread counts within one scenario cell.
        let cell = (scenario.clone(), method.clone(), parts, seed);
        match cells.get(&cell) {
            None => {
                cells.insert(cell, (partition_hash.clone(), total_cut));
            }
            Some((h, c)) => {
                if *h != partition_hash || *c != total_cut {
                    return Err(format!(
                        "results[{i}]: {scenario}/{method} is not deterministic across \
                         thread counts (hash {partition_hash} vs {h}, cut {total_cut} vs {c})"
                    ));
                }
            }
        }
        rows.push(TrajectoryRow {
            scenario,
            method,
            mode,
            threads,
            parts,
            seed,
            nodes,
            edges,
            wall_ms,
            total_cut,
            partition_hash,
        });
    }
    Ok(rows)
}

/// Relative cut regression tolerated by [`compare_trajectories`]: a
/// candidate row may be at most 2% worse than its baseline before the
/// gate fails.
pub const CUT_TOLERANCE: f64 = 0.02;

/// Outcome of the bench-regression gate (`benchsuite --compare`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompareReport {
    /// Rows present in both documents under the same
    /// [`TrajectoryRow::key`].
    pub matched: usize,
    /// Gate-failing regressions, one message per offending row.
    pub failures: Vec<String>,
    /// Non-failing observations (e.g. improved cuts with new hashes).
    pub notes: Vec<String>,
}

impl CompareReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The bench-regression gate: compares `candidate` rows against
/// `baseline` rows with the same identity key (scenario, method, mode,
/// threads, parts, seed, nodes, edges — everything but the outputs).
///
/// A matched row **fails** the gate when
///
/// * its cut worsened by more than [`CUT_TOLERANCE`] (the quality
///   regression case), or
/// * its cut is unchanged but its `partition_hash` differs — the run
///   silently produced a different partition of equal cut, which on a
///   deterministic pipeline means behaviour changed without the baseline
///   being refreshed.
///
/// A cut *improvement* (hash necessarily changes) is reported as a note,
/// not a failure: the PR that improves quality is expected to commit a
/// regenerated baseline, which re-pins the hashes. Zero matched rows is
/// itself a failure — a gate that compares nothing must not pass. Rows
/// only one side has (new scenarios, removed scenarios) are noted.
///
/// Wall times are never compared: they measure the host, not the code.
pub fn compare_trajectories(
    baseline: &[TrajectoryRow],
    candidate: &[TrajectoryRow],
) -> CompareReport {
    let mut report = CompareReport::default();
    let by_key: BTreeMap<_, &TrajectoryRow> = baseline.iter().map(|r| (r.key(), r)).collect();
    let row_label =
        |r: &TrajectoryRow| format!("{}/{}/{} x{}", r.scenario, r.method, r.mode, r.threads);
    let mut unmatched: Vec<String> = Vec::new();
    let mut candidate_keys = std::collections::BTreeSet::new();
    for cand in candidate {
        candidate_keys.insert(cand.key());
        let Some(base) = by_key.get(&cand.key()) else {
            unmatched.push(row_label(cand));
            continue;
        };
        report.matched += 1;
        let label = format!(
            "{}/{}/{} x{}",
            cand.scenario, cand.method, cand.mode, cand.threads
        );
        let allowed = base.total_cut as f64 * (1.0 + CUT_TOLERANCE);
        if cand.total_cut as f64 > allowed {
            let pct = if base.total_cut == 0 {
                f64::INFINITY
            } else {
                (cand.total_cut as f64 / base.total_cut as f64 - 1.0) * 100.0
            };
            report.failures.push(format!(
                "{label}: cut worsened {} -> {} (+{pct:.2}%, tolerance {:.0}%)",
                base.total_cut,
                cand.total_cut,
                CUT_TOLERANCE * 100.0
            ));
        } else if cand.total_cut == base.total_cut && cand.partition_hash != base.partition_hash {
            report.failures.push(format!(
                "{label}: partition hash diverged at equal cut {} ({} -> {}); \
                 behaviour changed — regenerate the committed baseline if intended",
                cand.total_cut, base.partition_hash, cand.partition_hash
            ));
        } else if cand.partition_hash != base.partition_hash {
            // Within tolerance but changed: say which way it moved — a
            // sub-tolerance regression must not read as progress.
            let direction = if cand.total_cut < base.total_cut {
                "cut improved"
            } else {
                "cut worsened within tolerance"
            };
            report.notes.push(format!(
                "{label}: {direction} {} -> {} (hash {} -> {})",
                base.total_cut, cand.total_cut, base.partition_hash, cand.partition_hash
            ));
        }
    }
    // Skipped keys are *named*, not just counted: a silently resized
    // anchor or a typo'd method name would otherwise hide inside a bare
    // count while the gate kept passing on whatever still matched.
    if !unmatched.is_empty() {
        report.notes.push(format!(
            "{} candidate row(s) have no baseline counterpart (new or resized scenarios): {}",
            unmatched.len(),
            unmatched.join(", ")
        ));
    }
    // The reverse direction matters too: an anchor silently vanishing
    // from the candidate must leave a trace (expected and benign when a
    // smoke candidate is compared against a full baseline, whose large
    // scenarios the smoke run never executes).
    let baseline_only: Vec<String> = by_key
        .iter()
        .filter(|(k, _)| !candidate_keys.contains(*k))
        .map(|(_, r)| row_label(r))
        .collect();
    if !baseline_only.is_empty() {
        report.notes.push(format!(
            "{} baseline row(s) have no candidate counterpart \
             (full-only scenarios, or rows the candidate no longer runs): {}",
            baseline_only.len(),
            baseline_only.join(", ")
        ));
    }
    if report.matched == 0 {
        report.failures.push(
            "no comparable rows between baseline and candidate — the gate compared nothing"
                .to_string(),
        );
    }
    report
}

/// FNV-1a over the label array — the determinism witness recorded as
/// `partition_hash` (16 lowercase hex digits). Canonical home is
/// [`gapart_graph::partition::hash_labels`]; re-exported here so the
/// trajectory schema keeps its historical import path.
pub use gapart_graph::partition::hash_labels;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[2],
            Json::Num(-300.0)
        );
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(doc.get("b").unwrap().get("d").unwrap(), &Json::Null);
        assert_eq!(doc.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode→";
        let doc = parse(&format!("{{\"k\": \"{}\"}}", escape(nasty))).unwrap();
        assert_eq!(doc.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} x",
            "{\"a\": 1, \"a\": 2}",
            "\"unterminated",
            "nul",
            "[1e999]",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn as_uint_is_exact() {
        assert_eq!(parse("7").unwrap().as_uint(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_uint(), None);
        assert_eq!(parse("-7").unwrap().as_uint(), None);
    }

    fn row(threads: u64, hash: &str, cut: u64) -> String {
        format!(
            r#"{{"scenario": "grid", "method": "mlga", "mode": "multilevel",
               "threads": {threads}, "parts": 8, "seed": 1, "nodes": 100, "edges": 180,
               "wall_ms": 12.5, "total_cut": {cut}, "max_cut": 9, "imbalance": 1.01,
               "partition_hash": "{hash}"}}"#
        )
    }

    fn doc(rows: &[String]) -> String {
        format!(
            r#"{{"schema": "{TRAJECTORY_SCHEMA}", "pr": 4, "smoke": true,
               "host": {{"cpus": 4}}, "results": [{}]}}"#,
            rows.join(",")
        )
    }

    #[test]
    fn accepts_a_well_formed_trajectory() {
        let text = doc(&[
            row(1, "00deadbeef00cafe", 42),
            row(4, "00deadbeef00cafe", 42),
        ]);
        let rows = validate_trajectory(&parse(&text).unwrap()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].threads, 4);
        assert_eq!(rows[0].total_cut, 42);
    }

    #[test]
    fn rejects_cross_thread_nondeterminism() {
        let text = doc(&[
            row(1, "00deadbeef00cafe", 42),
            row(4, "00deadbeef00beef", 42),
        ]);
        let err = validate_trajectory(&parse(&text).unwrap()).unwrap_err();
        assert!(err.contains("not deterministic"), "{err}");
        let text = doc(&[
            row(1, "00deadbeef00cafe", 42),
            row(4, "00deadbeef00cafe", 43),
        ]);
        let err = validate_trajectory(&parse(&text).unwrap()).unwrap_err();
        assert!(err.contains("not deterministic"), "{err}");
    }

    #[test]
    fn peak_rss_is_optional_but_typed() {
        // Absent (pre-PR-7 documents): fine.
        let old = doc(&[row(1, "00deadbeef00cafe", 42)]);
        assert!(validate_trajectory(&parse(&old).unwrap()).is_ok());
        // Present and integral: fine.
        let with = row(1, "00deadbeef00cafe", 42)
            .replace("\"wall_ms\"", "\"peak_rss_bytes\": 123456789, \"wall_ms\"");
        assert!(validate_trajectory(&parse(&doc(&[with])).unwrap()).is_ok());
        // Present but fractional: rejected.
        let bad = row(1, "00deadbeef00cafe", 42)
            .replace("\"wall_ms\"", "\"peak_rss_bytes\": 1.5, \"wall_ms\"");
        let err = validate_trajectory(&parse(&doc(&[bad])).unwrap()).unwrap_err();
        assert!(err.contains("peak_rss_bytes"), "{err}");
    }

    #[test]
    fn rejects_schema_violations() {
        let missing = r#"{"schema": "gapart-bench-trajectory/v1", "pr": 4}"#;
        assert!(validate_trajectory(&parse(missing).unwrap()).is_err());
        let wrong = doc(&[row(1, "00deadbeef00cafe", 1)]).replace("trajectory/v1", "v0");
        let err = validate_trajectory(&parse(&wrong).unwrap()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
        let bad_hash = doc(&[row(1, "xyz", 1)]);
        assert!(validate_trajectory(&parse(&bad_hash).unwrap()).is_err());
        let bad_mode = doc(&[row(1, "00deadbeef00cafe", 1)]).replace("multilevel", "turbo");
        assert!(validate_trajectory(&parse(&bad_mode).unwrap()).is_err());
    }

    fn rows_of(text: &str) -> Vec<TrajectoryRow> {
        validate_trajectory(&parse(text).unwrap()).unwrap()
    }

    #[test]
    fn compare_passes_identical_documents_and_captures_row_identity() {
        let text = doc(&[
            row(1, "00deadbeef00cafe", 42),
            row(4, "00deadbeef00cafe", 42),
        ]);
        let rows = rows_of(&text);
        assert_eq!((rows[0].parts, rows[0].seed), (8, 1));
        assert_eq!((rows[0].nodes, rows[0].edges), (100, 180));
        let report = compare_trajectories(&rows, &rows);
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.matched, 2);
        assert!(report.notes.is_empty());
    }

    #[test]
    fn compare_fails_on_cut_regression_beyond_tolerance() {
        let base = rows_of(&doc(&[row(1, "00deadbeef00cafe", 100)]));
        // 102 is exactly +2%: allowed. 103 is past the tolerance: fail.
        let at_limit = rows_of(&doc(&[row(1, "00deadbeef00beef", 102)]));
        assert!(compare_trajectories(&base, &at_limit).passed());
        let over = rows_of(&doc(&[row(1, "00deadbeef00beef", 103)]));
        let report = compare_trajectories(&base, &over);
        assert!(!report.passed());
        assert!(report.failures[0].contains("cut worsened"), "{report:?}");
    }

    #[test]
    fn compare_fails_on_hash_divergence_at_equal_cut() {
        let base = rows_of(&doc(&[row(1, "00deadbeef00cafe", 42)]));
        let relabeled = rows_of(&doc(&[row(1, "00deadbeef00beef", 42)]));
        let report = compare_trajectories(&base, &relabeled);
        assert!(!report.passed());
        assert!(report.failures[0].contains("hash diverged"), "{report:?}");
    }

    #[test]
    fn compare_notes_improvements_and_fails_on_zero_overlap() {
        let base = rows_of(&doc(&[row(1, "00deadbeef00cafe", 42)]));
        let improved = rows_of(&doc(&[row(1, "00deadbeef00beef", 30)]));
        let report = compare_trajectories(&base, &improved);
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.notes[0].contains("improved"), "{report:?}");

        // Disjoint scenario sets must not silently pass, and both
        // directions of the mismatch leave a trace in the notes.
        let other = rows_of(&doc(&[row(1, "00deadbeef00cafe", 42)]).replace("grid", "mesh"));
        let report = compare_trajectories(&base, &other);
        assert!(!report.passed());
        assert!(report.failures[0].contains("no comparable rows"));
        assert_eq!(report.matched, 0);
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("no baseline counterpart")),
            "{report:?}"
        );
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("no candidate counterpart")),
            "{report:?}"
        );
    }

    #[test]
    fn compare_names_skipped_candidate_keys_and_gates_on_the_intersection() {
        // Candidate grew a row the baseline never recorded (a new anchor
        // or a resized scenario): the gate judges only the intersection,
        // and the skipped key is *named* in the notes, not just counted.
        let base = rows_of(&doc(&[row(1, "00deadbeef00cafe", 42)]));
        // The same cell at a new thread count keeps the cell's hash and
        // cut (the document-level determinism contract still holds).
        let cand = rows_of(&doc(&[
            row(1, "00deadbeef00cafe", 42),
            row(2, "00deadbeef00cafe", 42),
        ]));
        let report = compare_trajectories(&base, &cand);
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.matched, 1);
        let note = report
            .notes
            .iter()
            .find(|n| n.contains("no baseline counterpart"))
            .expect("skipped candidate rows must be noted");
        assert!(note.contains("grid/mlga/multilevel x2"), "{note}");
    }

    #[test]
    fn compare_names_skipped_baseline_keys_and_gates_on_the_intersection() {
        // The smoke-vs-full case: the baseline's full-only rows are
        // absent from the candidate. The gate still passes on the
        // matched anchors and every skipped baseline key is named.
        let base = rows_of(&doc(&[
            row(1, "00deadbeef00cafe", 42),
            row(4, "00deadbeef00cafe", 42),
            row(8, "00deadbeef00cafe", 42),
        ]));
        let cand = rows_of(&doc(&[row(1, "00deadbeef00cafe", 42)]));
        let report = compare_trajectories(&base, &cand);
        assert!(report.passed(), "{:?}", report.failures);
        assert_eq!(report.matched, 1);
        let note = report
            .notes
            .iter()
            .find(|n| n.contains("no candidate counterpart"))
            .expect("skipped baseline rows must be noted");
        assert!(
            note.contains("grid/mlga/multilevel x4") && note.contains("grid/mlga/multilevel x8"),
            "{note}"
        );
    }

    #[test]
    fn label_hash_is_stable_and_sensitive() {
        let a = hash_labels(&[0, 1, 2, 1]);
        assert_eq!(a.len(), 16);
        assert_eq!(a, hash_labels(&[0, 1, 2, 1]));
        assert_ne!(a, hash_labels(&[0, 1, 2, 0]));
        assert_ne!(hash_labels(&[]), hash_labels(&[0]));
    }
}
