//! The numbers reported in the paper's Tables 1–6, transcribed verbatim.
//!
//! `None` marks cells the paper leaves blank (Table 6 omits the RSB
//! column for the 78+20 case).

/// One row of a Fitness-1 table (parts 2, 4, 8): cut values `Σ C(q)/2`.
#[derive(Debug, Clone, Copy)]
pub struct F1Row {
    /// Graph label (node count, or base+added for incremental rows).
    pub label: &'static str,
    /// DKNUX cuts at 2/4/8 parts.
    pub dknux: [u64; 3],
    /// RSB cuts at 2/4/8 parts.
    pub rsb: [u64; 3],
}

/// One row of a Fitness-2 table (parts 4, 8): worst cuts `max_q C(q)`.
#[derive(Debug, Clone, Copy)]
pub struct F2Row {
    /// Graph label.
    pub label: &'static str,
    /// DKNUX worst cuts at 4/8 parts.
    pub dknux: [u64; 2],
    /// RSB worst cuts at 4/8 parts (`None` where the paper is blank).
    pub rsb: [Option<u64>; 2],
}

/// Table 1: DKNUX (IBP-seeded) vs RSB, Fitness 1.
pub const TABLE1: [F1Row; 2] = [
    F1Row {
        label: "167",
        dknux: [20, 63, 109],
        rsb: [20, 59, 120],
    },
    F1Row {
        label: "144",
        dknux: [33, 65, 120],
        rsb: [36, 78, 119],
    },
];

/// Table 2: GA refining RSB solutions, Fitness 1.
pub const TABLE2: [F1Row; 4] = [
    F1Row {
        label: "139",
        dknux: [28, 65, 100],
        rsb: [30, 69, 113],
    },
    F1Row {
        label: "213",
        dknux: [41, 77, 138],
        rsb: [41, 82, 151],
    },
    F1Row {
        label: "243",
        dknux: [43, 88, 141],
        rsb: [47, 95, 154],
    },
    F1Row {
        label: "279",
        dknux: [36, 78, 139],
        rsb: [37, 88, 155],
    },
];

/// Table 3: incremental partitioning vs RSB-from-scratch, Fitness 1.
pub const TABLE3: [F1Row; 4] = [
    F1Row {
        label: "118+21",
        dknux: [31, 61, 103],
        rsb: [30, 69, 113],
    },
    F1Row {
        label: "118+41",
        dknux: [31, 66, 120],
        rsb: [33, 75, 128],
    },
    F1Row {
        label: "183+30",
        dknux: [37, 72, 133],
        rsb: [41, 82, 151],
    },
    F1Row {
        label: "183+60",
        dknux: [44, 83, 160],
        rsb: [47, 95, 154],
    },
];

/// Table 4: randomly initialized GA vs RSB, Fitness 2.
pub const TABLE4: [F2Row; 5] = [
    F2Row {
        label: "78",
        dknux: [23, 23],
        rsb: [Some(26), Some(25)],
    },
    F2Row {
        label: "88",
        dknux: [28, 21],
        rsb: [Some(33), Some(27)],
    },
    F2Row {
        label: "98",
        dknux: [26, 23],
        rsb: [Some(30), Some(30)],
    },
    F2Row {
        label: "144",
        dknux: [53, 42],
        rsb: [Some(44), Some(35)],
    },
    F2Row {
        label: "167",
        dknux: [44, 39],
        rsb: [Some(40), Some(41)],
    },
];

/// Table 5: GA refining RSB solutions, Fitness 2.
pub const TABLE5: [F2Row; 7] = [
    F2Row {
        label: "78",
        dknux: [23, 20],
        rsb: [Some(26), Some(25)],
    },
    F2Row {
        label: "88",
        dknux: [24, 22],
        rsb: [Some(33), Some(27)],
    },
    F2Row {
        label: "98",
        dknux: [24, 22],
        rsb: [Some(30), Some(30)],
    },
    F2Row {
        label: "213",
        dknux: [40, 41],
        rsb: [Some(46), Some(45)],
    },
    F2Row {
        label: "243",
        dknux: [45, 41],
        rsb: [Some(51), Some(47)],
    },
    F2Row {
        label: "279",
        dknux: [42, 42],
        rsb: [Some(46), Some(47)],
    },
    F2Row {
        label: "309",
        dknux: [44, 47],
        rsb: [Some(46), Some(52)],
    },
];

/// Table 6: incremental partitioning, Fitness 2.
pub const TABLE6: [F2Row; 8] = [
    F2Row {
        label: "78+10",
        dknux: [27, 25],
        rsb: [Some(33), Some(27)],
    },
    F2Row {
        label: "78+20",
        dknux: [29, 27],
        rsb: [None, None],
    },
    F2Row {
        label: "118+21",
        dknux: [33, 29],
        rsb: [Some(38), Some(34)],
    },
    F2Row {
        label: "118+41",
        dknux: [34, 35],
        rsb: [Some(40), Some(39)],
    },
    F2Row {
        label: "183+30",
        dknux: [41, 40],
        rsb: [Some(46), Some(45)],
    },
    F2Row {
        label: "183+60",
        dknux: [46, 45],
        rsb: [Some(51), Some(47)],
    },
    F2Row {
        label: "249+30",
        dknux: [42, 44],
        rsb: [Some(51), Some(47)],
    },
    F2Row {
        label: "249+60",
        dknux: [46, 56],
        rsb: [Some(46), Some(52)],
    },
];

/// Parses an incremental label like `"118+21"` into `(base, added)`.
pub fn parse_incremental_label(label: &str) -> Option<(usize, usize)> {
    let (base, added) = label.split_once('+')?;
    Some((base.parse().ok()?, added.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_expected_shapes() {
        assert_eq!(TABLE1.len(), 2);
        assert_eq!(TABLE2.len(), 4);
        assert_eq!(TABLE3.len(), 4);
        assert_eq!(TABLE4.len(), 5);
        assert_eq!(TABLE5.len(), 7);
        assert_eq!(TABLE6.len(), 8);
    }

    #[test]
    fn incremental_labels_parse() {
        assert_eq!(parse_incremental_label("118+21"), Some((118, 21)));
        assert_eq!(parse_incremental_label("249+60"), Some((249, 60)));
        assert_eq!(parse_incremental_label("144"), None);
    }

    #[test]
    fn paper_claim_dknux_beats_rsb_in_most_f1_cells() {
        // Sanity on the transcription: in Tables 2 & 3 DKNUX should win
        // or tie most cells (that's the paper's point).
        let mut wins = 0;
        let mut total = 0;
        for row in TABLE2.iter().chain(&TABLE3) {
            for i in 0..3 {
                total += 1;
                if row.dknux[i] <= row.rsb[i] {
                    wins += 1;
                }
            }
        }
        assert!(wins * 10 >= total * 8, "{wins}/{total}");
    }
}
