//! Minimal aligned-column text tables for the experiment binaries.

/// A text table builder with right-aligned numeric columns.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                // First column left-aligned (labels), rest right-aligned.
                if i == 0 {
                    out.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    out.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            out.push('\n');
        };
        render_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }
}

/// Formats a measured-vs-paper pair like `"63 (paper 59)"`.
pub fn vs_paper(measured: u64, paper: Option<u64>) -> String {
    match paper {
        Some(p) => format!("{measured} (paper {p})"),
        None => format!("{measured} (paper -)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["graph", "cut"]);
        t.row(["167", "20"]);
        t.row(["a-long-label", "109"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
        assert!(lines[2].starts_with("167"));
        assert!(lines[3].starts_with("a-long-label"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["x"]);
        let s = t.render();
        assert!(s.contains('x'));
    }

    #[test]
    fn vs_paper_formats() {
        assert_eq!(vs_paper(63, Some(59)), "63 (paper 59)");
        assert_eq!(vs_paper(29, None), "29 (paper -)");
    }
}
