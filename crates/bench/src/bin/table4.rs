//! Table 4: minimizing worst-case communication cost (Fitness 2) with a
//! randomly initialized population, vs RSB. Reports `max_q C(q)`.
//!
//! This is the experiment gradient-based methods cannot run at all: the
//! objective `Σ I(q) + max_q C(q)` is not differentiable (§4.3).
//!
//! Run: `cargo run -p gapart-bench --release --bin table4`

use gapart_bench::paper_data::TABLE4;
use gapart_bench::table::{vs_paper, TextTable};
use gapart_bench::ExperimentProtocol;
use gapart_core::FitnessKind;
use gapart_graph::generators::paper_graph;

fn main() {
    let protocol = ExperimentProtocol::from_env();
    println!("Table 4 — Worst-cut minimization from a random population, Fitness 2");
    println!(
        "protocol: {} runs x {} generations, population {}, {}\n",
        protocol.runs, protocol.generations, protocol.population, protocol.topology
    );

    let parts_list = [4u32, 8];
    let mut table = TextTable::new(["graph / method", "4 parts", "8 parts"]);
    for row in TABLE4 {
        let n: usize = row.label.parse().expect("table4 labels are node counts");
        let graph = paper_graph(n);

        let mut ga_cells = Vec::new();
        let mut rsb_cells = Vec::new();
        for (i, &parts) in parts_list.iter().enumerate() {
            let summary = protocol.run_random_init(&graph, parts, FitnessKind::WorstCut);
            ga_cells.push(vs_paper(summary.best_cut, Some(row.dknux[i])));

            let rsb = protocol.baseline("rsb", &graph, parts);
            rsb_cells.push(vs_paper(rsb.metrics.max_cut, row.rsb[i]));
        }
        table.row([
            format!("{} nodes — DKNUX", row.label),
            ga_cells[0].clone(),
            ga_cells[1].clone(),
        ]);
        table.row([
            format!("{} nodes — RSB", row.label),
            rsb_cells[0].clone(),
            rsb_cells[1].clone(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(measured values are best-of-{} DPGA runs; paper values in parentheses)",
        protocol.runs
    );
}
