//! DPGA parallel-speedup measurement — the paper's §5 claim that "DPGA is
//! an inherently parallel algorithm from which we can expect near-linear
//! speedups", measured on this machine's thread pool.
//!
//! Runs the same 16-island DPGA (bit-identical results by construction)
//! under rayon pools of 1, 2, 4, … threads and reports wall time and
//! speedup versus the single-thread pool. On a single-core host all rows
//! will show ~1×, which is itself the honest measurement.
//!
//! Run: `cargo run -p gapart-bench --release --bin speedup`

use gapart_bench::table::TextTable;
use gapart_bench::ExperimentProtocol;
use gapart_core::population::InitStrategy;
use gapart_core::{DpgaEngine, FitnessKind};
use gapart_graph::generators::paper_graph;
use std::time::Instant;

fn main() {
    let protocol = ExperimentProtocol::from_env();
    let graph = paper_graph(309);
    let parts = 8u32;
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "DPGA speedup on the 309-node graph, {parts} parts, 16 islands, {} generations",
        protocol.generations
    );
    println!("host parallelism: {available} threads\n");

    let mut threads = vec![1usize];
    let mut t = 2usize;
    while t <= available {
        threads.push(t);
        t *= 2;
    }
    if *threads.last().unwrap() != available && available > 1 {
        threads.push(available);
    }

    let mut table = TextTable::new(["threads", "wall time", "speedup", "best cut"]);
    let mut baseline: Option<f64> = None;
    for &nthreads in &threads {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(nthreads)
            .build()
            .expect("thread pool");
        let config = protocol.dpga_config(
            parts,
            FitnessKind::TotalCut,
            InitStrategy::BalancedRandom,
            None,
            0,
        );
        let start = Instant::now();
        let result = pool.install(|| DpgaEngine::new(&graph, config).expect("valid config").run());
        let secs = start.elapsed().as_secs_f64();
        let speedup = baseline.map_or(1.0, |b| b / secs);
        if baseline.is_none() {
            baseline = Some(secs);
        }
        table.row([
            nthreads.to_string(),
            format!("{secs:.2}s"),
            format!("{speedup:.2}x"),
            result.best_cut.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("(identical best cuts across rows confirm the lockstep design: only time changes)");
}
