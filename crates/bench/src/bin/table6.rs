//! Table 6: incremental partitioning under Fitness 2 (worst cut), vs RSB
//! from scratch on the grown graph.
//!
//! Run: `cargo run -p gapart-bench --release --bin table6`

use gapart_bench::paper_data::{parse_incremental_label, TABLE6};
use gapart_bench::runner::incremental_fixture;
use gapart_bench::table::{vs_paper, TextTable};
use gapart_bench::ExperimentProtocol;
use gapart_core::FitnessKind;

fn main() {
    let protocol = ExperimentProtocol::from_env();
    println!("Table 6 — Incremental partitioning under Fitness 2 (worst cut)");
    println!(
        "protocol: {} runs x {} generations, population {}, {}\n",
        protocol.runs, protocol.generations, protocol.population, protocol.topology
    );

    let parts_list = [4u32, 8];
    let mut table = TextTable::new(["graph / method", "4 parts", "8 parts"]);
    for row in TABLE6 {
        let (base_n, added) =
            parse_incremental_label(row.label).expect("table6 labels are base+added");

        let mut ga_cells = Vec::new();
        let mut rsb_cells = Vec::new();
        for (i, &parts) in parts_list.iter().enumerate() {
            let (_base, grown, old) = incremental_fixture(base_n, added, parts);
            let summary = protocol.run_incremental(&grown, &old, FitnessKind::WorstCut);
            ga_cells.push(vs_paper(summary.best_cut, Some(row.dknux[i])));

            let rsb = protocol.baseline("rsb", &grown, parts);
            rsb_cells.push(vs_paper(rsb.metrics.max_cut, row.rsb[i]));
        }
        table.row([
            format!("{} — DKNUX (incr)", row.label),
            ga_cells[0].clone(),
            ga_cells[1].clone(),
        ]);
        table.row([
            format!("{} — RSB (scratch)", row.label),
            rsb_cells[0].clone(),
            rsb_cells[1].clone(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(measured values are best-of-{} DPGA runs; paper values in parentheses)",
        protocol.runs
    );
}
