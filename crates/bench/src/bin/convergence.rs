//! Convergence figures: best cut vs generation for 2-point, UX, KNUX and
//! DKNUX, averaged over 5 runs — the paper's "orders of magnitude
//! improvement over traditional genetic operators in solution quality and
//! speed" claim, made visible.
//!
//! Prints a CSV-ish series (generation, one column per operator) plus a
//! summary of the generation at which each operator reaches within 10% of
//! its final value.
//!
//! Run: `cargo run -p gapart-bench --release --bin convergence`

use gapart_bench::ExperimentProtocol;
use gapart_core::history::average_histories;
use gapart_core::population::InitStrategy;
use gapart_core::{CrossoverOp, FitnessKind};
use gapart_graph::generators::paper_graph;

fn main() {
    let mut protocol = ExperimentProtocol::from_env();
    let graph = paper_graph(144);
    let parts = 4u32;
    let ops = [
        CrossoverOp::TwoPoint,
        CrossoverOp::Uniform,
        CrossoverOp::Knux,
        CrossoverOp::Dknux,
    ];

    println!("Convergence — best cut vs generation on the 144-node graph, {parts} parts");
    println!(
        "protocol: {} runs x {} generations, population {}, {} (averaged over runs)\n",
        protocol.runs, protocol.generations, protocol.population, protocol.topology
    );

    let mut curves: Vec<(CrossoverOp, Vec<f64>)> = Vec::new();
    for op in ops {
        protocol.crossover = op;
        let summary = protocol.run(
            &graph,
            parts,
            FitnessKind::TotalCut,
            InitStrategy::BalancedRandom,
        );
        let (mean_cut, _) = average_histories(&summary.histories);
        curves.push((op, mean_cut));
    }

    // Print every 5th generation to keep the table readable.
    println!(
        "gen     {}",
        curves
            .iter()
            .map(|(op, _)| format!("{op:>8}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    let len = curves.iter().map(|(_, c)| c.len()).max().unwrap_or(0);
    for g in (0..len).step_by(5) {
        let cells: Vec<String> = curves
            .iter()
            .map(|(_, c)| format!("{:8.1}", c[g.min(c.len() - 1)]))
            .collect();
        println!("{g:<7} {}", cells.join(" "));
    }

    println!("\nsummary (avg final cut, generations to within 10% of final):");
    for (op, curve) in &curves {
        let last = *curve.last().expect("non-empty curve");
        let threshold = last * 1.10;
        let reach = curve.iter().position(|&c| c <= threshold).unwrap_or(0);
        println!("  {op:>8}: final {last:7.1}, reached ~{reach} generations");
    }
    println!("\nexpected shape: KNUX/DKNUX converge far faster and lower than 2-point/UX.");
}
