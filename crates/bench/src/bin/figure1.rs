//! Figure 1: row-major and shuffled row-major indexing of an 8×8 grid.
//!
//! Regenerates both matrices from the IBP indexing code and asserts they
//! equal the paper's figure exactly — a bitwise reproduction, not a
//! statistical one.
//!
//! Run: `cargo run -p gapart-bench --release --bin figure1`

use gapart_ibp::{figure1_row_major, figure1_shuffled};

fn print_matrix(title: &str, m: &[[u64; 8]; 8]) {
    println!("{title}");
    for row in m {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:02}")).collect();
        println!("  {}", cells.join(" "));
    }
    println!();
}

fn main() {
    println!("Figure 1 — indexing schemes for an 8x8 grid\n");
    let rm = figure1_row_major();
    let sh = figure1_shuffled();
    print_matrix("(a) Row-Major Indexing", &rm);
    print_matrix("(b) Shuffled Row-Major Indexing", &sh);

    // The paper's exact matrices.
    let paper_rm: [[u64; 8]; 8] = [
        [0, 1, 2, 3, 4, 5, 6, 7],
        [8, 9, 10, 11, 12, 13, 14, 15],
        [16, 17, 18, 19, 20, 21, 22, 23],
        [24, 25, 26, 27, 28, 29, 30, 31],
        [32, 33, 34, 35, 36, 37, 38, 39],
        [40, 41, 42, 43, 44, 45, 46, 47],
        [48, 49, 50, 51, 52, 53, 54, 55],
        [56, 57, 58, 59, 60, 61, 62, 63],
    ];
    let paper_sh: [[u64; 8]; 8] = [
        [0, 1, 4, 5, 16, 17, 20, 21],
        [2, 3, 6, 7, 18, 19, 22, 23],
        [8, 9, 12, 13, 24, 25, 28, 29],
        [10, 11, 14, 15, 26, 27, 30, 31],
        [32, 33, 36, 37, 48, 49, 52, 53],
        [34, 35, 38, 39, 50, 51, 54, 55],
        [40, 41, 44, 45, 56, 57, 60, 61],
        [42, 43, 46, 47, 58, 59, 62, 63],
    ];
    assert_eq!(rm, paper_rm, "row-major matrix deviates from the paper");
    assert_eq!(sh, paper_sh, "shuffled matrix deviates from the paper");
    println!("both matrices match the paper's Figure 1 exactly ✓");

    // Bonus: the appendix's interleaving examples.
    use gapart_ibp::interleave::{interleave, Dim};
    let ex1 = interleave(&[Dim::new(0b001, 3), Dim::new(0b010, 3), Dim::new(0b110, 3)]);
    let ex2 = interleave(&[Dim::new(0b101, 3), Dim::new(0b01, 2), Dim::new(0b0, 1)]);
    println!("\nappendix examples:");
    println!("  interleave(001, 010, 110) = {ex1:09b} (paper: 001011100)");
    println!("  interleave(101, 01, 0)    = {ex2:06b} (paper: 100110)");
    assert_eq!(ex1, 0b001011100);
    assert_eq!(ex2, 0b100110);
    println!("appendix examples match ✓");
}
