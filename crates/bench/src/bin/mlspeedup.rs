//! Flat GA vs multilevel GA — the speed case for the generic V-cycle.
//!
//! The paper recommends "a prior graph contraction step" before applying
//! the GA to very large graphs. This binary measures exactly that claim
//! on a 100×100 grid (10,000 nodes): the flat `ga` method at the §4
//! protocol budget versus the registry's `mlga` (coarsen → coarse-level
//! GA → project + k-way refine), reporting wall time and total cut for
//! both. `mlga` should match or beat the flat cut in a fraction of the
//! time — the GA only ever breeds ~64-node chromosomes.
//!
//! Run: `cargo run -p gapart-bench --release --bin mlspeedup`
//! Knobs: `GAPART_GENS` / `GAPART_POP` / `GAPART_FAST=1` shrink the flat
//! GA budget (the multilevel side is auto-sized and unaffected).

use gapart::partitioners;
use gapart_bench::table::TextTable;
use gapart_bench::ExperimentProtocol;
use gapart_core::GaConfig;
use gapart_graph::generators::{grid2d, GridKind};
use std::time::Instant;

fn main() {
    let protocol = ExperimentProtocol::from_env();
    let (rows, cols) = (100usize, 100usize);
    let graph = grid2d(rows, cols, GridKind::FourConnected);
    let parts = 8u32;
    let seed = 0x4d4c_4741; // "MLGA"
    println!(
        "flat ga (pop {}, {} gens) vs mlga on the {rows}x{cols} grid, {parts} parts, seed {seed:#x}\n",
        protocol.population, protocol.generations
    );

    let flat = partitioners::tuned_ga(
        GaConfig::paper_defaults(parts)
            .with_population_size(protocol.population)
            .with_generations(protocol.generations),
    );
    let ml = partitioners::by_name("mlga").expect("mlga is registered");

    let mut table = TextTable::new(["method", "wall time", "total cut", "imbalance"]);
    let mut times = Vec::new();
    let mut cuts = Vec::new();
    for p in [&flat, &ml] {
        let start = Instant::now();
        let report = p
            .partition(&graph, parts, seed)
            .expect("grid partitioning cannot fail");
        let secs = start.elapsed().as_secs_f64();
        times.push(secs);
        cuts.push(report.metrics.total_cut);
        table.row([
            p.name().to_string(),
            format!("{secs:.2}s"),
            report.metrics.total_cut.to_string(),
            format!("{:.1}", report.metrics.imbalance),
        ]);
    }
    println!("{}", table.render());
    println!(
        "mlga is {:.1}x faster; cut {} vs flat {} ({})",
        times[0] / times[1].max(1e-9),
        cuts[1],
        cuts[0],
        if cuts[1] <= cuts[0] {
            "multilevel matches or beats flat"
        } else {
            "flat wins on cut this run"
        }
    );
}
