//! Parameter sweeps — the supporting data behind the paper's §3.4/§5
//! claims (distributed populations work, migration matters, GA cost
//! scales with population) rendered as printable series.
//!
//! Sweeps: total population, migration interval, seeded-init perturbation,
//! and DPGA thread speedup (wall-clock, parallel vs sequential, same
//! seeds — results are bit-identical so only time differs).
//!
//! Run: `cargo run -p gapart-bench --release --bin sweep`

use gapart_bench::table::TextTable;
use gapart_bench::ExperimentProtocol;
use gapart_core::population::InitStrategy;
use gapart_core::{DpgaEngine, FitnessKind, Topology};
use gapart_graph::generators::paper_graph;
use std::time::Instant;

fn main() {
    let protocol = ExperimentProtocol::from_env();
    let graph = paper_graph(167);
    let parts = 4u32;
    println!("Sweeps on the 167-node graph, {parts} parts, Fitness 1\n");

    // --- population size -------------------------------------------------
    {
        let mut t = TextTable::new(["total population", "best cut", "mean cut"]);
        for pop in [64usize, 128, 256, 320, 512] {
            let mut p = protocol.clone();
            p.population = pop;
            p.runs = 3;
            let s = p.run(
                &graph,
                parts,
                FitnessKind::TotalCut,
                InitStrategy::BalancedRandom,
            );
            t.row([
                pop.to_string(),
                s.best_cut.to_string(),
                format!("{:.1}", s.mean_cut()),
            ]);
        }
        println!("population size (16 islands)\n{}", t.render());
    }

    // --- migration interval ----------------------------------------------
    {
        let mut t = TextTable::new(["migration interval", "best cut"]);
        for interval in [1usize, 3, 5, 10, 25, usize::MAX / 2] {
            let mut cut = u64::MAX;
            for r in 0..3usize {
                let mut config = protocol.dpga_config(
                    parts,
                    FitnessKind::TotalCut,
                    InitStrategy::BalancedRandom,
                    None,
                    r,
                );
                config.migration_interval = interval;
                let res = DpgaEngine::new(&graph, config).expect("valid config").run();
                cut = cut.min(res.best_cut);
            }
            let label = if interval > 1000 {
                "never".to_string()
            } else {
                interval.to_string()
            };
            t.row([label, cut.to_string()]);
        }
        println!("migration interval (isolation → panmixia)\n{}", t.render());
    }

    // --- seeded-init perturbation ------------------------------------------
    {
        let seed_partition = protocol.baseline("rsb", &graph, parts).partition;
        let mut t = TextTable::new(["perturbation", "best cut"]);
        for perturbation in [0.0f64, 0.05, 0.1, 0.25, 0.5] {
            let init = InitStrategy::Seeded {
                partition: seed_partition.labels().to_vec(),
                perturbation,
            };
            let mut p = protocol.clone();
            p.runs = 3;
            let s = p.run(&graph, parts, FitnessKind::TotalCut, init);
            t.row([format!("{perturbation:.2}"), s.best_cut.to_string()]);
        }
        println!("seeded-init perturbation (RSB seed)\n{}", t.render());
    }

    // --- parallel speedup ----------------------------------------------------
    {
        let mut t = TextTable::new(["driver", "wall time", "best cut"]);
        for (label, parallel) in [("sequential", false), ("parallel (rayon)", true)] {
            let mut config = protocol.dpga_config(
                8,
                FitnessKind::TotalCut,
                InitStrategy::BalancedRandom,
                None,
                0,
            );
            config.parallel = parallel;
            config.topology = Topology::Hypercube(4);
            let start = Instant::now();
            let res = DpgaEngine::new(&graph, config).expect("valid config").run();
            t.row([
                label.to_string(),
                format!("{:.2?}", start.elapsed()),
                res.best_cut.to_string(),
            ]);
        }
        println!(
            "DPGA driver (identical results, different wall time; {} threads available)\n{}",
            std::thread::available_parallelism().map_or(0, |n| n.get()),
            t.render()
        );
    }
}
