//! Table 1: DKNUX (population seeded with an IBP solution) vs RSB, using
//! Fitness 1. Reports total inter-part edges `Σ_q C(q)/2`.
//!
//! Run: `cargo run -p gapart-bench --release --bin table1`

use gapart_bench::paper_data::TABLE1;
use gapart_bench::table::{vs_paper, TextTable};
use gapart_bench::ExperimentProtocol;
use gapart_core::FitnessKind;
use gapart_graph::generators::paper_graph;

fn main() {
    let protocol = ExperimentProtocol::from_env();
    println!("Table 1 — Best solutions: DKNUX (IBP-seeded) vs RSB, Fitness 1");
    println!(
        "protocol: {} runs x {} generations, population {}, {}\n",
        protocol.runs, protocol.generations, protocol.population, protocol.topology
    );

    let parts_list = [2u32, 4, 8];
    let mut table = TextTable::new(["graph / method", "2 parts", "4 parts", "8 parts"]);
    for row in TABLE1 {
        let n: usize = row.label.parse().expect("table1 labels are node counts");
        let graph = paper_graph(n);

        let mut ga_cells = Vec::new();
        let mut rsb_cells = Vec::new();
        for (i, &parts) in parts_list.iter().enumerate() {
            let ibp_seed = protocol.baseline("ibp", &graph, parts);
            let summary =
                protocol.run_seeded(&graph, parts, FitnessKind::TotalCut, &ibp_seed.partition);
            ga_cells.push(vs_paper(summary.best_cut, Some(row.dknux[i])));

            let rsb = protocol.baseline("rsb", &graph, parts);
            rsb_cells.push(vs_paper(rsb.metrics.total_cut, Some(row.rsb[i])));
        }
        table.row([
            format!("{} nodes — DKNUX", row.label),
            ga_cells[0].clone(),
            ga_cells[1].clone(),
            ga_cells[2].clone(),
        ]);
        table.row([
            format!("{} nodes — RSB", row.label),
            rsb_cells[0].clone(),
            rsb_cells[1].clone(),
            rsb_cells[2].clone(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(measured values are best-of-{} DPGA runs; paper values in parentheses)",
        protocol.runs
    );
}
