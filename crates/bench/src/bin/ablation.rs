//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. KNUX reference source: IBP seed vs RSB seed vs random reference.
//! 2. Hill climbing: off vs per-offspring vs final-best.
//! 3. Migration topology: hypercube vs ring vs single population.
//! 4. Prior graph contraction (multilevel) vs flat GA on a larger mesh.
//!
//! Run: `cargo run -p gapart-bench --release --bin ablation`

use gapart_bench::table::TextTable;
use gapart_bench::ExperimentProtocol;
use gapart_core::population::InitStrategy;
use gapart_core::{CrossoverOp, FitnessKind, GaConfig, GaEngine, HillClimbMode, Topology};
use gapart_graph::coarsen::{coarsen_to, project_through};
use gapart_graph::generators::{jittered_mesh, paper_graph};
use gapart_graph::Partition;

fn main() {
    let protocol = ExperimentProtocol::from_env();
    let graph = paper_graph(144);
    let parts = 4u32;
    println!("Ablations on the 144-node graph, {parts} parts, Fitness 1");
    println!(
        "protocol: {} runs x {} generations, population {}\n",
        protocol.runs, protocol.generations, protocol.population
    );

    // --- 1. Reference/seed source -------------------------------------
    {
        let mut t = TextTable::new(["seed source", "best cut"]);
        let ibp = protocol.baseline("ibp", &graph, parts).partition;
        let rsb = protocol.baseline("rsb", &graph, parts).partition;
        let cases: [(&str, InitStrategy); 3] = [
            (
                "IBP seed",
                InitStrategy::Seeded {
                    partition: ibp.labels().to_vec(),
                    perturbation: 0.1,
                },
            ),
            (
                "RSB seed",
                InitStrategy::Seeded {
                    partition: rsb.labels().to_vec(),
                    perturbation: 0.1,
                },
            ),
            ("random", InitStrategy::BalancedRandom),
        ];
        for (label, init) in cases {
            let s = protocol.run(&graph, parts, FitnessKind::TotalCut, init);
            t.row([label.to_string(), s.best_cut.to_string()]);
        }
        println!("1. DKNUX seed/reference source\n{}", t.render());
    }

    // --- 2. Hill climbing ----------------------------------------------
    {
        let mut t = TextTable::new(["hill climbing", "best cut"]);
        for (label, mode) in [
            ("off", HillClimbMode::Off),
            ("offspring x1", HillClimbMode::Offspring { passes: 1 }),
            ("offspring x3", HillClimbMode::Offspring { passes: 3 }),
            ("final best x10", HillClimbMode::FinalBest { passes: 10 }),
        ] {
            let mut p = protocol.clone();
            p.hill_climb = mode;
            let s = p.run(
                &graph,
                parts,
                FitnessKind::TotalCut,
                InitStrategy::BalancedRandom,
            );
            t.row([label.to_string(), s.best_cut.to_string()]);
        }
        println!("2. Hill-climbing mode (§3.6)\n{}", t.render());
    }

    // --- 3. Topology -----------------------------------------------------
    {
        let mut t = TextTable::new(["topology", "best cut"]);
        for (label, topo) in [
            ("hypercube(4)", Topology::Hypercube(4)),
            ("ring(16)", Topology::Ring(16)),
            ("complete(16)", Topology::Complete(16)),
            ("single pop", Topology::Hypercube(0)),
        ] {
            let mut p = protocol.clone();
            p.topology = topo;
            if p.population < 2 * topo.size() {
                p.population = 2 * topo.size();
            }
            let s = p.run(
                &graph,
                parts,
                FitnessKind::TotalCut,
                InitStrategy::BalancedRandom,
            );
            t.row([label.to_string(), s.best_cut.to_string()]);
        }
        println!("3. DPGA topology (§3.4)\n{}", t.render());
    }

    // --- 4. Prior contraction on a 1200-node mesh ------------------------
    {
        let big = jittered_mesh(1200, 99);
        let mut t = TextTable::new(["pipeline", "cut"]);

        // Flat GA (modest budget — illustrates why the paper recommends
        // contraction for large graphs).
        let flat_cfg = GaConfig::paper_defaults(parts)
            .with_population_size(128)
            .with_generations(protocol.generations.min(80))
            .with_seed(3);
        let flat = GaEngine::new(&big, flat_cfg.clone()).unwrap().run();
        t.row(["flat GA".to_string(), flat.best_cut.to_string()]);

        // Contract → GA on coarse → project → GA refine on fine.
        let levels = coarsen_to(&big, 150, 1);
        let coarsest = levels.last().map(|l| &l.coarse).unwrap_or(&big);
        let coarse_cfg = GaConfig::paper_defaults(parts)
            .with_population_size(128)
            .with_generations(protocol.generations.min(80))
            .with_seed(3);
        let coarse_res = GaEngine::new(coarsest, coarse_cfg).unwrap().run();
        let projected: Partition = project_through(&levels, &coarse_res.best_partition);
        let refine_cfg = flat_cfg
            .clone()
            .with_generations(30)
            .seeded_from(&projected)
            .with_hill_climb(HillClimbMode::FinalBest { passes: 10 });
        let refined = GaEngine::new(&big, refine_cfg).unwrap().run();
        t.row([
            "contract+GA+refine".to_string(),
            refined.best_cut.to_string(),
        ]);

        let rsb = protocol.baseline("rsb", &big, parts);
        t.row(["RSB".to_string(), rsb.metrics.total_cut.to_string()]);
        println!(
            "4. Prior graph contraction on a 1200-node mesh\n{}",
            t.render()
        );
    }

    // --- 5. Crossover operator sweep -------------------------------------
    {
        let mut t = TextTable::new(["operator", "best cut"]);
        for op in [
            CrossoverOp::OnePoint,
            CrossoverOp::TwoPoint,
            CrossoverOp::KPoint(4),
            CrossoverOp::Uniform,
            CrossoverOp::Knux,
            CrossoverOp::Dknux,
            CrossoverOp::DknuxFitness(25),
        ] {
            let mut p = protocol.clone();
            p.crossover = op;
            let s = p.run(
                &graph,
                parts,
                FitnessKind::TotalCut,
                InitStrategy::BalancedRandom,
            );
            t.row([op.to_string(), s.best_cut.to_string()]);
        }
        println!("5. Crossover operator (§3.2-3.3)\n{}", t.render());
    }
}
