//! Streaming incremental repartitioning vs full recompute — the speed
//! case for the dynamic subsystem.
//!
//! Replays the same random-churn mutation trace two ways over a jittered
//! mesh:
//!
//! * **stream** — a `DynamicSession` (seed new nodes per §3.5, refine
//!   only the dirty frontier, escalate to a full `mlga` solve when the
//!   cut degrades past the threshold);
//! * **full**   — recompute `mlga` from scratch after every batch, the
//!   only option before this subsystem existed.
//!
//! Reports per-batch wall time and the final cut of both paths. The
//! localized path must be an order of magnitude faster per batch at an
//! equal or better final cut.
//!
//! Run: `cargo run -p gapart-bench --release --bin streambench`
//! Knobs: `GAPART_NODES` (default 5000), `GAPART_BATCHES` (default 12),
//! `GAPART_OPS` (mutations per batch, default 40), `GAPART_FAST=1`
//! (shrinks everything for smoke tests).

use gapart::partitioners;
use gapart_bench::table::TextTable;
use gapart_core::dynamic::{BatchAction, DynamicConfig, DynamicSession};
use gapart_graph::dynamic::apply_batch;
use gapart_graph::dynamic::scenario::{generate, Scenario, TraceSpec};
use gapart_graph::generators::jittered_mesh;
use gapart_graph::partition::cut_size;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let fast = std::env::var("GAPART_FAST").is_ok_and(|v| v == "1");
    let nodes = env_usize("GAPART_NODES", if fast { 600 } else { 5000 });
    let batches = env_usize("GAPART_BATCHES", if fast { 4 } else { 16 });
    let ops = env_usize("GAPART_OPS", 40);
    let hops = env_usize("GAPART_HOPS", 3);
    // Escalate at 10% degradation: tight enough that one full solve
    // mid-stream re-anchors quality, loose enough that the amortized
    // per-batch cost stays an order of magnitude under a recompute.
    let threshold: f64 = std::env::var("GAPART_THRESHOLD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.10);
    let parts = 8u32;
    let seed = 0x5743_4253; // "WCBS"

    let graph = jittered_mesh(nodes, 17);
    let trace = generate(
        &graph,
        Scenario::RandomChurn,
        &TraceSpec {
            batches,
            ops_per_batch: ops,
            seed: 23,
        },
    )
    .expect("churn generation cannot fail on a mesh");
    let total_muts: usize = trace.iter().map(Vec::len).sum();
    println!(
        "random churn over a {nodes}-node mesh: {batches} batches × {ops} ops \
         ({total_muts} mutations), {parts} parts\n"
    );

    // Path 1: the dynamic session (localized incremental absorption).
    let mut session = DynamicSession::new(
        graph.clone(),
        partitioners::by_name("mlga").expect("mlga is registered"),
        DynamicConfig {
            seed,
            frontier_hops: hops,
            escalate_ratio: threshold,
            ..DynamicConfig::new(parts)
        },
    )
    .expect("initial solve cannot fail");
    let mut stream_batch_secs = Vec::with_capacity(batches);
    for batch in &trace {
        let t = Instant::now();
        session
            .apply_batch(batch)
            .expect("generated trace is valid");
        stream_batch_secs.push(t.elapsed().as_secs_f64());
    }
    let escalations = session
        .history()
        .iter()
        .filter(|r| r.action == BatchAction::FullRepartition)
        .count();
    let stream_cut = session.current_cut();

    // Path 2: full mlga recompute after every batch.
    let mlga = partitioners::by_name("mlga").expect("mlga is registered");
    let mut g = graph.clone();
    let mut full_batch_secs = Vec::with_capacity(batches);
    let mut full_cut = 0u64;
    for (i, batch) in trace.iter().enumerate() {
        let t = Instant::now();
        let (next, _) = apply_batch(&g, batch).expect("generated trace is valid");
        g = next;
        let report = mlga
            .partition(&g, parts, seed.wrapping_add(i as u64))
            .expect("mesh partitioning cannot fail");
        full_batch_secs.push(t.elapsed().as_secs_f64());
        full_cut = cut_size(&g, &report.partition);
    }

    let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let (stream_avg, full_avg) = (avg(&stream_batch_secs), avg(&full_batch_secs));

    let mut table = TextTable::new(["path", "avg ms/batch", "total s", "final cut"]);
    table.row([
        format!("stream ({escalations} escalations)"),
        format!("{:.2}", stream_avg * 1e3),
        format!("{:.2}", stream_batch_secs.iter().sum::<f64>()),
        stream_cut.to_string(),
    ]);
    table.row([
        "full mlga each batch".to_string(),
        format!("{:.2}", full_avg * 1e3),
        format!("{:.2}", full_batch_secs.iter().sum::<f64>()),
        full_cut.to_string(),
    ]);
    println!("{}", table.render());

    let speedup = full_avg / stream_avg.max(1e-9);
    println!(
        "incremental absorption is {speedup:.1}x faster per batch; final cut {stream_cut} vs {full_cut} ({})",
        if stream_cut <= full_cut {
            "stream matches or beats the recompute"
        } else {
            "recompute wins on cut this run"
        }
    );
}
