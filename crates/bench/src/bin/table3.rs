//! Table 3: incremental graph partitioning vs RSB-from-scratch, Fitness 1.
//!
//! Protocol per §4.2: partition the base graph, grow it by adding nodes in
//! a random local area, then (a) incrementally repartition with the GA
//! seeded from the old partition, and (b) run RSB from scratch on the
//! grown graph for comparison.
//!
//! Run: `cargo run -p gapart-bench --release --bin table3`

use gapart_bench::paper_data::{parse_incremental_label, TABLE3};
use gapart_bench::runner::incremental_fixture;
use gapart_bench::table::{vs_paper, TextTable};
use gapart_bench::ExperimentProtocol;
use gapart_core::FitnessKind;

fn main() {
    let protocol = ExperimentProtocol::from_env();
    println!("Table 3 — Incremental partitioning (DKNUX) vs RSB from scratch, Fitness 1");
    println!(
        "protocol: {} runs x {} generations, population {}, {}\n",
        protocol.runs, protocol.generations, protocol.population, protocol.topology
    );

    let parts_list = [2u32, 4, 8];
    let mut table = TextTable::new(["graph / method", "2 parts", "4 parts", "8 parts"]);
    for row in TABLE3 {
        let (base_n, added) =
            parse_incremental_label(row.label).expect("table3 labels are base+added");

        let mut ga_cells = Vec::new();
        let mut rsb_cells = Vec::new();
        for (i, &parts) in parts_list.iter().enumerate() {
            let (_base, grown, old) = incremental_fixture(base_n, added, parts);
            let summary = protocol.run_incremental(&grown, &old, FitnessKind::TotalCut);
            ga_cells.push(vs_paper(summary.best_cut, Some(row.dknux[i])));

            let rsb = protocol.baseline("rsb", &grown, parts);
            rsb_cells.push(vs_paper(rsb.metrics.total_cut, Some(row.rsb[i])));
        }
        table.row([
            format!("{} — DKNUX (incr)", row.label),
            ga_cells[0].clone(),
            ga_cells[1].clone(),
            ga_cells[2].clone(),
        ]);
        table.row([
            format!("{} — RSB (scratch)", row.label),
            rsb_cells[0].clone(),
            rsb_cells[1].clone(),
            rsb_cells[2].clone(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(measured values are best-of-{} DPGA runs; paper values in parentheses)",
        protocol.runs
    );
}
