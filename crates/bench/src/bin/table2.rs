//! Table 2: improving Recursive Spectral Bisection solutions with the GA,
//! using Fitness 1. The population is seeded with the RSB partition; the
//! GA must end at least as good and usually better.
//!
//! Run: `cargo run -p gapart-bench --release --bin table2`

use gapart_bench::paper_data::TABLE2;
use gapart_bench::table::{vs_paper, TextTable};
use gapart_bench::ExperimentProtocol;
use gapart_core::FitnessKind;
use gapart_graph::generators::paper_graph;

fn main() {
    let protocol = ExperimentProtocol::from_env();
    println!("Table 2 — Improving RSB solutions with the GA, Fitness 1");
    println!(
        "protocol: {} runs x {} generations, population {}, {}\n",
        protocol.runs, protocol.generations, protocol.population, protocol.topology
    );

    let parts_list = [2u32, 4, 8];
    let mut table = TextTable::new(["graph / method", "2 parts", "4 parts", "8 parts"]);
    for row in TABLE2 {
        let n: usize = row.label.parse().expect("table2 labels are node counts");
        let graph = paper_graph(n);

        let mut ga_cells = Vec::new();
        let mut rsb_cells = Vec::new();
        for (i, &parts) in parts_list.iter().enumerate() {
            let rsb = protocol.baseline("rsb", &graph, parts);
            let summary = protocol.run_seeded(&graph, parts, FitnessKind::TotalCut, &rsb.partition);
            ga_cells.push(vs_paper(summary.best_cut, Some(row.dknux[i])));
            rsb_cells.push(vs_paper(rsb.metrics.total_cut, Some(row.rsb[i])));
        }
        table.row([
            format!("{} nodes — DKNUX", row.label),
            ga_cells[0].clone(),
            ga_cells[1].clone(),
            ga_cells[2].clone(),
        ]);
        table.row([
            format!("{} nodes — RSB", row.label),
            rsb_cells[0].clone(),
            rsb_cells[1].clone(),
            rsb_cells[2].clone(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(measured values are best-of-{} DPGA runs; paper values in parentheses)",
        protocol.runs
    );
}
