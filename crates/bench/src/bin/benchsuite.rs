//! The persistent benchmark trajectory: a fixed scenario matrix, one
//! schema'd JSON document per PR.
//!
//! Runs large-grid / geometric / churn-stream scenarios across a sweep of
//! forced worker-pool sizes, flat and multilevel methods side by side,
//! and writes `BENCH_4.json` (see `--out`) with per-row wall time, cut
//! metrics, and an FNV-1a hash of the final labels — the witness that
//! every thread count produced the bit-identical partition. The schema
//! lives in `gapart_bench::json` and CI validates every emitted document
//! against it (`--validate`), so the trajectory cannot silently rot.
//!
//! Usage:
//!   benchsuite [--smoke] [--out PATH] [--max-threads N]
//!   benchsuite --validate PATH
//!
//! `--smoke` shrinks every scenario to seconds for CI; the committed
//! trajectory file is produced by a full run.

use gapart::core::dynamic::{BatchAction, DynamicConfig, DynamicSession};
use gapart::core::GaConfig;
use gapart::graph::dynamic::scenario::{generate, Scenario, TraceSpec};
use gapart::graph::generators::{grid2d, random_geometric, GridKind};
use gapart::graph::partition::PartitionMetrics;
use gapart::graph::partitioner::Partitioner;
use gapart::graph::CsrGraph;
use gapart::partitioners;
use gapart_bench::json::{self, hash_labels, TRAJECTORY_SCHEMA};
use std::fmt::Write as _;
use std::time::Instant;

/// The PR number this trajectory file records.
const PR: u64 = 4;
const SEED: u64 = 0x5343_3934; // "SC94"
const PARTS: u32 = 8;

struct Row {
    scenario: &'static str,
    method: String,
    mode: &'static str,
    threads: usize,
    nodes: usize,
    edges: usize,
    wall_ms: f64,
    total_cut: u64,
    max_cut: u64,
    imbalance: f64,
    partition_hash: String,
    batches: Option<usize>,
    escalations: Option<usize>,
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("shim pools are infallible")
}

/// One partitioner run under a forced pool: returns the row plus prints a
/// progress line. Registry methods resolve by name; the trimmed flat GA
/// passes its instance explicitly via `run_partitioner`.
fn run_method(
    scenario: &'static str,
    graph: &CsrGraph,
    method: &str,
    mode: &'static str,
    threads: usize,
) -> Row {
    run_partitioner(
        scenario,
        graph,
        &*partitioners::by_name(method).expect("method is registered"),
        mode,
        threads,
    )
}

fn run_partitioner(
    scenario: &'static str,
    graph: &CsrGraph,
    p: &dyn Partitioner,
    mode: &'static str,
    threads: usize,
) -> Row {
    let method = p.name();
    // Best of three runs: partitioning is deterministic (asserted), so
    // repetition only de-noises the wall time.
    let mut wall_ms = f64::INFINITY;
    let mut partition = None;
    for _ in 0..3 {
        let start = Instant::now();
        let r = pool(threads)
            .install(|| p.partition(graph, PARTS, SEED))
            .expect("benchmark scenarios cannot fail");
        wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
        if let Some(prev) = &partition {
            assert_eq!(
                prev, &r.partition,
                "{method} is not run-to-run deterministic"
            );
        }
        partition = Some(r.partition);
    }
    let partition = partition.expect("reps ran");
    let metrics = PartitionMetrics::compute(graph, &partition);
    let row = Row {
        scenario,
        method: method.to_string(),
        mode,
        threads,
        nodes: graph.num_nodes(),
        edges: graph.num_edges(),
        wall_ms,
        total_cut: metrics.total_cut,
        max_cut: metrics.max_cut,
        imbalance: metrics.imbalance,
        partition_hash: hash_labels(partition.labels()),
        batches: None,
        escalations: None,
    };
    println!(
        "  {scenario:>12} {method:>6} x{threads}: {wall_ms:9.1} ms, cut {}, hash {}",
        row.total_cut, row.partition_hash
    );
    row
}

/// The churn-stream scenario: replay a mutation trace through a dynamic
/// session (mlga escalation) under a forced pool.
fn run_stream(graph: &CsrGraph, batches: usize, ops: usize, threads: usize) -> Row {
    let trace = generate(
        graph,
        Scenario::RandomChurn,
        &TraceSpec {
            batches,
            ops_per_batch: ops,
            seed: SEED,
        },
    )
    .expect("churn traces generate on any graph");
    let start = Instant::now();
    let session = pool(threads)
        .install(|| {
            let full = partitioners::by_name("mlga").expect("mlga is registered");
            let mut s = DynamicSession::new(
                graph.clone(),
                full,
                DynamicConfig::new(PARTS).with_seed(SEED),
            )?;
            s.replay(&trace)?;
            Ok::<_, gapart::core::dynamic::DynamicError>(s)
        })
        .expect("stream replay cannot fail");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let m = PartitionMetrics::compute(session.graph(), session.partition());
    let escalations = session
        .history()
        .iter()
        .filter(|r| r.action == BatchAction::FullRepartition)
        .count();
    let row = Row {
        scenario: "churn-stream",
        method: "stream+mlga".into(),
        mode: "stream",
        threads,
        nodes: session.graph().num_nodes(),
        edges: session.graph().num_edges(),
        wall_ms,
        total_cut: m.total_cut,
        max_cut: m.max_cut,
        imbalance: m.imbalance,
        partition_hash: hash_labels(session.partition().labels()),
        batches: Some(batches),
        escalations: Some(escalations),
    };
    println!(
        "  churn-stream stream+mlga x{threads}: {wall_ms:9.1} ms, {batches} batches, \
         {escalations} escalation(s), cut {}, hash {}",
        row.total_cut, row.partition_hash
    );
    row
}

fn render(rows: &[Row], smoke: bool, speedup: Option<f64>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{TRAJECTORY_SCHEMA}\",");
    let _ = writeln!(out, "  \"pr\": {PR},");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cpus < 4 {
        // Speedup rows are core-bound: flag sub-4-core recordings so a
        // reader never mistakes a hardware ceiling for a code property.
        let _ = writeln!(
            out,
            "  \"host\": {{\"cpus\": {cpus}, \"note\": \"recorded on a {cpus}-core host; \
             cross-thread wall_ms ratios are bounded by the cores available, not by the \
             pipeline (which is parallel end to end)\"}},"
        );
    } else {
        let _ = writeln!(out, "  \"host\": {{\"cpus\": {cpus}}},");
    }
    match speedup {
        Some(s) => {
            let _ = writeln!(
                out,
                "  \"summary\": {{\"grid_mlga_speedup_4t_vs_1t\": {s:.3}}},"
            );
        }
        None => {
            let _ = writeln!(out, "  \"summary\": {{}},");
        }
    }
    let _ = writeln!(out, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let mut extra = String::new();
        if let Some(b) = r.batches {
            let _ = write!(extra, ", \"batches\": {b}");
        }
        if let Some(e) = r.escalations {
            let _ = write!(extra, ", \"escalations\": {e}");
        }
        let _ = writeln!(
            out,
            "    {{\"scenario\": \"{}\", \"method\": \"{}\", \"mode\": \"{}\", \
             \"threads\": {}, \"parts\": {PARTS}, \"seed\": {SEED}, \"nodes\": {}, \
             \"edges\": {}, \"wall_ms\": {:.3}, \"total_cut\": {}, \"max_cut\": {}, \
             \"imbalance\": {:.4}, \"partition_hash\": \"{}\"{extra}}}{}",
            json::escape(r.scenario),
            json::escape(&r.method),
            r.mode,
            r.threads,
            r.nodes,
            r.edges,
            r.wall_ms,
            r.total_cut,
            r.max_cut,
            r.imbalance,
            r.partition_hash,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path = "BENCH_4.json".to_string();
    let mut validate_path: Option<String> = None;
    let mut max_threads = 8usize;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = it.next().expect("--out takes a path").clone(),
            "--validate" => {
                validate_path = Some(it.next().expect("--validate takes a path").clone())
            }
            "--max-threads" => {
                max_threads = it
                    .next()
                    .expect("--max-threads takes a count")
                    .parse()
                    .expect("--max-threads takes a positive integer");
                assert!(max_threads >= 1, "--max-threads takes a positive integer");
            }
            other => panic!("unknown flag '{other}' (see the module docs)"),
        }
    }

    // Validation mode: parse + schema-check an existing document.
    if let Some(path) = validate_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let doc = json::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
        let rows = json::validate_trajectory(&doc).unwrap_or_else(|e| panic!("{path}: {e}"));
        println!("{path}: valid trajectory, {} result row(s)", rows.len());
        return;
    }

    let cap =
        |ts: &[usize]| -> Vec<usize> { ts.iter().copied().filter(|&t| t <= max_threads).collect() };
    let mut rows: Vec<Row> = Vec::new();

    // Scenario 1 — large grid, the headline case: the multilevel GA
    // across the full pool sweep, with flat IBP (the grid carries
    // coordinates) and multilevel RSB as flat/multilevel anchors.
    let (side, ml_threads, flat_threads) = if smoke {
        (24usize, cap(&[1, 2]), cap(&[1, 2]))
    } else {
        (320, cap(&[1, 2, 4, 8]), cap(&[1, 4]))
    };
    let grid = grid2d(side, side, GridKind::FourConnected);
    println!(
        "grid {side}x{side}: {} nodes, {} edges",
        grid.num_nodes(),
        grid.num_edges()
    );
    for &t in &ml_threads {
        rows.push(run_method("grid", &grid, "mlga", "multilevel", t));
    }
    for &t in &flat_threads {
        rows.push(run_method("grid", &grid, "ibp", "flat", t));
    }
    for &t in &flat_threads {
        rows.push(run_method("grid", &grid, "mlrsb", "multilevel", t));
    }

    // Scenario 2 — flat GA vs multilevel GA head-to-head, at a size
    // where the flat GA's O(pop × gens × E) budget stays affordable.
    // The trimmed budget is recorded here, not hidden: pop 48, 15 gens.
    let flat_side = if smoke { 16 } else { 64 };
    let small = grid2d(flat_side, flat_side, GridKind::FourConnected);
    println!(
        "grid-ga {flat_side}x{flat_side}: {} nodes, {} edges",
        small.num_nodes(),
        small.num_edges()
    );
    let ga_lite = partitioners::tuned_ga(
        GaConfig::paper_defaults(PARTS)
            .with_population_size(48)
            .with_generations(15),
    );
    for &t in &flat_threads {
        rows.push(run_partitioner("grid-ga", &small, &*ga_lite, "flat", t));
    }
    for &t in &flat_threads {
        rows.push(run_method("grid-ga", &small, "mlga", "multilevel", t));
    }

    // Scenario 2 — random geometric graph: coordinates make the inertial
    // method applicable, so flat IBP vs multilevel GA.
    let n_geo = if smoke { 400 } else { 40_000 };
    let geo = random_geometric(n_geo, 1.5 / (n_geo as f64).sqrt(), SEED);
    println!(
        "geometric {n_geo}: {} nodes, {} edges",
        geo.num_nodes(),
        geo.num_edges()
    );
    for &t in &flat_threads {
        rows.push(run_method("geometric", &geo, "mlga", "multilevel", t));
    }
    for &t in &flat_threads {
        rows.push(run_method("geometric", &geo, "ibp", "flat", t));
    }

    // Scenario 3 — churn stream: localized refinement on the dirty
    // frontier, escalating to full mlga solves.
    let (stream_side, batches, ops) = if smoke { (12, 4, 20) } else { (100, 15, 150) };
    let sgrid = grid2d(stream_side, stream_side, GridKind::FourConnected);
    for &t in &flat_threads {
        rows.push(run_stream(&sgrid, batches, ops, t));
    }

    // Headline number: mlga on the grid, 1 thread vs 4.
    let grid_wall = |t: usize| {
        rows.iter()
            .find(|r| r.scenario == "grid" && r.method == "mlga" && r.threads == t)
            .map(|r| r.wall_ms)
    };
    let speedup = match (grid_wall(1), grid_wall(4)) {
        (Some(w1), Some(w4)) if w4 > 0.0 => Some(w1 / w4),
        _ => None,
    };
    if let Some(s) = speedup {
        println!("grid mlga speedup, 4 threads vs 1: {s:.2}x");
    }

    let text = render(&rows, smoke, speedup);
    // Never emit a document the validator would reject.
    let doc = json::parse(&text).expect("benchsuite emits parseable JSON");
    json::validate_trajectory(&doc).expect("benchsuite emits schema-valid JSON");
    std::fs::write(&out_path, &text).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}: {} result row(s)", rows.len());
}
