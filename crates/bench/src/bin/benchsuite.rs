//! The persistent benchmark trajectory: a fixed scenario matrix, one
//! schema'd JSON document per PR.
//!
//! Runs large-grid / geometric / churn-stream scenarios across a sweep of
//! forced worker-pool sizes, flat and multilevel methods side by side —
//! including the refinement-engine comparison (`mlga` vs `mlga-pfm` vs
//! `mlga-sweep`, and their `stream+` twins) — and
//! writes `BENCH_7.json` (see `--out`) with per-row wall time, cut
//! metrics, peak-RSS memory telemetry, and an FNV-1a hash of the final
//! labels — the witness that every thread count produced the
//! bit-identical partition. The schema lives in `gapart_bench::json`
//! and CI validates every emitted document against it.
//!
//! The `*-anchor` scenarios run at identical sizes in both smoke and
//! full mode, so a CI smoke run is directly comparable against the
//! newest committed full-run `BENCH_*.json` — that comparison is the
//! bench-regression gate (`--compare`), which fails when a matched row's
//! cut worsens by more than 2% or its partition hash diverges at equal
//! cut (see `gapart_bench::json::compare_trajectories`).
//!
//! Usage:
//!   benchsuite [--smoke] [--out PATH] [--max-threads N]
//!   benchsuite --validate PATH
//!   benchsuite --validate-all DIR       # every BENCH_*.json in DIR
//!   benchsuite --compare BASELINE CANDIDATE
//!
//! `--smoke` runs only the anchor scenarios (seconds, for CI); the
//! committed trajectory file is produced by a full run, which includes
//! the anchors plus the large scenarios.

use gapart::core::dynamic::{BatchAction, DynamicConfig, DynamicSession};
use gapart::core::GaConfig;
use gapart::graph::dynamic::scenario::{generate, Scenario, TraceSpec};
use gapart::graph::generators::{grid2d, random_geometric, GridKind};
use gapart::graph::multilevel::MultilevelConfig;
use gapart::graph::partition::PartitionMetrics;
use gapart::graph::partitioner::Partitioner;
use gapart::graph::refine::RefineScheme;
use gapart::graph::CsrGraph;
use gapart::partitioners;
use gapart_bench::json::{self, hash_labels, TRAJECTORY_SCHEMA};
use std::fmt::Write as _;
use std::time::Instant;

/// The PR number this trajectory file records.
const PR: u64 = 7;
const SEED: u64 = 0x5343_3934; // "SC94"
const PARTS: u32 = 8;

/// CI time budget for the million-node smoke anchor (generation plus both
/// methods). Smoke mode hard-fails past this, so a scale regression can
/// never ride a green pipeline.
const SMOKE_1M_BUDGET_S: f64 = 180.0;

struct Row {
    scenario: &'static str,
    method: String,
    mode: &'static str,
    threads: usize,
    nodes: usize,
    edges: usize,
    wall_ms: f64,
    total_cut: u64,
    max_cut: u64,
    /// Standard balance ratio `max_load / ideal_load` (1.0 = perfect).
    imbalance: f64,
    /// The pre-PR-7 raw `PartitionMetrics::imbalance` weight delta, kept
    /// under a renamed key for anyone consuming the old field.
    imbalance_weight_delta: f64,
    /// Process peak RSS (VmHWM) observed by the end of this row, bytes.
    /// A high-water mark: monotone over the run, so the 1M/10M rows show
    /// the memory ceiling of the scale path. `None` off-Linux.
    peak_rss_bytes: Option<u64>,
    partition_hash: String,
    batches: Option<usize>,
    escalations: Option<usize>,
}

/// Peak resident-set size of this process so far (`VmHWM` from
/// `/proc/self/status`), in bytes; `None` where procfs is unavailable.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .strip_prefix("VmHWM:")?
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// `max_load / ideal_load` from the per-part loads (1.0 when the total
/// weight is zero — an empty graph is perfectly balanced).
fn imbalance_ratio(part_loads: &[u64]) -> f64 {
    let total: u64 = part_loads.iter().sum();
    if total == 0 || part_loads.is_empty() {
        return 1.0;
    }
    let max = *part_loads.iter().max().expect("non-empty") as f64;
    max * part_loads.len() as f64 / total as f64
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("shim pools are infallible")
}

/// The registry `mlga` with the greedy sweep instead of boundary FM —
/// the refinement ablation the grid scenarios record.
fn mlga_sweep() -> Box<dyn Partitioner> {
    partitioners::multilevel_with(
        "mlga-sweep",
        partitioners::tuned_ga(GaConfig::coarse_defaults(2)),
        MultilevelConfig {
            refine_scheme: RefineScheme::Sweep,
            ..MultilevelConfig::default()
        },
    )
}

/// The registry `mlga` with the parallel colored-batch FM — the
/// thread-scaling refinement the anchor scenarios track against `mlga`.
fn mlga_pfm() -> Box<dyn Partitioner> {
    partitioners::multilevel_with(
        "mlga-pfm",
        partitioners::tuned_ga(GaConfig::coarse_defaults(2)),
        MultilevelConfig {
            refine_scheme: RefineScheme::ParallelFm,
            ..MultilevelConfig::default()
        },
    )
}

/// One partitioner run under a forced pool: returns the row plus prints a
/// progress line. Registry methods resolve by name; ablations (trimmed
/// flat GA, `mlga-sweep`) pass their instance via `run_partitioner`.
fn run_method(
    scenario: &'static str,
    graph: &CsrGraph,
    method: &str,
    mode: &'static str,
    threads: usize,
) -> Row {
    run_partitioner(
        scenario,
        graph,
        &*partitioners::by_name(method).expect("method is registered"),
        mode,
        threads,
    )
}

fn run_partitioner(
    scenario: &'static str,
    graph: &CsrGraph,
    p: &dyn Partitioner,
    mode: &'static str,
    threads: usize,
) -> Row {
    // Best of three runs: partitioning is deterministic (asserted), so
    // repetition only de-noises the wall time.
    run_partitioner_reps(scenario, graph, p, mode, threads, 3)
}

/// [`run_partitioner`] with an explicit repetition count — the 1M/10M
/// anchors run once (each rep is seconds, and their determinism is pinned
/// by the CI matrix, not by in-process repetition).
fn run_partitioner_reps(
    scenario: &'static str,
    graph: &CsrGraph,
    p: &dyn Partitioner,
    mode: &'static str,
    threads: usize,
    reps: usize,
) -> Row {
    let method = p.name();
    let mut wall_ms = f64::INFINITY;
    let mut partition = None;
    for _ in 0..reps {
        let start = Instant::now();
        let r = pool(threads)
            .install(|| p.partition(graph, PARTS, SEED))
            .expect("benchmark scenarios cannot fail");
        wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
        if let Some(prev) = &partition {
            assert_eq!(
                prev, &r.partition,
                "{method} is not run-to-run deterministic"
            );
        }
        partition = Some(r.partition);
    }
    let partition = partition.expect("reps ran");
    let metrics = PartitionMetrics::compute(graph, &partition);
    let row = Row {
        scenario,
        method: method.to_string(),
        mode,
        threads,
        nodes: graph.num_nodes(),
        edges: graph.num_edges(),
        wall_ms,
        total_cut: metrics.total_cut,
        max_cut: metrics.max_cut,
        imbalance: imbalance_ratio(&metrics.part_loads),
        imbalance_weight_delta: metrics.imbalance,
        peak_rss_bytes: peak_rss_bytes(),
        partition_hash: hash_labels(partition.labels()),
        batches: None,
        escalations: None,
    };
    println!(
        "  {scenario:>16} {method:>10} x{threads}: {wall_ms:9.1} ms, cut {}, hash {}",
        row.total_cut, row.partition_hash
    );
    row
}

/// A churn-stream scenario: replay a mutation trace through a dynamic
/// session (mlga escalation) under a forced pool, with the chosen
/// refinement engine on both the frontier and the escalation path.
fn run_stream(
    scenario: &'static str,
    graph: &CsrGraph,
    batches: usize,
    ops: usize,
    threads: usize,
    scheme: RefineScheme,
) -> Row {
    let method = match scheme {
        RefineScheme::BoundaryFm => "stream+mlga",
        RefineScheme::ParallelFm => "stream+mlga-pfm",
        RefineScheme::ParallelFmRescan => "stream+mlga-pfm-rescan",
        RefineScheme::Sweep => "stream+mlga-sweep",
    };
    let trace = generate(
        graph,
        Scenario::RandomChurn,
        &TraceSpec {
            batches,
            ops_per_batch: ops,
            seed: SEED,
        },
    )
    .expect("churn traces generate on any graph");
    let start = Instant::now();
    let session = pool(threads)
        .install(|| {
            let full = partitioners::by_name_with("mlga", scheme).expect("mlga is registered");
            let mut s = DynamicSession::new(
                graph.clone(),
                full,
                DynamicConfig {
                    seed: SEED,
                    refine_scheme: scheme,
                    ..DynamicConfig::new(PARTS)
                },
            )?;
            s.replay(&trace)?;
            Ok::<_, gapart::core::dynamic::DynamicError>(s)
        })
        .expect("stream replay cannot fail");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let m = PartitionMetrics::compute(session.graph(), session.partition());
    let escalations = session
        .history()
        .iter()
        .filter(|r| r.action == BatchAction::FullRepartition)
        .count();
    let row = Row {
        scenario,
        method: method.into(),
        mode: "stream",
        threads,
        nodes: session.graph().num_nodes(),
        edges: session.graph().num_edges(),
        wall_ms,
        total_cut: m.total_cut,
        max_cut: m.max_cut,
        imbalance: imbalance_ratio(&m.part_loads),
        imbalance_weight_delta: m.imbalance,
        peak_rss_bytes: peak_rss_bytes(),
        partition_hash: hash_labels(session.partition().labels()),
        batches: Some(batches),
        escalations: Some(escalations),
    };
    println!(
        "  {scenario:>16} {method:>10} x{threads}: {wall_ms:9.1} ms, {batches} batches, \
         {escalations} escalation(s), cut {}, hash {}",
        row.total_cut, row.partition_hash
    );
    row
}

fn render(
    rows: &[Row],
    smoke: bool,
    speedup: Option<f64>,
    scenario_walls: &[(&'static str, f64)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{TRAJECTORY_SCHEMA}\",");
    let _ = writeln!(out, "  \"pr\": {PR},");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Per-scenario elapsed wall time (seconds), so the CI time budget of
    // each scenario — the 1M smoke anchor above all — is visible in the
    // document, not just in CI logs.
    let mut walls = String::new();
    for (i, (name, secs)) in scenario_walls.iter().enumerate() {
        let _ = write!(
            walls,
            "{}\"{}\": {:.3}",
            if i == 0 { "" } else { ", " },
            json::escape(name),
            secs
        );
    }
    let walls = format!(", \"scenario_wall_s\": {{{walls}}}");
    if cpus < 4 {
        // Speedup rows are core-bound: flag sub-4-core recordings so a
        // reader never mistakes a hardware ceiling for a code property.
        let _ = writeln!(
            out,
            "  \"host\": {{\"cpus\": {cpus}, \"note\": \"recorded on a {cpus}-core host; \
             cross-thread wall_ms ratios are bounded by the cores available, not by the \
             pipeline (which is parallel end to end)\"{walls}}},"
        );
    } else {
        let _ = writeln!(out, "  \"host\": {{\"cpus\": {cpus}{walls}}},");
    }
    match speedup {
        Some(s) => {
            let _ = writeln!(
                out,
                "  \"summary\": {{\"grid_mlga_speedup_4t_vs_1t\": {s:.3}}},"
            );
        }
        None => {
            let _ = writeln!(out, "  \"summary\": {{}},");
        }
    }
    let _ = writeln!(out, "  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let mut extra = String::new();
        if let Some(b) = r.batches {
            let _ = write!(extra, ", \"batches\": {b}");
        }
        if let Some(e) = r.escalations {
            let _ = write!(extra, ", \"escalations\": {e}");
        }
        if let Some(rss) = r.peak_rss_bytes {
            let _ = write!(extra, ", \"peak_rss_bytes\": {rss}");
        }
        let _ = writeln!(
            out,
            "    {{\"scenario\": \"{}\", \"method\": \"{}\", \"mode\": \"{}\", \
             \"threads\": {}, \"parts\": {PARTS}, \"seed\": {SEED}, \"nodes\": {}, \
             \"edges\": {}, \"wall_ms\": {:.3}, \"total_cut\": {}, \"max_cut\": {}, \
             \"imbalance\": {:.4}, \"imbalance_weight_delta\": {:.4}, \
             \"partition_hash\": \"{}\"{extra}}}{}",
            json::escape(r.scenario),
            json::escape(&r.method),
            r.mode,
            r.threads,
            r.nodes,
            r.edges,
            r.wall_ms,
            r.total_cut,
            r.max_cut,
            r.imbalance,
            r.imbalance_weight_delta,
            r.partition_hash,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Parses and schema-validates one trajectory document.
fn load_rows(path: &str) -> Vec<json::TrajectoryRow> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    json::validate_trajectory(&doc).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path = "BENCH_7.json".to_string();
    let mut validate_path: Option<String> = None;
    let mut validate_all_dir: Option<String> = None;
    let mut compare: Option<(String, String)> = None;
    let mut max_threads = 8usize;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = it.next().expect("--out takes a path").clone(),
            "--validate" => {
                validate_path = Some(it.next().expect("--validate takes a path").clone())
            }
            "--validate-all" => {
                validate_all_dir =
                    Some(it.next().expect("--validate-all takes a directory").clone())
            }
            "--compare" => {
                let baseline = it.next().expect("--compare takes two paths").clone();
                let candidate = it
                    .next()
                    .expect("--compare takes a baseline and a candidate path")
                    .clone();
                compare = Some((baseline, candidate));
            }
            "--max-threads" => {
                max_threads = it
                    .next()
                    .expect("--max-threads takes a count")
                    .parse()
                    .expect("--max-threads takes a positive integer");
                assert!(max_threads >= 1, "--max-threads takes a positive integer");
            }
            other => panic!("unknown flag '{other}' (see the module docs)"),
        }
    }

    // Validation mode: parse + schema-check an existing document.
    if let Some(path) = validate_path {
        let rows = load_rows(&path);
        println!("{path}: valid trajectory, {} result row(s)", rows.len());
        return;
    }

    // Validate every committed trajectory in a directory from one
    // process, reporting each file so a failure names its culprit.
    if let Some(dir) = validate_all_dir {
        let mut paths: Vec<String> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("cannot read directory {dir}: {e}"))
            .filter_map(|entry| {
                let name = entry.expect("readable directory entry").file_name();
                let name = name.to_string_lossy().into_owned();
                (name.starts_with("BENCH_") && name.ends_with(".json"))
                    .then(|| format!("{dir}/{name}"))
            })
            .collect();
        paths.sort();
        assert!(!paths.is_empty(), "no BENCH_*.json files under {dir}");
        let mut failures = 0usize;
        for path in &paths {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            match json::parse(&text).and_then(|doc| json::validate_trajectory(&doc)) {
                Ok(rows) => println!("{path}: valid trajectory, {} result row(s)", rows.len()),
                Err(e) => {
                    println!("{path}: INVALID — {e}");
                    failures += 1;
                }
            }
        }
        if failures > 0 {
            eprintln!("{failures} of {} trajectory file(s) invalid", paths.len());
            std::process::exit(1);
        }
        return;
    }

    // The bench-regression gate: candidate vs committed baseline.
    if let Some((baseline_path, candidate_path)) = compare {
        let baseline = load_rows(&baseline_path);
        let candidate = load_rows(&candidate_path);
        let report = json::compare_trajectories(&baseline, &candidate);
        println!(
            "compared {candidate_path} against {baseline_path}: {} matched row(s)",
            report.matched
        );
        for note in &report.notes {
            println!("  note: {note}");
        }
        for failure in &report.failures {
            println!("  FAIL: {failure}");
        }
        if !report.passed() {
            eprintln!(
                "bench-regression gate failed ({} failure(s))",
                report.failures.len()
            );
            std::process::exit(1);
        }
        println!("bench-regression gate passed");
        return;
    }

    let cap =
        |ts: &[usize]| -> Vec<usize> { ts.iter().copied().filter(|&t| t <= max_threads).collect() };
    let mut rows: Vec<Row> = Vec::new();

    // Per-scenario elapsed wall time: printed as each scenario finishes
    // and recorded under `host.scenario_wall_s`, so CI time budgets are
    // visible where the budget is enforced.
    let mut scenario_walls: Vec<(&'static str, f64)> = Vec::new();
    let mut mark = Instant::now();
    let lap = |name: &'static str, walls: &mut Vec<(&'static str, f64)>, mark: &mut Instant| {
        let secs = mark.elapsed().as_secs_f64();
        println!("  [scenario {name}: {secs:.2} s]");
        walls.push((name, secs));
        *mark = Instant::now();
        secs
    };

    // ---- Anchor scenarios: identical sizes in smoke and full mode, so
    // a CI smoke document has rows directly comparable (same identity
    // keys) against the newest committed full-run trajectory.
    let anchor = grid2d(24, 24, GridKind::FourConnected);
    println!(
        "grid-anchor 24x24: {} nodes, {} edges",
        anchor.num_nodes(),
        anchor.num_edges()
    );
    for &t in &cap(&[1, 2]) {
        rows.push(run_method("grid-anchor", &anchor, "mlga", "multilevel", t));
    }
    for &t in &cap(&[1, 2]) {
        rows.push(run_partitioner(
            "grid-anchor",
            &anchor,
            &*mlga_pfm(),
            "multilevel",
            t,
        ));
    }
    rows.push(run_partitioner(
        "grid-anchor",
        &anchor,
        &*mlga_sweep(),
        "multilevel",
        1,
    ));
    rows.push(run_method("grid-anchor", &anchor, "ibp", "flat", 1));
    rows.push(run_method("grid-anchor", &anchor, "mlrsb", "multilevel", 1));
    lap("grid-anchor", &mut scenario_walls, &mut mark);

    let ga_lite = partitioners::tuned_ga(
        GaConfig::paper_defaults(PARTS)
            .with_population_size(48)
            .with_generations(15),
    );
    let small_anchor = grid2d(16, 16, GridKind::FourConnected);
    println!(
        "grid-ga-anchor 16x16: {} nodes, {} edges",
        small_anchor.num_nodes(),
        small_anchor.num_edges()
    );
    rows.push(run_partitioner(
        "grid-ga-anchor",
        &small_anchor,
        &*ga_lite,
        "flat",
        1,
    ));
    rows.push(run_method(
        "grid-ga-anchor",
        &small_anchor,
        "mlga",
        "multilevel",
        1,
    ));
    lap("grid-ga-anchor", &mut scenario_walls, &mut mark);

    let geo_anchor = random_geometric(400, 1.5 / (400f64).sqrt(), SEED);
    println!(
        "geometric-anchor 400: {} nodes, {} edges",
        geo_anchor.num_nodes(),
        geo_anchor.num_edges()
    );
    rows.push(run_method(
        "geometric-anchor",
        &geo_anchor,
        "mlga",
        "multilevel",
        1,
    ));
    rows.push(run_partitioner(
        "geometric-anchor",
        &geo_anchor,
        &*mlga_pfm(),
        "multilevel",
        1,
    ));
    rows.push(run_method(
        "geometric-anchor",
        &geo_anchor,
        "ibp",
        "flat",
        1,
    ));
    lap("geometric-anchor", &mut scenario_walls, &mut mark);

    let churn_anchor = grid2d(12, 12, GridKind::FourConnected);
    for scheme in [
        RefineScheme::BoundaryFm,
        RefineScheme::ParallelFm,
        RefineScheme::Sweep,
    ] {
        rows.push(run_stream("churn-anchor", &churn_anchor, 4, 20, 1, scheme));
    }
    lap("churn-anchor", &mut scenario_walls, &mut mark);

    // ---- Million-node anchor: the scale path, in both smoke and full
    // mode (identical size, so the compare gate covers it). One rep per
    // method — each run is seconds, and determinism at this size is
    // pinned by the CI matrix rather than in-process repetition. Smoke
    // mode enforces the CI time budget.
    let grid_1m = grid2d(1000, 1000, GridKind::FourConnected);
    println!(
        "grid-1m-anchor 1000x1000: {} nodes, {} edges",
        grid_1m.num_nodes(),
        grid_1m.num_edges()
    );
    rows.push(run_partitioner_reps(
        "grid-1m-anchor",
        &grid_1m,
        &*partitioners::by_name("mlga").expect("mlga is registered"),
        "multilevel",
        1,
        1,
    ));
    rows.push(run_partitioner_reps(
        "grid-1m-anchor",
        &grid_1m,
        &*mlga_pfm(),
        "multilevel",
        1,
        1,
    ));
    drop(grid_1m);
    let secs_1m = lap("grid-1m-anchor", &mut scenario_walls, &mut mark);
    if smoke {
        assert!(
            secs_1m <= SMOKE_1M_BUDGET_S,
            "grid-1m-anchor took {secs_1m:.1} s, over the {SMOKE_1M_BUDGET_S:.0} s smoke budget"
        );
    }

    // ---- Full-size scenarios (skipped in smoke mode).
    if !smoke {
        // Scenario 1 — large grid, the headline case: multilevel GA
        // across the full pool sweep, the sweep-refiner ablation, and
        // flat IBP / multilevel RSB as anchors.
        let grid = grid2d(320, 320, GridKind::FourConnected);
        println!(
            "grid 320x320: {} nodes, {} edges",
            grid.num_nodes(),
            grid.num_edges()
        );
        for &t in &cap(&[1, 2, 4, 8]) {
            rows.push(run_method("grid", &grid, "mlga", "multilevel", t));
        }
        for &t in &cap(&[1, 4]) {
            rows.push(run_partitioner(
                "grid",
                &grid,
                &*mlga_pfm(),
                "multilevel",
                t,
            ));
        }
        for &t in &cap(&[1, 4]) {
            rows.push(run_partitioner(
                "grid",
                &grid,
                &*mlga_sweep(),
                "multilevel",
                t,
            ));
        }
        for &t in &cap(&[1, 4]) {
            rows.push(run_method("grid", &grid, "ibp", "flat", t));
        }
        for &t in &cap(&[1, 4]) {
            rows.push(run_method("grid", &grid, "mlrsb", "multilevel", t));
        }
        lap("grid", &mut scenario_walls, &mut mark);

        // Scenario 2 — flat GA vs multilevel GA head-to-head, at a size
        // where the flat GA's O(pop × gens × E) budget stays affordable.
        // The trimmed budget is recorded here, not hidden: pop 48, 15
        // gens.
        let small = grid2d(64, 64, GridKind::FourConnected);
        println!(
            "grid-ga 64x64: {} nodes, {} edges",
            small.num_nodes(),
            small.num_edges()
        );
        for &t in &cap(&[1, 4]) {
            rows.push(run_partitioner("grid-ga", &small, &*ga_lite, "flat", t));
        }
        for &t in &cap(&[1, 4]) {
            rows.push(run_method("grid-ga", &small, "mlga", "multilevel", t));
        }
        lap("grid-ga", &mut scenario_walls, &mut mark);

        // Scenario 3 — random geometric graph: coordinates make the
        // inertial method applicable, so flat IBP vs multilevel GA.
        let n_geo = 40_000;
        let geo = random_geometric(n_geo, 1.5 / (n_geo as f64).sqrt(), SEED);
        println!(
            "geometric {n_geo}: {} nodes, {} edges",
            geo.num_nodes(),
            geo.num_edges()
        );
        for &t in &cap(&[1, 4]) {
            rows.push(run_method("geometric", &geo, "mlga", "multilevel", t));
        }
        for &t in &cap(&[1, 4]) {
            rows.push(run_method("geometric", &geo, "ibp", "flat", t));
        }
        lap("geometric", &mut scenario_walls, &mut mark);

        // Scenario 4 — churn stream: localized refinement on the dirty
        // frontier (FM buckets vs sweep), escalating to full mlga
        // solves.
        let sgrid = grid2d(100, 100, GridKind::FourConnected);
        for &t in &cap(&[1, 4]) {
            rows.push(run_stream(
                "churn-stream",
                &sgrid,
                15,
                150,
                t,
                RefineScheme::BoundaryFm,
            ));
        }
        rows.push(run_stream(
            "churn-stream",
            &sgrid,
            15,
            150,
            1,
            RefineScheme::ParallelFm,
        ));
        rows.push(run_stream(
            "churn-stream",
            &sgrid,
            15,
            150,
            1,
            RefineScheme::Sweep,
        ));
        lap("churn-stream", &mut scenario_walls, &mut mark);

        // Scenario 5 — ten-million-node grid, full mode only: the
        // outer edge of the scale path. One rep each; the row's
        // peak_rss_bytes is the process high-water mark, i.e. the
        // memory ceiling of the whole suite including this graph.
        let grid_10m = grid2d(3163, 3163, GridKind::FourConnected);
        println!(
            "grid-10m 3163x3163: {} nodes, {} edges",
            grid_10m.num_nodes(),
            grid_10m.num_edges()
        );
        rows.push(run_partitioner_reps(
            "grid-10m",
            &grid_10m,
            &*partitioners::by_name("mlga").expect("mlga is registered"),
            "multilevel",
            1,
            1,
        ));
        rows.push(run_partitioner_reps(
            "grid-10m",
            &grid_10m,
            &*mlga_pfm(),
            "multilevel",
            1,
            1,
        ));
        drop(grid_10m);
        lap("grid-10m", &mut scenario_walls, &mut mark);
    }

    // Headline number: mlga on the large grid, 1 thread vs 4.
    let grid_wall = |t: usize| {
        rows.iter()
            .find(|r| r.scenario == "grid" && r.method == "mlga" && r.threads == t)
            .map(|r| r.wall_ms)
    };
    let speedup = match (grid_wall(1), grid_wall(4)) {
        (Some(w1), Some(w4)) if w4 > 0.0 => Some(w1 / w4),
        _ => None,
    };
    if let Some(s) = speedup {
        println!("grid mlga speedup, 4 threads vs 1: {s:.2}x");
    }

    let text = render(&rows, smoke, speedup, &scenario_walls);
    // Never emit a document the validator would reject.
    let doc = json::parse(&text).expect("benchsuite emits parseable JSON");
    json::validate_trajectory(&doc).expect("benchsuite emits schema-valid JSON");
    std::fs::write(&out_path, &text).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}: {} result row(s)", rows.len());
}
