//! Crash-recovery determinism: a tape truncated at *any* batch
//! boundary (with an optionally torn final line) recovers and, after
//! replaying the remaining batches, lands on a labelling bit-identical
//! to the uninterrupted run — under 1/2/4/8-thread pools alike.
//!
//! This is the serve-layer extension of the workspace determinism
//! matrix: the tape + `SessionSpec::resume` path must preserve the
//! batch counter that feeds per-batch sub-seeds, or the replayed tail
//! diverges silently.

use gapart_core::dynamic::SessionSpec;
use gapart_core::engine::GaConfig;
use gapart_core::partitioner_impl::GaPartitioner;
use gapart_graph::dynamic::Mutation;
use gapart_graph::generators::jittered_mesh;
use gapart_graph::io::{from_metis, to_metis};
use gapart_graph::multilevel::MultilevelPartitioner;
use gapart_graph::refine::RefineScheme;
use gapart_graph::{CsrGraph, Partitioner};
use gapart_serve::session::ManagedSession;
use proptest::collection::vec;
use proptest::prelude::*;
use std::path::PathBuf;

fn resolve(name: &str, _scheme: RefineScheme) -> Option<Box<dyn Partitioner>> {
    (name == "mlga").then(|| {
        Box::new(MultilevelPartitioner::new(
            "mlga",
            Box::new(GaPartitioner::new(GaConfig::coarse_defaults(4))),
        )) as Box<dyn Partitioner>
    })
}

/// The test graph: a mesh with its coordinates stripped (the wire/tape
/// path for coordinate-free graphs; `AddNode` then needs no position).
fn base_graph() -> CsrGraph {
    from_metis(&to_metis(&jittered_mesh(90, 17))).unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gapart-recovery-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Raw op tuples → valid mutations against the evolving node count.
fn concretize(raw: &[Vec<(u32, u32, u32, u32)>], start_nodes: usize) -> Vec<Vec<Mutation>> {
    let mut nodes = start_nodes as u32;
    raw.iter()
        .map(|batch| {
            batch
                .iter()
                .map(|&(tag, a, b, w)| match tag {
                    0 => {
                        nodes += 1;
                        Mutation::AddNode {
                            weight: w,
                            pos: None,
                        }
                    }
                    1 => {
                        let u = a % nodes;
                        let mut v = b % nodes;
                        if u == v {
                            v = (v + 1) % nodes;
                        }
                        Mutation::AddEdge { u, v, weight: w }
                    }
                    _ => Mutation::SetNodeWeight {
                        node: a % nodes,
                        weight: w,
                    },
                })
                .collect()
        })
        .collect()
}

/// Keeps the tape's line prefix up to and including the `keep`-th batch
/// record, then (optionally) appends the first half of the next line as
/// a torn tail.
fn truncate_tape(full: &str, keep: usize, tear: bool) -> String {
    let mut out = String::new();
    let mut batches = 0usize;
    let mut lines = full.lines();
    for line in lines.by_ref() {
        if line.starts_with("{\"t\":\"batch\"") {
            if batches == keep {
                if tear && line.len() > 2 {
                    out.push_str(&line[..line.len() / 2]);
                }
                return out;
            }
            batches += 1;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
}

fn arb_batches() -> impl Strategy<Value = Vec<Vec<(u32, u32, u32, u32)>>> {
    vec(
        vec((0u32..3, any::<u32>(), any::<u32>(), 1u32..50), 0..6),
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn truncated_tape_recovers_bit_identically(
        raw in arb_batches(),
        cut_pick in any::<u32>(),
        tear in any::<bool>(),
    ) {
        let dir = temp_dir("prop");
        let graph = base_graph();
        let batches = concretize(&raw, graph.num_nodes());
        let total = batches.len();
        let spec = SessionSpec::parse_kv("parts=4 seed=11").unwrap();

        // Uninterrupted reference run (snapshots every 2 batches so
        // truncation points land both before and after checkpoints).
        let ref_tape = dir.join("reference.tape");
        let mut reference =
            ManagedSession::open(spec.clone(), graph.clone(), &ref_tape, resolve).unwrap();
        reference.replay(&batches, 0, 2).unwrap();
        let want_hash = reference.labels_hash();
        let full_tape = std::fs::read_to_string(&ref_tape).unwrap();

        // Crash at an arbitrary batch boundary, then recover + continue
        // under every thread count in the determinism matrix.
        let keep = (cut_pick as usize) % (total + 1);
        let truncated = truncate_tape(&full_tape, keep, tear);
        for threads in [1usize, 2, 4, 8] {
            let tape = dir.join(format!("crash-{threads}.tape"));
            std::fs::write(&tape, &truncated).unwrap();
            let hash = pool(threads).install(|| {
                let (mut session, replayed) =
                    ManagedSession::recover(&tape, resolve).unwrap();
                // Everything still on the tape was re-applied.
                prop_assert_eq!(session.inner().state().batches, keep);
                prop_assert!(replayed <= keep);
                let applied = session.replay(&batches, keep, 2).unwrap();
                prop_assert_eq!(applied, total - keep);
                prop_assert_eq!(session.inner().state().batches, total);
                Ok(session.labels_hash())
            })?;
            prop_assert!(
                hash == want_hash,
                "diverged at {} threads (keep={}): {} != {}",
                threads,
                keep,
                hash,
                want_hash
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The continued run's tape is itself recoverable: crash, recover,
/// continue, crash again, recover again — still the reference hash.
#[test]
fn double_crash_still_converges() {
    let dir = temp_dir("double");
    let graph = base_graph();
    let raw: Vec<Vec<(u32, u32, u32, u32)>> = (0..6u32)
        .map(|b| {
            (0..4u32)
                .map(|i| (i % 3, b * 31 + i, i * 17 + 5, 1 + i))
                .collect()
        })
        .collect();
    let batches = concretize(&raw, graph.num_nodes());
    let spec = SessionSpec::parse_kv("parts=4 seed=11").unwrap();

    let ref_tape = dir.join("reference.tape");
    let mut reference =
        ManagedSession::open(spec.clone(), graph.clone(), &ref_tape, resolve).unwrap();
    reference.replay(&batches, 0, 2).unwrap();
    let want = reference.labels_hash();
    let full = std::fs::read_to_string(&ref_tape).unwrap();

    let tape = dir.join("crash.tape");
    std::fs::write(&tape, truncate_tape(&full, 2, true)).unwrap();
    {
        let (mut s, _) = ManagedSession::recover(&tape, resolve).unwrap();
        s.replay(&batches[..4], 2, 2).unwrap(); // continue partway...
                                                // ...and "crash" again by dropping without close.
    }
    let (mut s, _) = ManagedSession::recover(&tape, resolve).unwrap();
    assert_eq!(s.inner().state().batches, 4);
    s.replay(&batches, 4, 2).unwrap();
    assert_eq!(s.labels_hash(), want);
    std::fs::remove_dir_all(&dir).ok();
}
