//! The newline-delimited session protocol.
//!
//! One command per line in, one reply per line out:
//!
//! ```text
//! open <name> graph=g.metis [coords=g.xy] parts=4 [method=..] [refine=..]
//!                                         [seed=..] [threshold=..] [hops=..]
//! open <name>                      # existing tape: recover
//! mutate <name> <mutation>         # wire grammar: node/edge/weight ...
//! commit <name>                    # apply buffered mutations as one batch
//! query <name>
//! snapshot <name>
//! replay <name> trace=t.trace [from=N]
//! close <name>
//! sessions
//! shutdown
//! ```
//!
//! Replies are `ok key=value ...` or `err <kind> <message>`. Blank lines
//! and `#` comments are ignored (no reply), so command scripts can be
//! annotated. Session parameters on `open` use the exact
//! [`gapart_core::SessionSpec`] keys — the CLI `stream` flags and the
//! tape's `open` record speak the same grammar.

use crate::ServeError;

/// A parsed protocol command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `open <name> [key=value ...]` — create (with `graph=`) or
    /// recover (bare) a session.
    Open {
        /// Session name (also the tape file stem).
        name: String,
        /// Raw `key=value` parameters, order preserved.
        params: Vec<(String, String)>,
    },
    /// `mutate <name> <wire mutation>` — buffer one mutation.
    Mutate {
        /// Target session.
        name: String,
        /// The mutation in wire grammar (everything after the name).
        mutation: String,
    },
    /// `commit <name>` — apply the buffered mutations as one batch.
    Commit {
        /// Target session.
        name: String,
    },
    /// `query <name>` — report size, cut, counters, and the label hash.
    Query {
        /// Target session.
        name: String,
    },
    /// `snapshot <name>` — force a checkpoint record.
    Snapshot {
        /// Target session.
        name: String,
    },
    /// `replay <name> trace=<path> [from=<batch>]` — commit a trace
    /// file's batches (skipping the first `from`; defaults to the
    /// session's batch counter, i.e. "continue where the tape ends").
    Replay {
        /// Target session.
        name: String,
        /// Path of the trace file (the `trace` text format).
        trace: String,
        /// Explicit skip count; `None` = the session's batch counter.
        from: Option<usize>,
    },
    /// `close <name>` — final snapshot, close record, drop the session.
    Close {
        /// Target session.
        name: String,
    },
    /// `sessions` — list open sessions.
    Sessions,
    /// `shutdown` — close every session and stop serving.
    Shutdown,
}

/// Validates a session name: it doubles as the tape file stem, so only
/// filename-safe characters are allowed.
pub fn check_name(name: &str) -> Result<&str, ServeError> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
        && !name.starts_with('.');
    if ok {
        Ok(name)
    } else {
        Err(ServeError::Protocol(format!(
            "bad session name '{name}': use [A-Za-z0-9_.-]+, not starting with '.'"
        )))
    }
}

fn kv_pairs(tokens: &[&str]) -> Result<Vec<(String, String)>, ServeError> {
    tokens
        .iter()
        .map(|tok| {
            tok.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .ok_or_else(|| ServeError::Protocol(format!("expected key=value, got '{tok}'")))
        })
        .collect()
}

/// Parses one protocol line. The caller has already dropped blank and
/// `#`-comment lines.
pub fn parse_command(line: &str) -> Result<Command, ServeError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    match tokens.as_slice() {
        ["open", name, params @ ..] => Ok(Command::Open {
            name: check_name(name)?.to_string(),
            params: kv_pairs(params)?,
        }),
        ["mutate", name, rest @ ..] if !rest.is_empty() => Ok(Command::Mutate {
            name: check_name(name)?.to_string(),
            mutation: rest.join(" "),
        }),
        ["commit", name] => Ok(Command::Commit {
            name: check_name(name)?.to_string(),
        }),
        ["query", name] => Ok(Command::Query {
            name: check_name(name)?.to_string(),
        }),
        ["snapshot", name] => Ok(Command::Snapshot {
            name: check_name(name)?.to_string(),
        }),
        ["replay", name, params @ ..] => {
            let name = check_name(name)?.to_string();
            let mut trace = None;
            let mut from = None;
            for (k, v) in kv_pairs(params)? {
                match k.as_str() {
                    "trace" => trace = Some(v),
                    "from" => {
                        from = Some(v.parse().map_err(|_| {
                            ServeError::Protocol(format!("bad from '{v}': expected a batch index"))
                        })?)
                    }
                    other => {
                        return Err(ServeError::Protocol(format!(
                            "unknown replay parameter '{other}'"
                        )))
                    }
                }
            }
            let trace =
                trace.ok_or_else(|| ServeError::Protocol("replay needs trace=<path>".into()))?;
            Ok(Command::Replay { name, trace, from })
        }
        ["close", name] => Ok(Command::Close {
            name: check_name(name)?.to_string(),
        }),
        ["sessions"] => Ok(Command::Sessions),
        ["shutdown"] => Ok(Command::Shutdown),
        [] => Err(ServeError::Protocol("empty command".into())),
        [cmd, ..] => Err(ServeError::Protocol(format!(
            "unknown or malformed command '{cmd}'"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_parse() {
        assert_eq!(
            parse_command("open mesh graph=g.metis parts=4 seed=7").unwrap(),
            Command::Open {
                name: "mesh".into(),
                params: vec![
                    ("graph".into(), "g.metis".into()),
                    ("parts".into(), "4".into()),
                    ("seed".into(), "7".into()),
                ],
            }
        );
        assert_eq!(
            parse_command("mutate mesh node 1 0.5 0.5").unwrap(),
            Command::Mutate {
                name: "mesh".into(),
                mutation: "node 1 0.5 0.5".into(),
            }
        );
        assert_eq!(
            parse_command("commit mesh").unwrap(),
            Command::Commit {
                name: "mesh".into()
            }
        );
        assert_eq!(
            parse_command("replay mesh trace=t.trace from=3").unwrap(),
            Command::Replay {
                name: "mesh".into(),
                trace: "t.trace".into(),
                from: Some(3),
            }
        );
        assert_eq!(
            parse_command("replay mesh trace=t.trace").unwrap(),
            Command::Replay {
                name: "mesh".into(),
                trace: "t.trace".into(),
                from: None,
            }
        );
        assert_eq!(parse_command("sessions").unwrap(), Command::Sessions);
        assert_eq!(parse_command("shutdown").unwrap(), Command::Shutdown);
    }

    #[test]
    fn malformed_commands_are_protocol_errors() {
        for bad in [
            "frob mesh",
            "commit",
            "mutate mesh",
            "open we/rd graph=g parts=2",
            "open .hidden graph=g parts=2",
            "open mesh graph",
            "replay mesh",
            "replay mesh trace=t from=x",
            "replay mesh frob=1 trace=t",
            "",
        ] {
            assert!(
                matches!(parse_command(bad), Err(ServeError::Protocol(_))),
                "{bad:?} should be a protocol error"
            );
        }
    }
}
