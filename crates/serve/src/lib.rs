//! `gapart-serve` — the multi-session partition daemon.
//!
//! The ROADMAP's "partition-as-a-service" direction, concretely: a
//! long-running process that keeps many named
//! [`gapart_core::DynamicSession`]s warm (one per tenant graph),
//! accepts commands over a newline-delimited protocol
//! ([`protocol`]) on stdio or a Unix socket, and records every
//! session's life as an append-only JSONL tape with periodic snapshots
//! ([`tape`]). Crash recovery is "load snapshot, replay tail" — and
//! because the session's batch counter (which feeds the per-batch
//! sub-seed) is part of the snapshot, a recovered session's labelling
//! is bit-identical to the uninterrupted run at any thread count.
//!
//! The crate sits between `gapart-core` (sessions) and the facade CLI
//! (the `gapart serve` subcommand): it never names concrete
//! partitioners, taking a [`gapart_core::MethodResolver`] instead, so
//! the method registry stays in one place (the facade) without a
//! dependency cycle.
//!
//! Layering:
//!
//! * [`tape`] — durable record format and reader/writer.
//! * [`session`] — one managed session: engine + tape + pending buffer.
//! * [`protocol`] — command grammar.
//! * this module — the daemon: session map, command execution, the
//!   serve loops (any `BufRead`/`Write` pair, or a Unix socket).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gapart_core::dynamic::{BatchAction, DynamicError, MethodResolver, SessionSpec, SpecError};
use gapart_graph::dynamic::trace::parse_trace;
use gapart_graph::dynamic::wire;
use gapart_graph::io::{attach_coords, coords_from_text, from_metis};
use gapart_graph::CsrGraph;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

pub mod protocol;
pub mod session;
pub mod tape;

use protocol::{parse_command, Command};
use session::ManagedSession;

/// Anything the daemon can report to a client or its operator.
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem failure, with the path involved.
    Io {
        /// The file or directory the operation touched.
        path: PathBuf,
        /// The underlying IO error, rendered.
        message: String,
    },
    /// A malformed tape (1-based line number).
    Tape {
        /// Line of the offending record.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// A malformed or unknown protocol command.
    Protocol(String),
    /// An invalid session parameter (shared grammar with the CLI).
    Spec(SpecError),
    /// The session engine rejected an operation.
    Session(DynamicError),
    /// Inconsistent persisted state (tape gaps, bad snapshots).
    State(String),
}

impl ServeError {
    fn io(path: &Path, e: std::io::Error) -> Self {
        ServeError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        }
    }

    /// Stable one-word classification, the second token of `err` replies.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Io { .. } => "io",
            ServeError::Tape { .. } => "tape",
            ServeError::Protocol(_) => "protocol",
            ServeError::Spec(_) => "spec",
            ServeError::Session(_) => "session",
            ServeError::State(_) => "state",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io { path, message } => write!(f, "{}: {message}", path.display()),
            ServeError::Tape { line, message } => write!(f, "tape line {line}: {message}"),
            ServeError::Protocol(m) => write!(f, "{m}"),
            ServeError::Spec(e) => write!(f, "{e}"),
            ServeError::Session(e) => write!(f, "{e}"),
            ServeError::State(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory holding one `<name>.tape` per session (created on
    /// daemon startup).
    pub tape_dir: PathBuf,
    /// Snapshot cadence: a checkpoint record is appended after every
    /// this-many committed batches (plus one on close). `0` disables
    /// periodic snapshots (close still writes one).
    pub snapshot_every: usize,
}

impl ServeConfig {
    /// Default configuration over `tape_dir` (snapshot every 8 batches).
    pub fn new(tape_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            tape_dir: tape_dir.into(),
            snapshot_every: 8,
        }
    }
}

/// What a serve loop did, for the CLI's exit-code mapping: any `err`
/// reply makes the run exit non-zero even though the daemon kept
/// serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Commands executed (excluding blank/comment lines).
    pub commands: usize,
    /// Commands that produced an `err` reply.
    pub errors: usize,
    /// Whether a `shutdown` command ended the loop (vs input EOF).
    pub shutdown: bool,
}

/// The daemon: named sessions over one tape directory.
pub struct Daemon {
    config: ServeConfig,
    resolver: MethodResolver,
    sessions: BTreeMap<String, ManagedSession>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("tape_dir", &self.config.tape_dir)
            .field("sessions", &self.sessions.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Daemon {
    /// Creates a daemon over `config.tape_dir` (created if absent).
    /// `resolver` maps method names to partitioners — pass the facade's
    /// `partitioners::by_name_with`.
    pub fn new(config: ServeConfig, resolver: MethodResolver) -> Result<Self, ServeError> {
        std::fs::create_dir_all(&config.tape_dir)
            .map_err(|e| ServeError::io(&config.tape_dir, e))?;
        Ok(Daemon {
            config,
            resolver,
            sessions: BTreeMap::new(),
        })
    }

    /// Open session names, in order.
    pub fn session_names(&self) -> Vec<&str> {
        self.sessions.keys().map(String::as_str).collect()
    }

    /// Closes every open session cleanly (final snapshot + close
    /// marker). The `shutdown` command's other half; the CLI also calls
    /// it when stdin reaches EOF without a `shutdown`.
    pub fn close_all(&mut self) -> Result<usize, ServeError> {
        let mut closed = 0usize;
        while let Some((_, session)) = self.sessions.pop_first() {
            session.close()?;
            closed += 1;
        }
        Ok(closed)
    }

    fn tape_path(&self, name: &str) -> PathBuf {
        self.config.tape_dir.join(format!("{name}.tape"))
    }

    fn session_mut(&mut self, name: &str) -> Result<&mut ManagedSession, ServeError> {
        self.sessions
            .get_mut(name)
            .ok_or_else(|| ServeError::Protocol(format!("no open session '{name}'")))
    }

    fn load_graph(&self, graph: &str, coords: Option<&str>) -> Result<CsrGraph, ServeError> {
        let graph_path = Path::new(graph);
        let text =
            std::fs::read_to_string(graph_path).map_err(|e| ServeError::io(graph_path, e))?;
        let g = from_metis(&text).map_err(|e| ServeError::State(format!("{graph}: {e}")))?;
        match coords {
            None => Ok(g),
            Some(cp) => {
                let coords_path = Path::new(cp);
                let ctext = std::fs::read_to_string(coords_path)
                    .map_err(|e| ServeError::io(coords_path, e))?;
                let cs = coords_from_text(&ctext)
                    .map_err(|e| ServeError::State(format!("{cp}: {e}")))?;
                attach_coords(&g, cs).map_err(|e| ServeError::State(format!("{cp}: {e}")))
            }
        }
    }

    fn cmd_open(&mut self, name: &str, params: &[(String, String)]) -> Result<String, ServeError> {
        if self.sessions.contains_key(name) {
            return Err(ServeError::Protocol(format!(
                "session '{name}' is already open"
            )));
        }
        let tape_path = self.tape_path(name);
        if tape_path.exists() {
            if !params.is_empty() {
                return Err(ServeError::Protocol(format!(
                    "session '{name}' has a tape; recovery takes no parameters"
                )));
            }
            let (session, replayed) = ManagedSession::recover(&tape_path, self.resolver)?;
            let reply = format!(
                "name={name} recovered=1 replayed={replayed} {}",
                status_kv(&session)
            );
            self.sessions.insert(name.to_string(), session);
            return Ok(reply);
        }

        // Fresh session: graph= plus session-spec keys.
        let mut graph_path = None;
        let mut coords_path = None;
        let mut spec = SessionSpec::new(0);
        let mut saw_parts = false;
        for (k, v) in params {
            match k.as_str() {
                "graph" => graph_path = Some(v.as_str()),
                "coords" => coords_path = Some(v.as_str()),
                _ => {
                    spec.set(k, v).map_err(ServeError::Spec)?;
                    saw_parts |= k == "parts";
                }
            }
        }
        let Some(graph_path) = graph_path else {
            return Err(ServeError::Protocol(format!(
                "no tape for '{name}': opening a new session needs graph=<path>"
            )));
        };
        if !saw_parts {
            return Err(ServeError::Spec(SpecError::MissingParts));
        }
        let graph = self.load_graph(graph_path, coords_path)?;
        let session = ManagedSession::open(spec, graph, &tape_path, self.resolver)?;
        let reply = format!("name={name} recovered=0 replayed=0 {}", status_kv(&session));
        self.sessions.insert(name.to_string(), session);
        Ok(reply)
    }

    /// Executes one already-parsed command; `Ok` is the payload after
    /// `ok `.
    fn run_command(&mut self, cmd: &Command) -> Result<String, ServeError> {
        match cmd {
            Command::Open { name, params } => self.cmd_open(name, params),
            Command::Mutate { name, mutation } => {
                let m = wire::parse_mutation(mutation).map_err(|e| ServeError::Protocol(e.0))?;
                let session = self.session_mut(name)?;
                let id = session.push_mutation(m);
                let mut reply = format!("pending={}", session.pending());
                if let Some(id) = id {
                    let _ = write!(reply, " id={id}");
                }
                Ok(reply)
            }
            Command::Commit { name } => {
                let snapshot_every = self.config.snapshot_every;
                let session = self.session_mut(name)?;
                let rec = session.commit(snapshot_every)?;
                Ok(format!(
                    "batch={} cut={} epoch={} action={}",
                    rec.batch,
                    rec.cut_after,
                    rec.epoch,
                    match rec.action {
                        BatchAction::Incremental => "incremental",
                        BatchAction::FullRepartition => "full",
                    }
                ))
            }
            Command::Query { name } => {
                let session = self.session_mut(name)?;
                Ok(status_kv(session))
            }
            Command::Snapshot { name } => {
                let session = self.session_mut(name)?;
                session.snapshot()?;
                Ok(format!("batches={}", session.inner().state().batches))
            }
            Command::Replay { name, trace, from } => {
                let trace_path = Path::new(trace.as_str());
                let text = std::fs::read_to_string(trace_path)
                    .map_err(|e| ServeError::io(trace_path, e))?;
                let batches =
                    parse_trace(&text).map_err(|e| ServeError::State(format!("{trace}: {e}")))?;
                let snapshot_every = self.config.snapshot_every;
                let session = self.session_mut(name)?;
                let from = from.unwrap_or(session.inner().state().batches);
                let applied = session.replay(&batches, from, snapshot_every)?;
                Ok(format!("applied={applied} {}", status_kv(session)))
            }
            Command::Close { name } => {
                let session = self
                    .sessions
                    .remove(name)
                    .ok_or_else(|| ServeError::Protocol(format!("no open session '{name}'")))?;
                session.close()?;
                Ok(format!("closed={name}"))
            }
            Command::Sessions => Ok(format!(
                "sessions={} names={}",
                self.sessions.len(),
                self.session_names().join(",")
            )),
            Command::Shutdown => {
                let closed = self.close_all()?;
                Ok(format!("closed={closed}"))
            }
        }
    }

    /// Executes one protocol line and renders the reply (without
    /// newline). Returns the reply plus whether it was a shutdown.
    pub fn execute(&mut self, line: &str) -> (String, bool, bool) {
        match parse_command(line) {
            Err(e) => (format!("err {} {e}", e.kind()), true, false),
            Ok(cmd) => {
                let is_shutdown = cmd == Command::Shutdown;
                match self.run_command(&cmd) {
                    Ok(payload) => (format!("ok {payload}"), false, is_shutdown),
                    Err(e) => (format!("err {} {e}", e.kind()), true, false),
                }
            }
        }
    }
}

/// The common status payload: size, cut, counters, pending buffer, and
/// the determinism-witness hash (same function as the CLI's
/// `labels hash` line and the bench schema's `partition_hash`).
fn status_kv(session: &ManagedSession) -> String {
    let inner = session.inner();
    let state = inner.state();
    format!(
        "nodes={} edges={} cut={} epoch={} batches={} pending={} hash={}",
        inner.graph().num_nodes(),
        inner.graph().num_edges(),
        state.current_cut,
        state.epoch,
        state.batches,
        session.pending(),
        session.labels_hash()
    )
}

/// Runs the daemon over any line stream: one command per input line,
/// one reply per command. Blank lines and `#` comments are skipped
/// without a reply. Every reply is flushed before the next command is
/// read, so interleaved process-level clients see replies promptly.
///
/// # Errors
///
/// Only transport IO errors; command failures become `err` replies and
/// are tallied in the summary.
pub fn serve<R: BufRead, W: Write>(
    daemon: &mut Daemon,
    input: R,
    output: &mut W,
) -> Result<ServeSummary, std::io::Error> {
    let mut summary = ServeSummary::default();
    for line in input.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (reply, errored, shutdown) = daemon.execute(trimmed);
        summary.commands += 1;
        summary.errors += usize::from(errored);
        writeln!(output, "{reply}")?;
        output.flush()?;
        if shutdown {
            summary.shutdown = true;
            break;
        }
    }
    Ok(summary)
}

/// Serves connections on a Unix socket at `socket_path`, sequentially
/// (one session protocol stream at a time — determinism over
/// throughput). Each connection runs [`serve`]; the daemon (and its
/// open sessions) persists across connections. A `shutdown` command
/// ends the accept loop and removes the socket file.
///
/// # Errors
///
/// [`ServeError::Io`] on bind/accept/transport failures.
pub fn serve_unix(daemon: &mut Daemon, socket_path: &Path) -> Result<ServeSummary, ServeError> {
    use std::os::unix::net::UnixListener;
    // A stale socket file from a previous run blocks bind.
    if socket_path.exists() {
        std::fs::remove_file(socket_path).map_err(|e| ServeError::io(socket_path, e))?;
    }
    let listener = UnixListener::bind(socket_path).map_err(|e| ServeError::io(socket_path, e))?;
    let mut total = ServeSummary::default();
    loop {
        let (stream, _) = listener
            .accept()
            .map_err(|e| ServeError::io(socket_path, e))?;
        let reader = std::io::BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ServeError::io(socket_path, e))?,
        );
        let mut writer = stream;
        let summary =
            serve(daemon, reader, &mut writer).map_err(|e| ServeError::io(socket_path, e))?;
        total.commands += summary.commands;
        total.errors += summary.errors;
        if summary.shutdown {
            total.shutdown = true;
            break;
        }
    }
    std::fs::remove_file(socket_path).ok();
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapart_core::engine::GaConfig;
    use gapart_core::partitioner_impl::GaPartitioner;
    use gapart_graph::generators::jittered_mesh;
    use gapart_graph::io::to_metis;
    use gapart_graph::multilevel::MultilevelPartitioner;
    use gapart_graph::refine::RefineScheme;
    use gapart_graph::Partitioner;

    fn resolve(name: &str, _scheme: RefineScheme) -> Option<Box<dyn Partitioner>> {
        (name == "mlga").then(|| {
            Box::new(MultilevelPartitioner::new(
                "mlga",
                Box::new(GaPartitioner::new(GaConfig::coarse_defaults(4))),
            )) as Box<dyn Partitioner>
        })
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gapart-serve-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn kv(reply: &str, key: &str) -> String {
        reply
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("no {key}= in '{reply}'"))
            .to_string()
    }

    #[test]
    fn full_protocol_session_lifecycle() {
        let dir = temp_dir("lifecycle");
        let g = jittered_mesh(120, 11);
        let gp = dir.join("g.metis");
        std::fs::write(&gp, to_metis(&g)).unwrap();

        let mut d = Daemon::new(ServeConfig::new(dir.join("tapes")), resolve).unwrap();
        let script = format!(
            "# comment, then a blank line\n\n\
             open mesh graph={} parts=4 seed=9 threshold=inf\n\
             mutate mesh edge 0 5 2\n\
             mutate mesh node 3\n\
             mutate mesh edge 0 120 1\n\
             commit mesh\n\
             query mesh\n\
             sessions\n\
             snapshot mesh\n\
             close mesh\n\
             query mesh\n\
             shutdown\n",
            gp.display()
        );
        let mut out = Vec::new();
        let summary = serve(&mut d, script.as_bytes(), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();

        assert_eq!(summary.commands, 11);
        assert_eq!(summary.errors, 1, "query after close errs:\n{out}");
        assert!(summary.shutdown);

        assert!(lines[0].starts_with("ok name=mesh recovered=0"), "{out}");
        assert_eq!(kv(lines[0], "nodes"), "120");
        assert_eq!(lines[1], "ok pending=1");
        assert_eq!(lines[2], "ok pending=2 id=120", "new node id is predicted");
        assert_eq!(lines[3], "ok pending=3");
        assert!(kv(lines[4], "action") == "incremental", "{out}");
        assert_eq!(kv(lines[5], "nodes"), "121");
        assert_eq!(kv(lines[5], "batches"), "1");
        assert_eq!(kv(lines[5], "pending"), "0");
        assert_eq!(lines[6], "ok sessions=1 names=mesh");
        assert_eq!(lines[7], "ok batches=1");
        assert_eq!(lines[8], "ok closed=mesh");
        assert!(lines[9].starts_with("err protocol"), "{out}");
        assert_eq!(lines[10], "ok closed=0");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_recovers_to_the_same_hash() {
        let dir = temp_dir("reopen");
        let g = jittered_mesh(120, 11);
        let gp = dir.join("g.metis");
        std::fs::write(&gp, to_metis(&g)).unwrap();
        let tapes = dir.join("tapes");

        // First run: open, one batch, then drop the daemon WITHOUT
        // closing (simulating a crash after the commit ack).
        let mut d = Daemon::new(ServeConfig::new(&tapes), resolve).unwrap();
        let script = format!(
            "open mesh graph={} parts=4 seed=9\nmutate mesh edge 0 5 2\ncommit mesh\nquery mesh\n",
            gp.display()
        );
        let mut out = Vec::new();
        serve(&mut d, script.as_bytes(), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        let live_hash = kv(out.lines().last().unwrap(), "hash");
        drop(d);

        // Second daemon recovers from the tape alone.
        let mut d = Daemon::new(ServeConfig::new(&tapes), resolve).unwrap();
        let mut out = Vec::new();
        serve(&mut d, "open mesh\nquery mesh\n".as_bytes(), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("ok name=mesh recovered=1"), "{out}");
        assert_eq!(kv(lines[0], "replayed"), "1");
        assert_eq!(kv(lines[1], "hash"), live_hash, "{out}");

        // Opening an existing tape with parameters is an error.
        let (reply, errored, _) = d.execute("open mesh graph=g parts=4");
        assert!(errored, "{reply}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_bad_specs_and_missing_graphs() {
        let dir = temp_dir("badopen");
        let mut d = Daemon::new(ServeConfig::new(dir.join("tapes")), resolve).unwrap();
        for (line, kind) in [
            ("open s1 parts=4", "protocol"),              // no graph=, no tape
            ("open s1 graph=nope.metis parts=4", "io"),   // graph file missing
            ("open s1 graph=nope.metis", "spec"),         // parts missing
            ("open s1 graph=nope.metis parts=0", "spec"), // parts invalid
            ("open s1 graph=nope.metis parts=2 frob=1", "spec"),
            ("mutate s1 edge 0 1 1", "protocol"), // not open
            ("mutate s1 frob 1", "protocol"),     // bad wire op
        ] {
            let (reply, errored, _) = d.execute(line);
            assert!(errored, "{line} -> {reply}");
            assert_eq!(
                reply.split_whitespace().nth(1),
                Some(kind),
                "{line} -> {reply}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
