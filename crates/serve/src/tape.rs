//! The durable session tape: append-only JSONL, one record per line.
//!
//! Every session the daemon manages writes its whole life to one tape
//! file (`<tape-dir>/<name>.tape`):
//!
//! ```text
//! {"t":"open","v":"1","spec":"parts=4 method=mlga ...","metis":"...","coords":"..."}
//! {"t":"batch","seq":"0","muts":"node 1 0.5 0.5;edge 0 1 1"}
//! {"t":"snapshot","batches":"8","epoch":"1","baseline_cut":"41","cut":"44","labels":"0 1 ...","metis":"...","coords":"..."}
//! {"t":"close","seq":"8"}
//! ```
//!
//! * The `open` record (always first) carries the canonical
//!   [`gapart_core::SessionSpec`] `key=value` string and the initial
//!   graph, so a recovery reconstructs the exact configuration.
//! * One `batch` record per committed batch, written *after* the batch
//!   applied successfully; `muts` is the single-line
//!   [`gapart_graph::dynamic::wire`] batch form. `seq` is the batch's
//!   0-based index — replay checks continuity.
//! * `snapshot` records (periodic, plus one on close) carry the full
//!   graph, labels, and the [`gapart_core::SessionState`] counters;
//!   recovery loads the latest snapshot and replays only the batch
//!   records after it.
//! * A torn final line (the record a crash interrupted) is tolerated
//!   and dropped; corruption anywhere else is an error.
//!
//! Records are flat JSON objects whose values are all strings — the
//! scanner below handles exactly that shape, keeping the format
//! greppable and diffable without pulling in a JSON dependency. Every
//! append is flushed before the daemon replies, so an acknowledged
//! commit survives a `SIGKILL`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::ServeError;

/// One tape record, decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// First record of every tape: the session's spec and initial graph.
    Open {
        /// Canonical `key=value` spec string
        /// ([`gapart_core::SessionSpec::to_kv`]).
        spec: String,
        /// The initial graph in METIS text form.
        metis: String,
        /// Vertex coordinates (`x y` per line), when the graph has them.
        coords: Option<String>,
    },
    /// One committed mutation batch.
    Batch {
        /// 0-based batch index in the session.
        seq: usize,
        /// Single-line wire form of the batch
        /// ([`gapart_graph::dynamic::wire::format_batch`]).
        muts: String,
    },
    /// A full checkpoint of the session.
    Snapshot(Snapshot),
    /// Clean shutdown marker; `seq` is the number of batches absorbed.
    Close {
        /// Batches absorbed when the session closed.
        seq: usize,
    },
}

/// The payload of a [`Record::Snapshot`]: everything
/// [`gapart_core::DynamicSession::resume`] needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Batches absorbed at snapshot time.
    pub batches: usize,
    /// Epoch counter (full solves so far).
    pub epoch: usize,
    /// The epoch's baseline cut.
    pub baseline_cut: u64,
    /// The maintained cut (doubles as a resume integrity check).
    pub cut: u64,
    /// Space-separated part labels, one per node.
    pub labels: String,
    /// The graph at snapshot time, METIS text form.
    pub metis: String,
    /// Vertex coordinates, when the graph has them.
    pub coords: Option<String>,
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders `fields` as a single-line JSON object with string values.
fn object_line(fields: &[(&str, &str)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(k, &mut out);
        out.push_str("\":\"");
        escape_into(v, &mut out);
        out.push('"');
    }
    out.push('}');
    out
}

/// Scans one flat `{"k":"v",...}` object (string values only).
fn parse_object(line: &str) -> Result<BTreeMap<String, String>, String> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = BTreeMap::new();

    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars>| {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
    };
    fn string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<String, String> {
        if chars.next() != Some('"') {
            return Err("expected '\"'".into());
        }
        let mut out = String::new();
        loop {
            match chars.next() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(out),
                Some('\\') => match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = chars
                                .next()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    if chars.next() != Some('{') {
        return Err("expected '{'".into());
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = string(&mut chars)?;
            skip_ws(&mut chars);
            if chars.next() != Some(':') {
                return Err(format!("expected ':' after key '{key}'"));
            }
            skip_ws(&mut chars);
            let value = string(&mut chars)?;
            fields.insert(key, value);
            skip_ws(&mut chars);
            match chars.next() {
                Some(',') => continue,
                Some('}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing characters after object".into());
    }
    Ok(fields)
}

impl Record {
    /// Serializes the record to its one-line tape form (no newline).
    pub fn to_line(&self) -> String {
        match self {
            Record::Open {
                spec,
                metis,
                coords,
            } => {
                let mut fields = vec![("t", "open"), ("v", "1"), ("spec", spec), ("metis", metis)];
                if let Some(c) = coords {
                    fields.push(("coords", c));
                }
                object_line(&fields)
            }
            Record::Batch { seq, muts } => {
                let seq = seq.to_string();
                object_line(&[("t", "batch"), ("seq", &seq), ("muts", muts)])
            }
            Record::Snapshot(s) => {
                let batches = s.batches.to_string();
                let epoch = s.epoch.to_string();
                let baseline = s.baseline_cut.to_string();
                let cut = s.cut.to_string();
                let mut fields = vec![
                    ("t", "snapshot"),
                    ("batches", batches.as_str()),
                    ("epoch", epoch.as_str()),
                    ("baseline_cut", baseline.as_str()),
                    ("cut", cut.as_str()),
                    ("labels", s.labels.as_str()),
                    ("metis", s.metis.as_str()),
                ];
                if let Some(c) = &s.coords {
                    fields.push(("coords", c));
                }
                object_line(&fields)
            }
            Record::Close { seq } => {
                let seq = seq.to_string();
                object_line(&[("t", "close"), ("seq", &seq)])
            }
        }
    }

    /// Parses one tape line. The message omits the line number; the
    /// caller adds it.
    pub fn parse_line(line: &str) -> Result<Record, String> {
        let fields = parse_object(line)?;
        let get = |k: &str| -> Result<&String, String> {
            fields.get(k).ok_or_else(|| format!("missing field '{k}'"))
        };
        let num = |k: &str| -> Result<usize, String> {
            get(k)?.parse().map_err(|_| format!("bad number in '{k}'"))
        };
        let num64 = |k: &str| -> Result<u64, String> {
            get(k)?.parse().map_err(|_| format!("bad number in '{k}'"))
        };
        match get("t")?.as_str() {
            "open" => {
                if get("v")? != "1" {
                    return Err(format!("unsupported tape version '{}'", get("v")?));
                }
                Ok(Record::Open {
                    spec: get("spec")?.clone(),
                    metis: get("metis")?.clone(),
                    coords: fields.get("coords").cloned(),
                })
            }
            "batch" => Ok(Record::Batch {
                seq: num("seq")?,
                muts: get("muts")?.clone(),
            }),
            "snapshot" => Ok(Record::Snapshot(Snapshot {
                batches: num("batches")?,
                epoch: num("epoch")?,
                baseline_cut: num64("baseline_cut")?,
                cut: num64("cut")?,
                labels: get("labels")?.clone(),
                metis: get("metis")?.clone(),
                coords: fields.get("coords").cloned(),
            })),
            "close" => Ok(Record::Close { seq: num("seq")? }),
            other => Err(format!("unknown record type '{other}'")),
        }
    }
}

/// Append-side handle on a session tape. Every [`TapeWriter::append`]
/// flushes before returning, so a record the daemon acknowledged is in
/// the page cache — a killed *process* loses nothing acknowledged
/// (tolerating torn final lines covers the mid-write kill).
#[derive(Debug)]
pub struct TapeWriter {
    path: PathBuf,
    file: File,
}

impl TapeWriter {
    /// Creates a fresh tape (the file must not exist yet).
    pub fn create(path: &Path) -> Result<Self, ServeError> {
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(|e| ServeError::io(path, e))?;
        Ok(TapeWriter {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Opens an existing tape for appending (the recovery path). A torn
    /// final line — the crash artifact [`read_tape`] tolerates — is
    /// truncated away first, so the next append starts a fresh line
    /// instead of concatenating onto the fragment.
    pub fn append_to(path: &Path) -> Result<Self, ServeError> {
        let text = std::fs::read_to_string(path).map_err(|e| ServeError::io(path, e))?;
        let keep = if text.ends_with('\n') {
            text.len()
        } else {
            text.rfind('\n').map_or(0, |i| i + 1)
        };
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| ServeError::io(path, e))?;
        if keep < text.len() {
            file.set_len(keep as u64)
                .map_err(|e| ServeError::io(path, e))?;
        }
        Ok(TapeWriter {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Appends one record and flushes.
    pub fn append(&mut self, record: &Record) -> Result<(), ServeError> {
        let mut line = record.to_line();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| ServeError::io(&self.path, e))
    }
}

/// Reads a whole tape. Returns the records plus whether a torn final
/// line (a record interrupted by a crash) was dropped.
///
/// # Errors
///
/// [`ServeError::Io`] on read failure; [`ServeError::Tape`] when any
/// line but the last is malformed, or the tape does not start with an
/// `open` record.
pub fn read_tape(path: &Path) -> Result<(Vec<Record>, bool), ServeError> {
    let text = std::fs::read_to_string(path).map_err(|e| ServeError::io(path, e))?;
    let lines: Vec<&str> = text.lines().collect();
    let mut records = Vec::with_capacity(lines.len());
    let mut dropped_tail = false;
    let last = lines.len().saturating_sub(1);
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Record::parse_line(line) {
            Ok(r) => records.push(r),
            // A torn final line is the expected crash artifact; anything
            // earlier means real corruption.
            Err(_) if i == last => dropped_tail = true,
            Err(message) => {
                return Err(ServeError::Tape {
                    line: i + 1,
                    message,
                })
            }
        }
    }
    match records.first() {
        Some(Record::Open { .. }) => Ok((records, dropped_tail)),
        Some(_) => Err(ServeError::Tape {
            line: 1,
            message: "tape does not start with an open record".into(),
        }),
        None => Err(ServeError::Tape {
            line: 1,
            message: "tape is empty".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_through_their_line_form() {
        let records = [
            Record::Open {
                spec: "parts=4 method=mlga refine=fm seed=7 threshold=1.5 hops=2".into(),
                metis: "3 2\n2 3\n1 3\n1 2\n".into(),
                coords: Some("0.5 0.5\n1 2\n3 4\n".into()),
            },
            Record::Open {
                spec: "parts=2".into(),
                metis: "1 0\n".into(),
                coords: None,
            },
            Record::Batch {
                seq: 12,
                muts: "node 1 0.25 0.75;edge 0 1 1;weight 2 5".into(),
            },
            Record::Snapshot(Snapshot {
                batches: 8,
                epoch: 2,
                baseline_cut: 41,
                cut: 44,
                labels: "0 1 2 1".into(),
                metis: "4 3\n2\n1 3\n2 4\n3\n".into(),
                coords: None,
            }),
            Record::Close { seq: 9 },
        ];
        for r in &records {
            let line = r.to_line();
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(&Record::parse_line(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn escapes_survive_hostile_strings() {
        let spec = "quote\" backslash\\ newline\n tab\t nul\u{0} unicode\u{00e9}";
        let r = Record::Open {
            spec: spec.into(),
            metis: String::new(),
            coords: None,
        };
        assert_eq!(Record::parse_line(&r.to_line()).unwrap(), r);
    }

    #[test]
    fn malformed_lines_are_named_errors() {
        assert!(Record::parse_line("not json").is_err());
        assert!(
            Record::parse_line("{\"t\":\"open\"}").is_err(),
            "missing fields"
        );
        assert!(
            Record::parse_line("{\"t\":\"frob\"}").is_err(),
            "unknown type"
        );
        assert!(Record::parse_line("{\"t\":\"batch\",\"seq\":\"x\",\"muts\":\"\"}").is_err());
        assert!(
            Record::parse_line("{\"t\":\"close\",\"seq\":\"1\"} extra").is_err(),
            "trailing garbage"
        );
    }

    #[test]
    fn read_tape_tolerates_only_a_torn_tail() {
        let dir = std::env::temp_dir().join(format!("gapart-tape-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let open = Record::Open {
            spec: "parts=2".into(),
            metis: "1 0\n".into(),
            coords: None,
        };
        let batch = Record::Batch {
            seq: 0,
            muts: "weight 0 2".into(),
        };

        // Torn tail: dropped, flagged.
        let torn = dir.join("torn.tape");
        std::fs::write(
            &torn,
            format!("{}\n{}\n{{\"t\":\"ba", open.to_line(), batch.to_line()),
        )
        .unwrap();
        let (records, dropped) = read_tape(&torn).unwrap();
        assert_eq!(records, vec![open.clone(), batch.clone()]);
        assert!(dropped);

        // Corruption mid-tape: hard error with the line number.
        let corrupt = dir.join("corrupt.tape");
        std::fs::write(
            &corrupt,
            format!("{}\ngarbage\n{}\n", open.to_line(), batch.to_line()),
        )
        .unwrap();
        assert!(matches!(
            read_tape(&corrupt).unwrap_err(),
            ServeError::Tape { line: 2, .. }
        ));

        // A tape that does not open with an open record is invalid.
        let headless = dir.join("headless.tape");
        std::fs::write(&headless, format!("{}\n", batch.to_line())).unwrap();
        assert!(matches!(
            read_tape(&headless).unwrap_err(),
            ServeError::Tape { line: 1, .. }
        ));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_appends_flushed_lines() {
        let dir = std::env::temp_dir().join(format!("gapart-tapew-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.tape");

        let open = Record::Open {
            spec: "parts=2".into(),
            metis: "1 0\n".into(),
            coords: None,
        };
        let mut w = TapeWriter::create(&path).unwrap();
        w.append(&open).unwrap();
        assert!(
            TapeWriter::create(&path).is_err(),
            "create refuses to clobber"
        );

        // Reopen for append, add a record, and read everything back.
        drop(w);
        let mut w = TapeWriter::append_to(&path).unwrap();
        let close = Record::Close { seq: 0 };
        w.append(&close).unwrap();
        drop(w);
        let (records, dropped) = read_tape(&path).unwrap();
        assert_eq!(records, vec![open, close]);
        assert!(!dropped);

        std::fs::remove_dir_all(&dir).ok();
    }
}
