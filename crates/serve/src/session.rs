//! One managed session: a [`DynamicSession`] plus its tape.
//!
//! The daemon owns many of these, one per tenant graph. All durability
//! runs through here: a committed batch is written to the tape *after*
//! it applied (so the tape only ever contains applied batches), and
//! snapshots checkpoint the full `(graph, partition, state)` triple at
//! a configurable cadence so recovery replays a bounded tail.
//!
//! The determinism contract: [`ManagedSession::recover`] restores the
//! snapshot with [`SessionSpec::resume`] — which re-aligns the batch
//! counter feeding per-batch sub-seeds — then replays the tape's tail
//! batches. The result is bit-identical to the uninterrupted live run,
//! at any thread count (pinned by this crate's recovery proptests and
//! the process-level kill test in the workspace `tests/`).

use gapart_core::dynamic::{
    BatchRecord, DynamicSession, MethodResolver, SessionSpec, SessionState,
};
use gapart_graph::dynamic::wire;
use gapart_graph::dynamic::Mutation;
use gapart_graph::io::{attach_coords, coords_from_text, coords_to_text, from_metis, to_metis};
use gapart_graph::partition::{hash_labels, Partition};
use gapart_graph::CsrGraph;
use std::path::Path;

use crate::tape::{read_tape, Record, Snapshot, TapeWriter};
use crate::ServeError;

/// A live named session: the dynamic-repartitioning engine, its spec,
/// its tape, and the not-yet-committed mutation buffer.
#[derive(Debug)]
pub struct ManagedSession {
    spec: SessionSpec,
    inner: DynamicSession,
    tape: TapeWriter,
    pending: Vec<Mutation>,
    /// `batches` value at the last snapshot on the tape (or 0 when only
    /// the open record exists) — drives the snapshot cadence.
    last_snapshot: usize,
}

fn parse_labels(text: &str, parts: u32) -> Result<Partition, ServeError> {
    let labels = text
        .split_whitespace()
        .map(str::parse)
        .collect::<Result<Vec<u32>, _>>()
        .map_err(|_| ServeError::State("snapshot labels are not numbers".into()))?;
    Partition::new(labels, parts).map_err(|e| ServeError::State(format!("snapshot labels: {e}")))
}

fn restore_graph(metis: &str, coords: Option<&String>) -> Result<CsrGraph, ServeError> {
    let g = from_metis(metis).map_err(|e| ServeError::State(format!("tape graph: {e}")))?;
    match coords {
        None => Ok(g),
        Some(text) => {
            let coords = coords_from_text(text)
                .map_err(|e| ServeError::State(format!("tape coords: {e}")))?;
            attach_coords(&g, coords).map_err(|e| ServeError::State(format!("tape coords: {e}")))
        }
    }
}

impl ManagedSession {
    /// Opens a brand-new session: full solve on `graph`, fresh tape at
    /// `tape_path` whose first record persists the spec and the graph.
    pub fn open(
        spec: SessionSpec,
        graph: CsrGraph,
        tape_path: &Path,
        resolver: MethodResolver,
    ) -> Result<Self, ServeError> {
        let metis = to_metis(&graph);
        let coords = graph.coords().map(coords_to_text);
        let inner = spec.open(graph, resolver).map_err(ServeError::Session)?;
        let mut tape = TapeWriter::create(tape_path)?;
        tape.append(&Record::Open {
            spec: spec.to_kv(),
            metis,
            coords,
        })?;
        Ok(ManagedSession {
            spec,
            inner,
            tape,
            pending: Vec::new(),
            last_snapshot: 0,
        })
    }

    /// Recovers a session from its tape: load the latest snapshot (or
    /// the open record's initial graph), then replay every batch record
    /// past it. Returns the session and how many tail batches were
    /// replayed.
    pub fn recover(
        tape_path: &Path,
        resolver: MethodResolver,
    ) -> Result<(Self, usize), ServeError> {
        let (records, _dropped_tail) = read_tape(tape_path)?;
        let mut records = records.into_iter();
        let Some(Record::Open {
            spec,
            metis,
            coords,
        }) = records.next()
        else {
            // read_tape guarantees the first record is Open.
            return Err(ServeError::State("tape has no open record".into()));
        };
        let spec = SessionSpec::parse_kv(&spec).map_err(ServeError::Spec)?;

        // Find the latest snapshot and the batch records after it.
        let mut snapshot: Option<Snapshot> = None;
        let mut tail: Vec<(usize, String)> = Vec::new();
        for record in records {
            match record {
                Record::Snapshot(s) => {
                    tail.clear();
                    snapshot = Some(s);
                }
                Record::Batch { seq, muts } => tail.push((seq, muts)),
                Record::Open { .. } => {
                    return Err(ServeError::State("second open record on tape".into()))
                }
                Record::Close { .. } => {}
            }
        }

        let mut inner = match &snapshot {
            Some(s) => {
                let graph = restore_graph(&s.metis, s.coords.as_ref())?;
                let partition = parse_labels(&s.labels, spec.parts)?;
                let state = SessionState {
                    batches: s.batches,
                    epoch: s.epoch,
                    baseline_cut: s.baseline_cut,
                    current_cut: s.cut,
                };
                spec.resume(graph, partition, state, resolver)
                    .map_err(ServeError::Session)?
            }
            // No snapshot yet: redo the deterministic opening solve.
            None => {
                let graph = restore_graph(&metis, coords.as_ref())?;
                spec.open(graph, resolver).map_err(ServeError::Session)?
            }
        };

        // Replay the tail. Batches at or before the snapshot's counter
        // are already part of the restored state; past it, sequence
        // numbers must run contiguously.
        let mut replayed = 0usize;
        for (seq, muts) in tail {
            let at = inner.state().batches;
            if seq < at {
                continue;
            }
            if seq > at {
                return Err(ServeError::State(format!(
                    "tape gap: expected batch {at}, found {seq}"
                )));
            }
            let batch = wire::parse_batch(&muts)
                .map_err(|e| ServeError::State(format!("tape batch {seq}: {e}")))?;
            inner.apply_batch(&batch).map_err(ServeError::Session)?;
            replayed += 1;
        }

        let last_snapshot = snapshot.map_or(0, |s| s.batches);
        let tape = TapeWriter::append_to(tape_path)?;
        Ok((
            ManagedSession {
                spec,
                inner,
                tape,
                pending: Vec::new(),
                last_snapshot,
            },
            replayed,
        ))
    }

    /// The session's spec.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// The underlying dynamic session.
    pub fn inner(&self) -> &DynamicSession {
        &self.inner
    }

    /// Number of buffered, not-yet-committed mutations.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Buffers one mutation for the next commit. For an `AddNode`,
    /// returns the node id it will receive (ids are assigned in stream
    /// order, so the id is already determined at buffer time).
    pub fn push_mutation(&mut self, m: Mutation) -> Option<u32> {
        let id = match m {
            Mutation::AddNode { .. } => {
                let prior_adds = self
                    .pending
                    .iter()
                    .filter(|p| matches!(p, Mutation::AddNode { .. }))
                    .count();
                u32::try_from(self.inner.graph().num_nodes() + prior_adds).ok()
            }
            _ => None,
        };
        self.pending.push(m);
        id
    }

    /// Commits the buffered mutations as one batch: apply, then append
    /// the batch record, then snapshot if the cadence says so. A failed
    /// apply discards the buffer (the daemon stays consistent; the
    /// client is told via the error).
    pub fn commit(&mut self, snapshot_every: usize) -> Result<BatchRecord, ServeError> {
        let batch = std::mem::take(&mut self.pending);
        let seq = self.inner.state().batches;
        let record = self
            .inner
            .apply_batch(&batch)
            .map_err(ServeError::Session)?;
        self.tape.append(&Record::Batch {
            seq,
            muts: wire::format_batch(&batch),
        })?;
        if snapshot_every > 0 && self.inner.state().batches - self.last_snapshot >= snapshot_every {
            self.snapshot()?;
        }
        Ok(record)
    }

    /// Replays `batches` (e.g. a parsed trace) through the session,
    /// committing each as its own tape batch. Batches before `from` are
    /// skipped — the recovery idiom is `from = state().batches`.
    pub fn replay(
        &mut self,
        batches: &[Vec<Mutation>],
        from: usize,
        snapshot_every: usize,
    ) -> Result<usize, ServeError> {
        let mut applied = 0usize;
        for batch in batches.iter().skip(from) {
            self.pending.clone_from(batch);
            self.commit(snapshot_every)?;
            applied += 1;
        }
        Ok(applied)
    }

    /// Appends a full checkpoint to the tape.
    pub fn snapshot(&mut self) -> Result<(), ServeError> {
        let state = self.inner.state();
        let labels: Vec<String> = self
            .inner
            .partition()
            .labels()
            .iter()
            .map(u32::to_string)
            .collect();
        self.tape.append(&Record::Snapshot(Snapshot {
            batches: state.batches,
            epoch: state.epoch,
            baseline_cut: state.baseline_cut,
            cut: state.current_cut,
            labels: labels.join(" "),
            metis: to_metis(self.inner.graph()),
            coords: self.inner.graph().coords().map(coords_to_text),
        }))?;
        self.last_snapshot = state.batches;
        Ok(())
    }

    /// Final snapshot plus a close marker; consumes the session.
    pub fn close(mut self) -> Result<(), ServeError> {
        self.snapshot()?;
        let seq = self.inner.state().batches;
        self.tape.append(&Record::Close { seq })
    }

    /// The determinism witness for the current partition.
    pub fn labels_hash(&self) -> String {
        hash_labels(self.inner.partition().labels())
    }
}
