//! The full IBP pipeline: quantize → index → sort → color.

use crate::index::IndexScheme;
use gapart_graph::error::GraphError;
use gapart_graph::geometry::quantize;
use gapart_graph::{CsrGraph, Partition};

/// Options for [`ibp_partition`].
#[derive(Debug, Clone)]
pub struct IbpOptions {
    /// Indexing scheme (the paper illustrates row-major and shuffled
    /// row-major; shuffled is the better seed and the default).
    pub scheme: IndexScheme,
    /// Grid resolution the coordinates are quantized onto. Higher values
    /// distinguish nearby vertices better; 1024 is plenty for the paper's
    /// graph sizes.
    pub resolution: u32,
}

impl Default for IbpOptions {
    fn default() -> Self {
        IbpOptions {
            scheme: IndexScheme::ShuffledRowMajor,
            resolution: 1024,
        }
    }
}

/// Partitions a coordinate-carrying graph into `num_parts` parts by the
/// paper's appendix algorithm: quantize vertex coordinates onto a grid,
/// compute each vertex's 1-D spatial index, sort (ties broken by vertex
/// id), and cut the sorted list into `P` equal sublists.
///
/// # Errors
///
/// [`GraphError::MissingCoordinates`] if the graph carries no geometry;
/// [`GraphError::PartOutOfRange`] if `num_parts` is zero or exceeds the
/// node count.
pub fn ibp_partition(
    graph: &CsrGraph,
    num_parts: u32,
    opts: &IbpOptions,
) -> Result<Partition, GraphError> {
    let n = graph.num_nodes();
    if num_parts == 0 || num_parts as usize > n {
        return Err(GraphError::PartOutOfRange {
            part: num_parts,
            num_parts,
        });
    }
    let coords = graph.coords_required()?;

    // Phase 1: indexing.
    let cells = quantize(coords, opts.resolution);
    let mut keyed: Vec<(u64, u32)> = cells
        .iter()
        .enumerate()
        .map(|(v, &(cx, cy))| {
            // quantize returns (x, y); the schemes take (row, col).
            (opts.scheme.index(cy, cx, opts.resolution), v as u32)
        })
        .collect();

    // Phase 2: sorting (stable order via the id tiebreak).
    keyed.sort_unstable();

    // Phase 3: coloring — P equal sublists (first `n mod P` lists get the
    // extra vertex).
    let mut labels = vec![0u32; n];
    let base = n / num_parts as usize;
    let extra = n % num_parts as usize;
    let mut pos = 0usize;
    for part in 0..num_parts {
        let take = base + usize::from((part as usize) < extra);
        for &(_, v) in &keyed[pos..pos + take] {
            labels[v as usize] = part;
        }
        pos += take;
    }
    Partition::new(labels, num_parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapart_graph::generators::{grid2d, paper_graph, GridKind};
    use gapart_graph::partition::{cut_size, PartitionMetrics};

    #[test]
    fn parts_are_equal_sized() {
        let g = paper_graph(167);
        for parts in [2u32, 4, 8] {
            let p = ibp_partition(&g, parts, &IbpOptions::default()).unwrap();
            let sizes = p.part_sizes();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            assert!(max - min <= 1, "parts={parts}: sizes {sizes:?}");
        }
    }

    #[test]
    fn locality_beats_round_robin() {
        let g = paper_graph(144);
        let ibp = ibp_partition(&g, 4, &IbpOptions::default()).unwrap();
        let rr = Partition::round_robin(144, 4);
        assert!(
            cut_size(&g, &ibp) < cut_size(&g, &rr),
            "IBP {} should beat round-robin {}",
            cut_size(&g, &ibp),
            cut_size(&g, &rr)
        );
    }

    #[test]
    fn shuffled_beats_row_major_on_square_grid() {
        // On a square grid split 4 ways, row-major produces 4 horizontal
        // slabs (3 full-width cuts); Morton produces 4 quadrant-ish blocks
        // (shorter total boundary).
        let g = grid2d(16, 16, GridKind::FourConnected);
        let rm = ibp_partition(
            &g,
            4,
            &IbpOptions {
                scheme: IndexScheme::RowMajor,
                resolution: 16,
            },
        )
        .unwrap();
        let sh = ibp_partition(
            &g,
            4,
            &IbpOptions {
                scheme: IndexScheme::ShuffledRowMajor,
                resolution: 16,
            },
        )
        .unwrap();
        assert!(
            cut_size(&g, &sh) < cut_size(&g, &rm),
            "shuffled {} vs row-major {}",
            cut_size(&g, &sh),
            cut_size(&g, &rm)
        );
    }

    #[test]
    fn hilbert_no_worse_than_shuffled() {
        let g = grid2d(16, 16, GridKind::FourConnected);
        let mk = |scheme| {
            let p = ibp_partition(
                &g,
                8,
                &IbpOptions {
                    scheme,
                    resolution: 16,
                },
            )
            .unwrap();
            cut_size(&g, &p)
        };
        assert!(mk(IndexScheme::Hilbert) <= mk(IndexScheme::ShuffledRowMajor));
    }

    #[test]
    fn row_major_on_grid_gives_slabs() {
        let g = grid2d(8, 8, GridKind::FourConnected);
        let p = ibp_partition(
            &g,
            2,
            &IbpOptions {
                scheme: IndexScheme::RowMajor,
                resolution: 8,
            },
        )
        .unwrap();
        // Top 4 rows in one part, bottom 4 in the other: cut = 8.
        let m = PartitionMetrics::compute(&g, &p);
        assert_eq!(m.total_cut, 8);
        assert_eq!(m.part_loads, vec![32, 32]);
    }

    #[test]
    fn requires_coordinates() {
        let g = gapart_graph::generators::gnp(20, 0.2, 1);
        assert_eq!(
            ibp_partition(&g, 2, &IbpOptions::default()).unwrap_err(),
            GraphError::MissingCoordinates
        );
    }

    #[test]
    fn rejects_bad_part_count() {
        let g = paper_graph(78);
        assert!(ibp_partition(&g, 0, &IbpOptions::default()).is_err());
        assert!(ibp_partition(&g, 100, &IbpOptions::default()).is_err());
    }

    #[test]
    fn deterministic() {
        let g = paper_graph(213);
        let a = ibp_partition(&g, 8, &IbpOptions::default()).unwrap();
        let b = ibp_partition(&g, 8, &IbpOptions::default()).unwrap();
        assert_eq!(a, b);
    }
}
