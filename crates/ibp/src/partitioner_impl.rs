//! [`Partitioner`] implementation for the index-based partitioner.

use crate::partition::{ibp_partition, IbpOptions};
use gapart_graph::partitioner::{PartitionReport, Partitioner, PartitionerError};
use gapart_graph::CsrGraph;

/// The paper's appendix IBP as a [`Partitioner`].
///
/// IBP is fully determined by vertex coordinates — it has no internal
/// randomness — so the trait's `seed` argument is ignored. Graphs without
/// coordinates are rejected with a [`PartitionerError`].
#[derive(Debug, Clone, Default)]
pub struct IbpPartitioner {
    /// Indexing scheme and grid resolution.
    pub options: IbpOptions,
}

impl Partitioner for IbpPartitioner {
    fn name(&self) -> &'static str {
        "ibp"
    }

    fn partition(
        &self,
        graph: &CsrGraph,
        num_parts: u32,
        _seed: u64,
    ) -> Result<PartitionReport, PartitionerError> {
        let p = ibp_partition(graph, num_parts, &self.options).map_err(PartitionerError::new)?;
        Ok(PartitionReport::new(self.name(), graph, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapart_graph::generators::{gnp, jittered_mesh};

    #[test]
    fn seed_is_irrelevant_and_coordinates_required() {
        let g = jittered_mesh(60, 9);
        let p = IbpPartitioner::default();
        let a = p.partition(&g, 4, 1).unwrap();
        let b = p.partition(&g, 4, 2).unwrap();
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.algorithm, "ibp");

        let no_coords = gnp(30, 0.2, 1);
        assert!(p.partition(&no_coords, 4, 0).is_err());
    }
}
