//! Index-Based Partitioning — the paper's appendix algorithm (Ou, Ranka &
//! Fox).
//!
//! IBP has three phases: **indexing** (map each vertex's N-dimensional
//! coordinate to a one-dimensional index that preserves spatial
//! proximity), **sorting** (order vertices by index), and **coloring**
//! (cut the sorted list into `P` equal sublists). The paper uses it to
//! seed the GA population for Table 1.
//!
//! * [`interleave`] — bit interleaving, including the generalized
//!   unequal-width scheme worked through in the appendix.
//! * [`index`] — row-major, shuffled row-major (Morton / Z-order), and
//!   Hilbert indexing of grid coordinates, plus the exact 8×8 matrices of
//!   the paper's Figure 1.
//! * [`partition`] — the full pipeline from a coordinate-carrying graph to
//!   a [`gapart_graph::Partition`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod interleave;
pub mod partition;
pub mod partitioner_impl;

pub use index::{figure1_row_major, figure1_shuffled, IndexScheme};
pub use partition::{ibp_partition, IbpOptions};
pub use partitioner_impl::IbpPartitioner;
