//! Bit interleaving, equal- and unequal-width.
//!
//! The appendix describes interleaving "by choosing bits (right to left)
//! of each of the dimensions one by one, starting from dimension 3. When
//! the bits of a particular dimension are no longer available, that
//! dimension is not considered." Both worked examples from the appendix
//! are unit tests below.

/// One dimension's contribution: `(value, bit_width)`. Bits above
/// `bit_width` must be zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dim {
    /// The index value along this dimension.
    pub value: u64,
    /// Number of significant bits.
    pub bits: u32,
}

impl Dim {
    /// Creates a dimension, checking that `value` fits in `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `value >= 2^bits` or if `bits > 63`.
    pub fn new(value: u64, bits: u32) -> Self {
        assert!(bits <= 63, "at most 63 bits per dimension");
        assert!(
            bits == 64 || value < (1u64 << bits),
            "value {value} does not fit in {bits} bits"
        );
        Dim { value, bits }
    }
}

/// Interleaves the bits of `dims` exactly as the paper's appendix
/// specifies: bit position `k` of each dimension is consumed in round `k`,
/// visiting dimensions **last-first** within a round, and exhausted
/// dimensions drop out. The first bit consumed becomes the least
/// significant bit of the result.
///
/// For two equal-width dimensions `[row, col]` this is the Morton /
/// Z-order ("shuffled row-major") index with the column in the even bit
/// positions — matching the paper's Figure 1(b).
///
/// # Panics
///
/// Panics if the total bit count exceeds 64.
pub fn interleave(dims: &[Dim]) -> u64 {
    let total: u32 = dims.iter().map(|d| d.bits).sum();
    assert!(total <= 64, "interleaved index would exceed 64 bits");
    let mut out = 0u64;
    let mut out_pos = 0u32;
    let max_bits = dims.iter().map(|d| d.bits).max().unwrap_or(0);
    for k in 0..max_bits {
        // "starting from dimension 3": last dimension first.
        for d in dims.iter().rev() {
            if k < d.bits {
                let bit = (d.value >> k) & 1;
                out |= bit << out_pos;
                out_pos += 1;
            }
        }
    }
    out
}

/// Equal-width 2-D convenience: interleaves `(row, col)` with `bits` bits
/// each, column occupying the even (lower) positions — the paper's
/// shuffled row-major order.
pub fn interleave2(row: u32, col: u32, bits: u32) -> u64 {
    interleave(&[Dim::new(row as u64, bits), Dim::new(col as u64, bits)])
}

/// Inverse of [`interleave2`]: recovers `(row, col)` from a Morton index.
pub fn deinterleave2(index: u64, bits: u32) -> (u32, u32) {
    let mut row = 0u32;
    let mut col = 0u32;
    for k in 0..bits {
        col |= (((index >> (2 * k)) & 1) as u32) << k;
        row |= (((index >> (2 * k + 1)) & 1) as u32) << k;
    }
    (row, col)
}

/// Number of bits needed to represent every value in `0..n` (at least 1).
pub fn bits_for(n: u32) -> u32 {
    if n <= 1 {
        1
    } else {
        32 - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appendix_equal_width_example() {
        // index1 = 001, index2 = 010, index3 = 110 → 001011100.
        let r = interleave(&[Dim::new(0b001, 3), Dim::new(0b010, 3), Dim::new(0b110, 3)]);
        assert_eq!(r, 0b001011100, "got {r:b}");
    }

    #[test]
    fn appendix_unequal_width_example() {
        // index1 = 101, index2 = 01, index3 = 0 → 100110.
        let r = interleave(&[Dim::new(0b101, 3), Dim::new(0b01, 2), Dim::new(0b0, 1)]);
        assert_eq!(r, 0b100110, "got {r:b}");
    }

    #[test]
    fn single_dimension_is_identity() {
        assert_eq!(interleave(&[Dim::new(0b1011, 4)]), 0b1011);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(interleave(&[]), 0);
    }

    #[test]
    fn morton_2d_matches_figure1_corner_cases() {
        // Figure 1(b): (r=0,c=1) → 1, (r=1,c=0) → 2, (r=1,c=1) → 3,
        // (r=0,c=2) → 4, (r=2,c=0) → 8, (r=0,c=4) → 16, (r=4,c=0) → 32.
        assert_eq!(interleave2(0, 1, 3), 1);
        assert_eq!(interleave2(1, 0, 3), 2);
        assert_eq!(interleave2(1, 1, 3), 3);
        assert_eq!(interleave2(0, 2, 3), 4);
        assert_eq!(interleave2(2, 0, 3), 8);
        assert_eq!(interleave2(0, 4, 3), 16);
        assert_eq!(interleave2(4, 0, 3), 32);
        assert_eq!(interleave2(7, 7, 3), 63);
    }

    #[test]
    fn morton_round_trip() {
        for row in 0..16u32 {
            for col in 0..16u32 {
                let idx = interleave2(row, col, 4);
                assert_eq!(deinterleave2(idx, 4), (row, col));
            }
        }
    }

    #[test]
    fn morton_is_a_bijection_on_the_grid() {
        let mut seen = [false; 64];
        for r in 0..8 {
            for c in 0..8 {
                let i = interleave2(r, c, 3) as usize;
                assert!(!seen[i], "index {i} repeated");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bits_for_covers_range() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(8), 3);
        assert_eq!(bits_for(9), 4);
        assert_eq!(bits_for(1024), 10);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn dim_rejects_overflow() {
        Dim::new(8, 3);
    }

    #[test]
    fn unequal_widths_remain_bijective() {
        // 8 x 4 grid: 3 + 2 bits.
        let mut seen = std::collections::HashSet::new();
        for r in 0..8u64 {
            for c in 0..4u64 {
                let idx = interleave(&[Dim::new(r, 3), Dim::new(c, 2)]);
                assert!(seen.insert(idx), "collision at ({r},{c})");
            }
        }
        assert_eq!(seen.len(), 32);
    }
}
