//! Spatial indexing schemes for grid coordinates.

use crate::interleave::{bits_for, interleave2};

/// The indexing schemes supported by the partitioner. Row-major and
/// shuffled row-major are the two the paper illustrates (Figure 1);
/// Hilbert is the natural extension with strictly better locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexScheme {
    /// `index = row * cols + col` — Figure 1(a).
    RowMajor,
    /// Bit-interleaved Morton / Z-order — Figure 1(b).
    ShuffledRowMajor,
    /// Hilbert space-filling curve (extension; not in the paper's figure).
    Hilbert,
}

impl IndexScheme {
    /// Index of cell `(row, col)` on a `side × side` grid (`side` need not
    /// be a power of two; it is rounded up internally for the bitwise
    /// schemes).
    pub fn index(&self, row: u32, col: u32, side: u32) -> u64 {
        assert!(row < side && col < side, "cell out of range");
        match self {
            IndexScheme::RowMajor => row as u64 * side as u64 + col as u64,
            IndexScheme::ShuffledRowMajor => {
                let bits = bits_for(side);
                interleave2(row, col, bits)
            }
            IndexScheme::Hilbert => {
                let bits = bits_for(side);
                hilbert_d(row, col, bits)
            }
        }
    }

    /// All schemes, for sweeps and tests.
    pub const ALL: [IndexScheme; 3] = [
        IndexScheme::RowMajor,
        IndexScheme::ShuffledRowMajor,
        IndexScheme::Hilbert,
    ];
}

impl std::fmt::Display for IndexScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexScheme::RowMajor => write!(f, "row-major"),
            IndexScheme::ShuffledRowMajor => write!(f, "shuffled row-major"),
            IndexScheme::Hilbert => write!(f, "hilbert"),
        }
    }
}

/// Distance along the Hilbert curve of order `bits` for cell `(row, col)`.
/// Classic iterative rotation algorithm.
pub fn hilbert_d(row: u32, col: u32, bits: u32) -> u64 {
    let (mut x, mut y) = (col as u64, row as u64);
    let mut rx: u64;
    let mut ry: u64;
    let mut d: u64 = 0;
    let mut s: u64 = 1u64 << (bits - 1);
    while s > 0 {
        rx = u64::from((x & s) > 0);
        ry = u64::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate quadrant.
        if ry == 0 {
            if rx == 1 {
                x = s.wrapping_sub(1).wrapping_sub(x);
                y = s.wrapping_sub(1).wrapping_sub(y);
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// The paper's Figure 1(a): row-major indices of an 8×8 grid, row by row.
pub fn figure1_row_major() -> [[u64; 8]; 8] {
    let mut m = [[0u64; 8]; 8];
    for (r, rowv) in m.iter_mut().enumerate() {
        for (c, cell) in rowv.iter_mut().enumerate() {
            *cell = IndexScheme::RowMajor.index(r as u32, c as u32, 8);
        }
    }
    m
}

/// The paper's Figure 1(b): shuffled row-major indices of an 8×8 grid.
pub fn figure1_shuffled() -> [[u64; 8]; 8] {
    let mut m = [[0u64; 8]; 8];
    for (r, rowv) in m.iter_mut().enumerate() {
        for (c, cell) in rowv.iter_mut().enumerate() {
            *cell = IndexScheme::ShuffledRowMajor.index(r as u32, c as u32, 8);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1a_matches_paper_exactly() {
        let expect: [[u64; 8]; 8] = [
            [0, 1, 2, 3, 4, 5, 6, 7],
            [8, 9, 10, 11, 12, 13, 14, 15],
            [16, 17, 18, 19, 20, 21, 22, 23],
            [24, 25, 26, 27, 28, 29, 30, 31],
            [32, 33, 34, 35, 36, 37, 38, 39],
            [40, 41, 42, 43, 44, 45, 46, 47],
            [48, 49, 50, 51, 52, 53, 54, 55],
            [56, 57, 58, 59, 60, 61, 62, 63],
        ];
        assert_eq!(figure1_row_major(), expect);
    }

    #[test]
    fn figure1b_matches_paper_exactly() {
        // Transcribed from the paper's Figure 1(b).
        let expect: [[u64; 8]; 8] = [
            [0, 1, 4, 5, 16, 17, 20, 21],
            [2, 3, 6, 7, 18, 19, 22, 23],
            [8, 9, 12, 13, 24, 25, 28, 29],
            [10, 11, 14, 15, 26, 27, 30, 31],
            [32, 33, 36, 37, 48, 49, 52, 53],
            [34, 35, 38, 39, 50, 51, 54, 55],
            [40, 41, 44, 45, 56, 57, 60, 61],
            [42, 43, 46, 47, 58, 59, 62, 63],
        ];
        assert_eq!(figure1_shuffled(), expect);
    }

    #[test]
    fn hilbert_is_a_bijection() {
        let mut seen = [false; 64];
        for r in 0..8 {
            for c in 0..8 {
                let d = hilbert_d(r, c, 3) as usize;
                assert!(d < 64);
                assert!(!seen[d], "distance {d} repeated");
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hilbert_consecutive_cells_are_adjacent() {
        // The defining property of the Hilbert curve: consecutive indices
        // are unit-distance apart on the grid.
        let bits = 4;
        let side = 1u32 << bits;
        let mut by_d: Vec<(u32, u32)> = vec![(0, 0); (side * side) as usize];
        for r in 0..side {
            for c in 0..side {
                by_d[hilbert_d(r, c, bits) as usize] = (r, c);
            }
        }
        for w in by_d.windows(2) {
            let (r0, c0) = w[0];
            let (r1, c1) = w[1];
            let dist = r0.abs_diff(r1) + c0.abs_diff(c1);
            assert_eq!(dist, 1, "cells {:?} -> {:?} not adjacent", w[0], w[1]);
        }
    }

    #[test]
    fn non_power_of_two_sides_still_injective() {
        for scheme in IndexScheme::ALL {
            let mut seen = std::collections::HashSet::new();
            for r in 0..6u32 {
                for c in 0..6u32 {
                    assert!(
                        seen.insert(scheme.index(r, c, 6)),
                        "{scheme} collided at ({r},{c})"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "cell out of range")]
    fn rejects_out_of_range_cell() {
        IndexScheme::RowMajor.index(8, 0, 8);
    }

    #[test]
    fn display_names() {
        assert_eq!(IndexScheme::RowMajor.to_string(), "row-major");
        assert_eq!(IndexScheme::Hilbert.to_string(), "hilbert");
    }
}
