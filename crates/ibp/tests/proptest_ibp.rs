//! Property-based tests for index-based partitioning.

use gapart_graph::generators::jittered_mesh;
use gapart_graph::partition::cut_size;
use gapart_graph::Partition;
use gapart_ibp::index::{hilbert_d, IndexScheme};
use gapart_ibp::interleave::{bits_for, deinterleave2, interleave, interleave2, Dim};
use gapart_ibp::{ibp_partition, IbpOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interleaving is injective for any dimension widths: distinct
    /// coordinate tuples give distinct indices.
    #[test]
    fn interleave_injective(
        bits1 in 1u32..6,
        bits2 in 1u32..6,
        bits3 in 1u32..6,
    ) {
        let mut seen = std::collections::HashSet::new();
        for v1 in 0..(1u64 << bits1) {
            for v2 in 0..(1u64 << bits2) {
                for v3 in 0..(1u64 << bits3) {
                    let idx = interleave(&[
                        Dim::new(v1, bits1),
                        Dim::new(v2, bits2),
                        Dim::new(v3, bits3),
                    ]);
                    prop_assert!(seen.insert(idx), "collision at ({v1},{v2},{v3})");
                }
            }
        }
    }

    /// Interleaved index fits in the sum of the widths.
    #[test]
    fn interleave_bit_budget(
        v1 in 0u64..32, v2 in 0u64..8, v3 in 0u64..4,
    ) {
        let idx = interleave(&[Dim::new(v1, 5), Dim::new(v2, 3), Dim::new(v3, 2)]);
        prop_assert!(idx < (1u64 << 10));
    }

    /// Morton round trip for arbitrary coordinates and widths.
    #[test]
    fn morton_round_trip(row in 0u32..4096, col in 0u32..4096) {
        let bits = bits_for(4096);
        let idx = interleave2(row, col, bits);
        prop_assert_eq!(deinterleave2(idx, bits), (row, col));
    }

    /// Morton order preserves quadrant nesting: indices of one quadrant
    /// of a 2^b grid form a contiguous range.
    #[test]
    fn morton_quadrants_contiguous(bits in 1u32..6) {
        let side = 1u32 << bits;
        let half = side / 2;
        if half == 0 {
            return Ok(());
        }
        let quarter = (side as u64 * side as u64) / 4;
        // Top-left quadrant (rows < half, cols < half) = indices [0, q).
        for r in 0..half {
            for c in 0..half {
                let idx = interleave2(r, c, bits);
                prop_assert!(idx < quarter, "({r},{c}) -> {idx} >= {quarter}");
            }
        }
    }

    /// Hilbert distance is a bijection on any power-of-two grid, and
    /// consecutive distances are grid-adjacent.
    #[test]
    fn hilbert_bijective_and_continuous(bits in 1u32..6) {
        let side = 1u32 << bits;
        let total = (side as u64) * (side as u64);
        let mut by_d = vec![None; total as usize];
        for r in 0..side {
            for c in 0..side {
                let d = hilbert_d(r, c, bits);
                prop_assert!(d < total);
                prop_assert!(by_d[d as usize].is_none());
                by_d[d as usize] = Some((r, c));
            }
        }
        for w in by_d.windows(2) {
            let (r0, c0) = w[0].unwrap();
            let (r1, c1) = w[1].unwrap();
            prop_assert_eq!(r0.abs_diff(r1) + c0.abs_diff(c1), 1);
        }
    }

    /// IBP balance invariant and determinism on arbitrary meshes, all
    /// schemes.
    #[test]
    fn ibp_balanced_and_deterministic(
        n in 4usize..250,
        parts in 2u32..9,
        seed in any::<u64>(),
        scheme_idx in 0usize..3,
    ) {
        prop_assume!(parts as usize <= n);
        let g = jittered_mesh(n, seed);
        let opts = IbpOptions {
            scheme: IndexScheme::ALL[scheme_idx],
            resolution: 256,
        };
        let p1 = ibp_partition(&g, parts, &opts).unwrap();
        let p2 = ibp_partition(&g, parts, &opts).unwrap();
        prop_assert_eq!(&p1, &p2);
        let sizes = p1.part_sizes();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1);
    }

    /// Locality schemes (Morton, Hilbert) never do worse than a random
    /// shuffle of the same part sizes — the entire point of indexing.
    #[test]
    fn spatial_indexing_beats_random_assignment(
        n in 40usize..200,
        seed in any::<u64>(),
    ) {
        let g = jittered_mesh(n, seed);
        let parts = 4u32;
        let opts = IbpOptions { scheme: IndexScheme::Hilbert, resolution: 512 };
        let ibp = ibp_partition(&g, parts, &opts).unwrap();
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xabc);
        let mut shuffled = ibp.labels().to_vec();
        shuffled.shuffle(&mut rng);
        let random = Partition::new(shuffled, parts).unwrap();
        prop_assert!(cut_size(&g, &ibp) <= cut_size(&g, &random),
            "Hilbert IBP lost to a random shuffle");
    }

    /// bits_for always covers the requested range with the minimum width.
    #[test]
    fn bits_for_is_minimal_cover(n in 1u32..100_000) {
        let b = bits_for(n);
        prop_assert!((1u64 << b) >= n as u64);
        if n > 2 {
            prop_assert!((1u64 << (b - 1)) < n as u64);
        }
    }
}
