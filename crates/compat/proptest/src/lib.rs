//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network registry, so the workspace vendors
//! a generate-only property-testing harness with the subset of proptest's
//! API its tests use: the [`proptest!`] macro (with
//! `#![proptest_config(..)]`), range / tuple / [`Just`] / [`any`] /
//! [`collection::vec`] strategies, the `prop_flat_map` / `prop_filter` /
//! `prop_map` combinators, and the `prop_assert!` family.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its seed and message but is
//!   not minimized.
//! * **Fixed derivation** — each test function derives its RNG seed from
//!   its own name (FNV-1a), so runs are reproducible without a persistence
//!   file. Set `PROPTEST_SEED` to explore a different universe.
//! * Rejections (via [`prop_assume!`] or `prop_filter`) retry up to 16×
//!   the configured case count before the harness panics as exhausted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Why a generated case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected (`prop_assume!` / `prop_filter`); try another.
    Reject,
    /// A `prop_assert!` failed with this message.
    Fail(String),
}

/// Result type threaded through a generated test body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Harness configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Builds the deterministic RNG for a named test (FNV-1a over the name,
/// XORed with `PROPTEST_SEED` when set).
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    if let Ok(extra) = std::env::var("PROPTEST_SEED") {
        if let Ok(x) = extra.parse::<u64>() {
            h ^= x;
        }
    }
    StdRng::seed_from_u64(h)
}

/// A value generator (subset of `proptest::strategy::Strategy`).
///
/// Upstream strategies produce value *trees* that support shrinking; this
/// shim generates final values directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value, or rejects the attempt (filters).
    fn generate(&self, rng: &mut StdRng) -> Result<Self::Value, TestCaseError>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `pred`. The `reason` matches
    /// upstream's signature; the shim reports it only on exhaustion.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> Result<O, TestCaseError> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> Result<S2::Value, TestCaseError> {
        let outer = self.inner.generate(rng)?;
        (self.f)(outer).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Result<S::Value, TestCaseError> {
        // Local retries keep whole-case rejections rare; after that the
        // harness-level retry budget takes over.
        for _ in 0..8 {
            let v = self.inner.generate(rng)?;
            if (self.pred)(&v) {
                return Ok(v);
            }
        }
        let _ = self.reason;
        Err(TestCaseError::Reject)
    }
}

/// Strategy producing exactly its value (upstream `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> Result<T, TestCaseError> {
        Ok(self.0.clone())
    }
}

/// Types with a canonical whole-domain strategy (upstream
/// `proptest::arbitrary::Arbitrary`, reduced to primitives).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite values only: arbitrary bit patterns produce NaNs that
        // almost no numeric property intends to cover.
        rng.gen_range(-1e9..1e9)
    }
}

/// Whole-domain strategy for `T` (upstream `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> Result<T, TestCaseError> {
        Ok(T::arbitrary(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> Result<$t, TestCaseError> {
                Ok(rng.gen_range(self.clone()))
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> Result<$t, TestCaseError> {
                Ok(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Result<Self::Value, TestCaseError> {
                let ($($name,)+) = self;
                Ok(($($name.generate(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions compare equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?} == {:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Asserts two expressions compare unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?} != {:?}`", __l, __r);
    }};
}

/// Rejects the current case (it does not count toward the target) when
/// the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests (subset of upstream `proptest!`): an optional
/// `#![proptest_config(..)]` header followed by `#[test]` functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for(stringify!($name));
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(16).max(64);
            while __passed < __config.cases {
                if __attempts >= __max_attempts {
                    panic!(
                        "proptest '{}': too many rejections ({} attempts for {} cases)",
                        stringify!($name),
                        __attempts,
                        __passed
                    );
                }
                __attempts += 1;
                let __outcome: $crate::TestCaseResult = (|| {
                    $(
                        let $pat = match $crate::Strategy::generate(&($strat), &mut __rng) {
                            ::core::result::Result::Ok(v) => v,
                            ::core::result::Result::Err(e) => {
                                return ::core::result::Result::Err(e)
                            }
                        };
                    )+
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __passed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}",
                            stringify!($name),
                            __passed,
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_any(pair in (any::<u32>(), 0u32..5), s in any::<u64>()) {
            prop_assert!(pair.1 < 5);
            prop_assert_eq!(s, s);
        }

        #[test]
        fn vec_strategy_sizes((n, v) in (1usize..20).prop_flat_map(|n| {
            (crate::Just(n), crate::collection::vec(0u32..9, n..=n))
        })) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < 9));
        }

        #[test]
        fn filter_rejects(x in (0u32..100).prop_filter("even only", |x| x % 2 == 0)) {
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn map_combinator(e in evens()) {
            prop_assert!(e % 2 == 0);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x > 0);
            prop_assert!(x >= 1);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::Rng;
        let mut a = crate::rng_for("some_test");
        let mut b = crate::rng_for("some_test");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
