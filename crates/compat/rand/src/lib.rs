//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network registry, so the workspace vendors
//! the *exact subset* of the `rand` 0.8 API the partitioners use:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator (not the
//!   upstream ChaCha12; sequences differ from crates.io `rand`, but every
//!   consumer in this workspace only relies on *determinism under seed*,
//!   which this shim guarantees).
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 seed expansion, as
//!   upstream documents.
//! * [`Rng::gen_range`] over integer and float ranges, [`Rng::gen`] for
//!   `f64`/`f32`/`bool`/`u32`/`u64`/`usize`, and [`Rng::gen_bool`].
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates) and
//!   [`seq::SliceRandom::choose`].
//!
//! Anything outside this subset is intentionally absent; add it here (with
//! tests) rather than pulling a registry dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A type that can be constructed from a seed, deterministically.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    /// Identical seeds always produce identical streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — used for seed expansion and decorrelation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The user-facing random-value interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty, matching upstream behaviour.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Samples a value of `T` from its standard distribution
    /// (`[0, 1)` for floats, uniform for integers, fair coin for `bool`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} not in [0,1]");
        f64_from_bits(self.next_u64()) < p
    }
}

/// Converts 64 random bits to a `f64` in `[0, 1)` with 53 bits of
/// precision (the standard `rand` construction).
#[inline]
fn f64_from_bits(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, span)` by widening multiply
/// rejection (Lemire's method).
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let low = m as u64;
        if low >= span && low < span.wrapping_neg() {
            // Fast path: no bias possible for this draw.
            return (m >> 64) as u64;
        }
        // `low < span` may be biased only when `span` does not divide
        // 2^64; reject draws below the threshold.
        let threshold = span.wrapping_neg() % span;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = f64_from_bits(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * unit;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = f64_from_bits(rng.next_u64()) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Standard-distribution sampling (subset of
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        f64_from_bits(rng.next_u64())
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        f64_from_bits(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    ///
    /// Not the upstream `StdRng` algorithm — sequences differ from
    /// crates.io `rand` — but it passes BigCrush, is fast, and is fully
    /// reproducible from [`SeedableRng::seed_from_u64`], which is all the
    /// workspace requires.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // The all-zero state is the one forbidden fixpoint.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the shim's small generator is the same xoshiro256++.
    pub type SmallRng = StdRng;
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random operations on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0..1);
            assert_eq!(y, 0);
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn standard_samples_are_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation_and_choose_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
