//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network registry, so the workspace vendors
//! a minimal data-parallel runtime with the subset of rayon's API the
//! partitioners use:
//!
//! * `par_iter()` / `par_iter_mut()` / `into_par_iter()` on slices and
//!   `Vec<T>`, with `map(..).collect()` and `for_each(..)`.
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] to bound worker
//!   counts (the speedup experiment sweeps pool sizes).
//! * [`current_num_threads`].
//!
//! Unlike real rayon there is no work stealing: each driving call chunks
//! its items evenly across `current_num_threads()` scoped threads. Two
//! properties the workspace depends on are guaranteed:
//!
//! 1. **Index-order reduction** — `map(..).collect()` returns results in
//!    the input order, so a parallel map is bit-identical to its
//!    sequential counterpart whenever the mapped function is pure.
//! 2. **No nested oversubscription** — a parallel region entered from
//!    inside a worker thread runs sequentially inline (rayon would steal;
//!    we simply degrade), so DPGA's islands-in-parallel does not multiply
//!    threads with the engine's parallel fitness evaluation.

#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global default thread count; 0 = fall through to `RAYON_NUM_THREADS`
/// and then `std::thread::available_parallelism`.
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Cached `RAYON_NUM_THREADS` (honoured like real rayon for the ambient
/// default; 0 = unset/unparsable = auto). Read once — the CI
/// determinism matrix relies on it to vary the ambient pool per leg.
static ENV_THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();

fn env_threads() -> usize {
    *ENV_THREADS
        .get_or_init(|| parse_env_threads(std::env::var("RAYON_NUM_THREADS").ok().as_deref()))
}

/// Pure parser behind [`env_threads`]: unset or non-numeric means auto.
fn parse_env_threads(value: Option<&str>) -> usize {
    value.and_then(|s| s.trim().parse().ok()).unwrap_or(0)
}

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]; 0 = none.
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
    /// Set inside shim worker threads to suppress nested parallelism.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads a parallel call issued here would use.
pub fn current_num_threads() -> usize {
    let n = POOL_THREADS.with(Cell::get);
    if n > 0 {
        return n;
    }
    let n = DEFAULT_THREADS.load(Ordering::Relaxed);
    if n > 0 {
        return n;
    }
    let n = env_threads();
    if n > 0 {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Error type returned by [`ThreadPoolBuilder::build`]. The shim cannot
/// actually fail to build; the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default (auto) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count (0 = auto).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }

    /// Installs this configuration as the global default.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        DEFAULT_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// A scoped thread-count configuration (the shim spawns threads per
/// parallel call rather than keeping a resident pool).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count in effect.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = POOL_THREADS.with(|c| c.replace(self.num_threads));
        let result = op();
        POOL_THREADS.with(|c| c.set(previous));
        result
    }

    /// The pool's configured thread count (resolving 0 = auto).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Worker count for a batch: capped so no thread gets fewer than
/// `min_len` items — spawning a scoped thread costs tens of
/// microseconds, so tiny batches run inline instead.
fn effective_threads(num_items: usize, min_len: usize) -> usize {
    let threads = current_num_threads();
    let nested = IN_WORKER.with(Cell::get);
    if nested {
        return 1;
    }
    threads.min(num_items / min_len.max(1)).max(1)
}

fn join_unwinding<R>(handle: std::thread::ScopedJoinHandle<'_, R>) -> R {
    match handle.join() {
        Ok(v) => v,
        // Propagate the worker's original panic payload, as rayon does.
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Runs `f` over `items`, in parallel when worthwhile, preserving input
/// order in the returned vector.
fn drive<T: Send, R: Send>(items: Vec<T>, min_len: usize, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let threads = effective_threads(items.len(), min_len);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let mut results: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    c.into_iter().map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            results.push(join_unwinding(h));
        }
    });
    results.into_iter().flatten().collect()
}

/// Like [`drive`] but threading per-worker state: `init` runs once per
/// worker chunk (once total on the sequential path) and `f` receives
/// `&mut` access to it — the shim's `map_init`, for amortizing scratch
/// allocations across a chunk.
fn drive_init<T, R, S, INIT, F>(items: Vec<T>, min_len: usize, init: &INIT, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let threads = effective_threads(items.len(), min_len);
    if threads <= 1 {
        let mut state = init();
        return items.into_iter().map(|t| f(&mut state, t)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let mut results: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    let mut state = init();
                    c.into_iter().map(|t| f(&mut state, t)).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            results.push(join_unwinding(h));
        }
    });
    results.into_iter().flatten().collect()
}

/// A materialized parallel iterator: items are collected up front and
/// chunked across worker threads when driven.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
    min_len: usize,
}

impl<T: Send> ParIter<T> {
    /// Guarantees each worker at least `min_len` items (rayon's
    /// `with_min_len`): batches smaller than `2 × min_len` run inline,
    /// so callers with cheap per-item work avoid paying thread-spawn
    /// overhead. Purely a scheduling hint — results are identical.
    #[must_use]
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Pairs every item with its index (rayon's
    /// `IndexedParallelIterator::enumerate`). Items are materialized in
    /// input order, so the indices are exact regardless of how chunks
    /// land on workers.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
            min_len: self.min_len,
        }
    }

    /// Parallel map. Lazy: runs when the result is driven.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, R, F> {
        ParMap {
            items: self.items,
            min_len: self.min_len,
            f,
            _out: std::marker::PhantomData,
        }
    }

    /// Parallel map with per-worker state (subset of rayon's
    /// `map_init`): `init` runs once per worker, `f` gets `&mut` access
    /// to the state for every item that worker processes. Use it to
    /// amortize scratch-buffer allocations across a chunk.
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParMapInit<T, S, R, INIT, F>
    where
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
    {
        ParMapInit {
            items: self.items,
            min_len: self.min_len,
            init,
            f,
            _out: std::marker::PhantomData,
        }
    }

    /// Applies `f` to every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        drive(self.items, self.min_len, &f);
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Lazy parallel map adapter produced by [`ParIter::map`].
pub struct ParMap<T, R, F> {
    items: Vec<T>,
    min_len: usize,
    f: F,
    _out: std::marker::PhantomData<fn() -> R>,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, R, F> {
    /// Drives the map and collects results **in input order**.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        drive(self.items, self.min_len, &self.f)
            .into_iter()
            .collect()
    }

    /// Drives the map, discarding results.
    pub fn for_each<G: Fn(R) + Sync>(self, g: G) {
        let f = self.f;
        let min_len = self.min_len;
        drive(self.items, min_len, &move |t| g(f(t)));
    }
}

/// Lazy stateful map adapter produced by [`ParIter::map_init`].
pub struct ParMapInit<T, S, R, INIT, F> {
    items: Vec<T>,
    min_len: usize,
    init: INIT,
    f: F,
    _out: std::marker::PhantomData<fn() -> (S, R)>,
}

impl<T, S, R, INIT, F> ParMapInit<T, S, R, INIT, F>
where
    T: Send,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    /// Drives the map and collects results **in input order**.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        drive_init(self.items, self.min_len, &self.init, &self.f)
            .into_iter()
            .collect()
    }
}

/// Conversion into a [`ParIter`] by value (subset of
/// `rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self,
            min_len: 1,
        }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
            min_len: 1,
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u32> {
    type Item = u32;

    fn into_par_iter(self) -> ParIter<u32> {
        ParIter {
            items: self.collect(),
            min_len: 1,
        }
    }
}

/// `par_iter()` on shared slices (subset of
/// `rayon::iter::IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;

    /// Parallel iterator over `&self`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
            min_len: 1,
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
            min_len: 1,
        }
    }
}

/// `par_iter_mut()` on exclusive slices (subset of
/// `rayon::iter::IntoParallelRefMutIterator`).
pub trait IntoParallelRefMutIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;

    /// Parallel iterator over `&mut self`.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
            min_len: 1,
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;

    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
            min_len: 1,
        }
    }
}

/// `par_chunks()` on slices (subset of `rayon::slice::ParallelSlice`).
///
/// Yields non-overlapping sub-slices of length `chunk_size` (the last
/// chunk may be shorter), in order. The usual shape for cheap per-item
/// work over a large flat array: one closure call per chunk instead of
/// per item, with results still reduced in input order.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `chunk_size`-sized sub-slices of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
            min_len: 1,
        }
    }
}

/// `par_chunks_mut()` on slices (subset of
/// `rayon::slice::ParallelSliceMut`).
///
/// Yields non-overlapping `&mut` sub-slices of length `chunk_size` (the
/// last chunk may be shorter), in order — the zero-allocation shape for
/// filling a pre-sized output buffer in place from worker threads
/// (combine with [`ParIter::enumerate`] to recover each chunk's offset).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `chunk_size`-sized `&mut` sub-slices.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
            min_len: 1,
        }
    }
}

/// Glob-import module mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn env_threads_parser_handles_unset_garbage_and_numbers() {
        // The cached reader can't be exercised repeatably in-process
        // (OnceLock + process env), so the pure parser is pinned
        // instead; the CI determinism matrix exercises the wiring.
        assert_eq!(parse_env_threads(None), 0);
        assert_eq!(parse_env_threads(Some("")), 0);
        assert_eq!(parse_env_threads(Some("banana")), 0);
        assert_eq!(parse_env_threads(Some("-3")), 0);
        assert_eq!(parse_env_threads(Some("0")), 0);
        assert_eq!(parse_env_threads(Some("4")), 4);
        assert_eq!(parse_env_threads(Some(" 8 ")), 8);
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_mut_touches_every_item() {
        let mut v = vec![0u32; 5000];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn par_iter_reads_in_parallel() {
        let v: Vec<u64> = (0..1000).collect();
        let sum: u64 = v.par_iter().map(|&x| x).collect::<Vec<u64>>().iter().sum();
        assert_eq!(sum, 999 * 1000 / 2);
    }

    #[test]
    fn pool_install_bounds_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        assert_eq!(pool.current_num_threads(), 2);
        pool.install(|| assert_eq!(current_num_threads(), 2));
    }

    #[test]
    fn nested_parallelism_degrades_to_sequential() {
        let outer: Vec<usize> = (0..4).collect();
        let sums: Vec<usize> = outer
            .into_par_iter()
            .map(|i| {
                let inner: Vec<usize> = (0..100).collect();
                inner
                    .into_par_iter()
                    .map(|j| i + j)
                    .collect::<Vec<_>>()
                    .len()
            })
            .collect();
        assert_eq!(sums, vec![100; 4]);
    }

    #[test]
    fn map_init_amortizes_state_and_preserves_order() {
        use std::sync::atomic::AtomicUsize;
        static INITS: AtomicUsize = AtomicUsize::new(0);
        let v: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = v
            .into_par_iter()
            .map_init(
                || {
                    INITS.fetch_add(1, Ordering::Relaxed);
                    Vec::<u64>::with_capacity(8)
                },
                |scratch, x| {
                    scratch.clear();
                    scratch.push(x);
                    scratch[0] * 2
                },
            )
            .collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
        // One init per worker chunk (or one total when sequential) —
        // not one per item.
        assert!(INITS.load(Ordering::Relaxed) <= current_num_threads().max(1) + 1);
    }

    #[test]
    fn par_chunks_covers_everything_in_order() {
        let v: Vec<u32> = (0..10_001).collect();
        let chunks: Vec<Vec<u32>> = v
            .par_chunks(64)
            .map(|c| c.iter().map(|&x| x * 2).collect::<Vec<_>>())
            .collect();
        // Chunk shapes: all 64 except a final remainder of 10_001 % 64.
        assert_eq!(chunks.len(), 10_001usize.div_ceil(64));
        assert!(chunks[..chunks.len() - 1].iter().all(|c| c.len() == 64));
        assert_eq!(chunks.last().unwrap().len(), 10_001 % 64);
        // Flattening restores input order — the determinism contract.
        let flat: Vec<u32> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, (0..10_001).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_matches_under_any_pool_size() {
        let v: Vec<u64> = (0..5_000).collect();
        let reference: Vec<u64> = v.chunks(128).map(|c| c.iter().sum()).collect();
        for threads in [1usize, 2, 4, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let sums: Vec<u64> =
                pool.install(|| v.par_chunks(128).map(|c| c.iter().sum::<u64>()).collect());
            assert_eq!(sums, reference, "pool size {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn par_chunks_rejects_zero() {
        let v = [1u8, 2, 3];
        let _ = v.par_chunks(0);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..50usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[49], 49 * 49);
    }

    #[test]
    fn enumerate_indices_are_exact_in_input_order() {
        let v: Vec<u32> = (100..10_100).collect();
        let pairs: Vec<(usize, u32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(pairs.len(), 10_000);
        for (i, x) in pairs {
            assert_eq!(x as usize, 100 + i);
        }
    }

    #[test]
    fn par_chunks_mut_fills_a_buffer_in_place() {
        let mut out = vec![0u64; 10_001];
        out.par_chunks_mut(64).enumerate().for_each(|(ci, chunk)| {
            let base = ci * 64;
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = (base + j) as u64 * 3;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &x)| x == i as u64 * 3));
    }

    #[test]
    fn par_chunks_mut_matches_under_any_pool_size() {
        let mut reference = vec![0u32; 5_000];
        reference
            .par_chunks_mut(128)
            .enumerate()
            .for_each(|(ci, c)| c.iter_mut().for_each(|x| *x = ci as u32));
        for threads in [1usize, 2, 4, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let mut out = vec![0u32; 5_000];
            pool.install(|| {
                out.par_chunks_mut(128)
                    .enumerate()
                    .for_each(|(ci, c)| c.iter_mut().for_each(|x| *x = ci as u32))
            });
            assert_eq!(out, reference, "pool size {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn par_chunks_mut_rejects_zero() {
        let mut v = [1u8, 2, 3];
        let _ = v.par_chunks_mut(0);
    }
}
