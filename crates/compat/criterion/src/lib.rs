//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network registry, so the workspace vendors
//! a small wall-clock benchmarking harness behind criterion's API:
//! [`Criterion`], [`BenchmarkGroup`](struct@BenchmarkGroup), [`Bencher`]
//! (`iter` / `iter_batched`), [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (benches declare
//! `harness = false`, so `criterion_main!` provides `fn main`).
//!
//! Statistics are intentionally simple: each benchmark runs a calibration
//! pass, then enough iterations to fill `measurement_time`, and reports
//! min / mean / max per-iteration wall time to stdout. There are no
//! plots, baselines, or outlier analysis — reach for real criterion on a
//! networked machine when those matter.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle (subset of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the time budget spent measuring each benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget before measuring.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the target number of samples.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = self.clone();
        run_benchmark(&cfg, &id.to_string(), &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration (subset of
/// `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    fn effective(&self) -> Criterion {
        let mut cfg = self.criterion.clone();
        if let Some(n) = self.sample_size {
            cfg.sample_size = n;
        }
        cfg
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&self.effective(), &label, &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&self.effective(), &label, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Ends the group (stdout separator only in the shim).
    pub fn finish(self) {}
}

/// Benchmark identifier (subset of `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// How `iter_batched` amortizes setup (subset of `criterion::BatchSize`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state; setup runs once per iteration.
    SmallInput,
    /// Larger state; identical behaviour in the shim.
    LargeInput,
}

/// Timing driver handed to benchmark closures (subset of
/// `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark(cfg: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration: one iteration, to size the measured batches.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    f(&mut calib);
    while warm_start.elapsed() < cfg.warm_up_time {
        f(&mut calib);
    }
    let per_iter = calib.elapsed.max(Duration::from_nanos(1));
    let budget = cfg.measurement_time.as_secs_f64() / cfg.sample_size as f64;
    let iters = (budget / per_iter.as_secs_f64()).clamp(1.0, 1e6) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{label:<48} [{} {} {}]  ({} samples x {iters} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        samples.len(),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1}ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.1}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{secs:.2}s")
    }
}

/// Declares a benchmark group (both upstream forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main` (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1))
            .sample_size(3);
        let mut count = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        assert!(count > 0);
    }

    #[test]
    fn groups_and_batched_iteration() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter_batched(
                || vec![x; 16],
                |v| v.iter().sum::<u32>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
