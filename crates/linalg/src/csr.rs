//! Sparse symmetric matrices in compressed-sparse-row form.

/// A square sparse matrix in CSR form.
///
/// Construction via [`CsrMatrix::from_triplets`] symmetrizes nothing — the
/// caller supplies every nonzero explicitly (duplicate entries are summed).
/// Graph Laplacians, being symmetric, simply list both `(i, j)` and
/// `(j, i)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds an `n × n` matrix from `(row, col, value)` triplets.
    /// Duplicate positions are summed; explicit zeros are kept (harmless).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_triplets(n: usize, triplets: &[(u32, u32, f64)]) -> Self {
        let mut entries: Vec<(u32, u32, f64)> = triplets.to_vec();
        for &(r, c, _) in &entries {
            assert!((r as usize) < n && (c as usize) < n, "index out of range");
        }
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        entries.dedup_by(|cur, prev| {
            if cur.0 == prev.0 && cur.1 == prev.1 {
                prev.2 += cur.2;
                true
            } else {
                false
            }
        });
        let mut row_ptr = vec![0usize; n + 1];
        for &(r, _, _) in &entries {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = entries.iter().map(|&(_, c, _)| c).collect();
        let values = entries.iter().map(|&(_, _, v)| v).collect();
        CsrMatrix {
            n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Matrix dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `y ← A x`. Panics on dimension mismatch.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "matvec: x dimension mismatch");
        assert_eq!(y.len(), self.n, "matvec: y dimension mismatch");
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.n {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            y[i] = acc;
        }
    }

    /// Convenience allocating form of [`CsrMatrix::matvec`].
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.matvec(x, &mut y);
        y
    }

    /// Entry `(i, j)`, treating missing positions as zero.
    pub fn get(&self, i: u32, j: u32) -> f64 {
        let r = i as usize;
        let range = self.row_ptr[r]..self.row_ptr[r + 1];
        match self.col_idx[range.clone()].binary_search(&j) {
            Ok(k) => self.values[range.start + k],
            Err(_) => 0.0,
        }
    }

    /// Checks symmetry within `tol` (useful as a test/debug assertion for
    /// Laplacian assembly).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                if (self.values[k] - self.get(j, i as u32)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [2 -1 0; -1 2 -1; 0 -1 2]
        CsrMatrix::from_triplets(
            3,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 2.0),
            ],
        )
    }

    #[test]
    fn dims_and_nnz() {
        let a = small();
        assert_eq!(a.dim(), 3);
        assert_eq!(a.nnz(), 7);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = small();
        let y = a.apply(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn duplicates_sum() {
        let a = CsrMatrix::from_triplets(2, &[(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(a.get(0, 0), 3.5);
        assert_eq!(a.nnz(), 1);
    }

    #[test]
    fn get_missing_is_zero() {
        let a = small();
        assert_eq!(a.get(0, 2), 0.0);
    }

    #[test]
    fn symmetry_check() {
        assert!(small().is_symmetric(0.0));
        let asym = CsrMatrix::from_triplets(2, &[(0, 1, 1.0)]);
        assert!(!asym.is_symmetric(1e-12));
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn rejects_out_of_range() {
        CsrMatrix::from_triplets(2, &[(0, 2, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_rejects_bad_dims() {
        small().matvec(&[1.0], &mut [0.0; 3]);
    }
}
