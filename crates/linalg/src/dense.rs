//! Dense vector kernels used by the Lanczos iteration.

/// Dot product. Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y ← y + alpha * x`. Panics if lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← alpha * x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Normalizes `x` to unit length in place and returns the original norm.
/// Leaves `x` untouched (and returns 0) for the zero vector.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Removes from `v` its components along each (assumed orthonormal) vector
/// in `basis`: classical Gram–Schmidt, applied twice for numerical safety
/// ("twice is enough", Kahan–Parlett).
pub fn orthogonalize_against(v: &mut [f64], basis: &[Vec<f64>]) {
    for _ in 0..2 {
        for q in basis {
            let c = dot(v, q);
            axpy(-c, q, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![2.0, -4.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![1.0, -2.0]);
    }

    #[test]
    fn normalize_returns_old_norm() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm(&x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn orthogonalize_removes_components() {
        let q1 = vec![1.0, 0.0, 0.0];
        let q2 = vec![0.0, 1.0, 0.0];
        let mut v = vec![3.0, 4.0, 5.0];
        orthogonalize_against(&mut v, &[q1.clone(), q2.clone()]);
        assert!(dot(&v, &q1).abs() < 1e-14);
        assert!(dot(&v, &q2).abs() < 1e-14);
        assert!((v[2] - 5.0).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatched_lengths() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
