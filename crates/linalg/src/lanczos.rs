//! Lanczos iteration for the smallest eigenpairs of a symmetric operator.
//!
//! Full reorthogonalization (the graphs here are a few hundred to a few
//! thousand nodes, so robustness beats the memory cost) with optional
//! deflation: spectral bisection must project out the constant vector,
//! which spans the Laplacian's known null space on a connected graph.

use crate::csr::CsrMatrix;
use crate::dense::{axpy, dot, normalize, orthogonalize_against};
use crate::tridiag::{eigh_tridiagonal, TridiagError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs for [`lanczos_smallest`].
#[derive(Debug, Clone)]
pub struct LanczosOptions {
    /// Maximum Krylov subspace dimension (capped at the effective problem
    /// size automatically).
    pub max_iters: usize,
    /// Convergence tolerance on the Ritz residual estimate `|β_j s_{ji}|`.
    pub tol: f64,
    /// Seed for the random start vector.
    pub seed: u64,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            max_iters: 300,
            tol: 1e-8,
            seed: 0x4c41_4e43, // "LANC"
        }
    }
}

/// Outcome of a Lanczos run.
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// The `k` smallest Ritz values, ascending (fewer if the operator's
    /// effective dimension is smaller than `k`).
    pub eigenvalues: Vec<f64>,
    /// Unit Ritz vectors aligned with `eigenvalues`.
    pub eigenvectors: Vec<Vec<f64>>,
    /// Krylov dimension actually built.
    pub iterations: usize,
    /// Whether every requested pair met the residual tolerance.
    pub converged: bool,
}

/// Errors from the Lanczos driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LanczosError {
    /// The inner tridiagonal eigensolve failed.
    Tridiag(TridiagError),
    /// `n == 0` or `k == 0`.
    Degenerate,
}

impl std::fmt::Display for LanczosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LanczosError::Tridiag(e) => write!(f, "tridiagonal eigensolve failed: {e}"),
            LanczosError::Degenerate => write!(f, "empty problem (n == 0 or k == 0)"),
        }
    }
}

impl std::error::Error for LanczosError {}

impl From<TridiagError> for LanczosError {
    fn from(e: TridiagError) -> Self {
        LanczosError::Tridiag(e)
    }
}

/// Computes the `k` smallest eigenpairs of the symmetric operator `op`
/// (`op(x, y)` must set `y = A x`) of dimension `n`, restricted to the
/// orthogonal complement of `deflate` (which must be orthonormal).
///
/// Uses Lanczos with full reorthogonalization against both the Krylov
/// basis and the deflation vectors, restarting with fresh random
/// directions when the Krylov space goes invariant early.
pub fn lanczos_smallest<F>(
    op: F,
    n: usize,
    k: usize,
    deflate: &[Vec<f64>],
    opts: &LanczosOptions,
) -> Result<LanczosResult, LanczosError>
where
    F: Fn(&[f64], &mut [f64]),
{
    if n == 0 || k == 0 {
        return Err(LanczosError::Degenerate);
    }
    let effective_dim = n.saturating_sub(deflate.len());
    let want = k.min(effective_dim);
    if want == 0 {
        return Ok(LanczosResult {
            eigenvalues: Vec::new(),
            eigenvectors: Vec::new(),
            iterations: 0,
            converged: true,
        });
    }
    let max_dim = opts.max_iters.min(effective_dim).max(want);
    let mut rng = StdRng::seed_from_u64(opts.seed);

    let fresh_start = |rng: &mut StdRng, basis: &[Vec<f64>]| -> Option<Vec<f64>> {
        for _ in 0..20 {
            let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            orthogonalize_against(&mut v, deflate);
            orthogonalize_against(&mut v, basis);
            if normalize(&mut v) > 1e-10 {
                return Some(v);
            }
        }
        None
    };

    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(max_dim);
    let mut alphas: Vec<f64> = Vec::with_capacity(max_dim);
    let mut betas: Vec<f64> = Vec::with_capacity(max_dim); // beta[j] couples v_j, v_{j+1}
    let mut w = vec![0.0f64; n];

    let Some(v0) = fresh_start(&mut rng, &basis) else {
        return Err(LanczosError::Degenerate);
    };
    basis.push(v0);

    let mut converged = false;
    while basis.len() <= max_dim {
        let j = basis.len() - 1;
        op(&basis[j], &mut w);
        let alpha = dot(&basis[j], &w);
        alphas.push(alpha);
        // w ← w − α v_j − β_{j−1} v_{j−1}, then full reorthogonalization.
        axpy(-alpha, &basis[j].clone(), &mut w);
        if j > 0 {
            let beta_prev = betas[j - 1];
            axpy(-beta_prev, &basis[j - 1].clone(), &mut w);
        }
        orthogonalize_against(&mut w, deflate);
        orthogonalize_against(&mut w, &basis);
        let beta = normalize(&mut w);

        // Convergence test on the current tridiagonal system.
        let dim = alphas.len();
        if dim >= want {
            let (vals, vecs) = eigh_tridiagonal(&alphas, &betas[..dim - 1])?;
            let worst_residual = vals
                .iter()
                .zip(&vecs)
                .take(want)
                .map(|(_, s)| (beta * s[dim - 1]).abs())
                .fold(0.0f64, f64::max);
            if worst_residual <= opts.tol || dim == max_dim || beta <= 1e-12 {
                if beta <= 1e-12 && dim < max_dim && worst_residual > opts.tol {
                    // Invariant subspace before convergence: restart
                    // direction, keep the basis.
                    if let Some(v) = fresh_start(&mut rng, &basis) {
                        betas.push(0.0);
                        basis.push(v);
                        continue;
                    }
                }
                converged = worst_residual <= opts.tol;
                let eigenvalues: Vec<f64> = vals[..want].to_vec();
                let eigenvectors: Vec<Vec<f64>> = vecs[..want]
                    .iter()
                    .map(|s| {
                        let mut x = vec![0.0f64; n];
                        for (coeff, v) in s.iter().zip(&basis) {
                            axpy(*coeff, v, &mut x);
                        }
                        normalize(&mut x);
                        x
                    })
                    .collect();
                return Ok(LanczosResult {
                    eigenvalues,
                    eigenvectors,
                    iterations: dim,
                    converged,
                });
            }
        } else if beta <= 1e-12 {
            // Invariant subspace before we even have `want` values.
            match fresh_start(&mut rng, &basis) {
                Some(v) => {
                    betas.push(0.0);
                    basis.push(v);
                    continue;
                }
                None => break,
            }
        }

        betas.push(beta);
        basis.push(w.clone());
    }

    // Fallback: solve whatever space we built.
    let dim = alphas.len();
    let (vals, vecs) = eigh_tridiagonal(&alphas, &betas[..dim.saturating_sub(1)])?;
    let take = want.min(vals.len());
    let eigenvalues: Vec<f64> = vals[..take].to_vec();
    let eigenvectors: Vec<Vec<f64>> = vecs[..take]
        .iter()
        .map(|s| {
            let mut x = vec![0.0f64; n];
            for (coeff, v) in s.iter().zip(&basis) {
                axpy(*coeff, v, &mut x);
            }
            normalize(&mut x);
            x
        })
        .collect();
    Ok(LanczosResult {
        eigenvalues,
        eigenvectors,
        iterations: dim,
        converged,
    })
}

/// Convenience wrapper: smallest eigenpairs of a [`CsrMatrix`].
pub fn lanczos_smallest_csr(
    a: &CsrMatrix,
    k: usize,
    deflate: &[Vec<f64>],
    opts: &LanczosOptions,
) -> Result<LanczosResult, LanczosError> {
    lanczos_smallest(|x, y| a.matvec(x, y), a.dim(), k, deflate, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_laplacian(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n as u32 {
            let deg = if i == 0 || i == n as u32 - 1 {
                1.0
            } else {
                2.0
            };
            t.push((i, i, deg));
            if (i as usize) + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, &t)
    }

    #[test]
    fn smallest_of_diagonal_matrix() {
        let a = CsrMatrix::from_triplets(4, &[(0, 0, 4.0), (1, 1, 1.0), (2, 2, 3.0), (3, 3, 2.0)]);
        let r = lanczos_smallest_csr(&a, 2, &[], &LanczosOptions::default()).unwrap();
        assert!(r.converged);
        assert!((r.eigenvalues[0] - 1.0).abs() < 1e-7, "{:?}", r.eigenvalues);
        assert!((r.eigenvalues[1] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn path_laplacian_fiedler_value() {
        // λ_1 of P_n Laplacian = 4 sin²(π / 2n); deflate the constant.
        let n = 12;
        let a = path_laplacian(n);
        let ones = vec![1.0 / (n as f64).sqrt(); n];
        let r = lanczos_smallest_csr(&a, 1, &[ones], &LanczosOptions::default()).unwrap();
        let expect = 4.0 * (std::f64::consts::PI / (2.0 * n as f64)).sin().powi(2);
        assert!(
            (r.eigenvalues[0] - expect).abs() < 1e-7,
            "got {} want {expect}",
            r.eigenvalues[0]
        );
        // Fiedler vector of a path is monotone.
        let v = &r.eigenvectors[0];
        let increasing = v.windows(2).all(|w| w[0] <= w[1] + 1e-9);
        let decreasing = v.windows(2).all(|w| w[0] >= w[1] - 1e-9);
        assert!(
            increasing || decreasing,
            "Fiedler vector not monotone: {v:?}"
        );
    }

    #[test]
    fn residuals_are_small() {
        let a = path_laplacian(30);
        let n = 30;
        let ones = vec![1.0 / (n as f64).sqrt(); n];
        let r = lanczos_smallest_csr(&a, 3, &[ones], &LanczosOptions::default()).unwrap();
        assert!(r.converged);
        for (lam, v) in r.eigenvalues.iter().zip(&r.eigenvectors) {
            let av = a.apply(v);
            let res: f64 = av
                .iter()
                .zip(v)
                .map(|(avi, vi)| (avi - lam * vi).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(res < 1e-6, "residual {res} for λ={lam}");
        }
    }

    #[test]
    fn eigenvectors_orthogonal_to_deflation() {
        let n = 20;
        let a = path_laplacian(n);
        let ones = vec![1.0 / (n as f64).sqrt(); n];
        let r = lanczos_smallest_csr(
            &a,
            2,
            std::slice::from_ref(&ones),
            &LanczosOptions::default(),
        )
        .unwrap();
        for v in &r.eigenvectors {
            assert!(dot(v, &ones).abs() < 1e-7);
        }
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let a = CsrMatrix::from_triplets(3, &[(0, 0, 1.0)]);
        assert!(matches!(
            lanczos_smallest_csr(&a, 0, &[], &LanczosOptions::default()),
            Err(LanczosError::Degenerate)
        ));
    }

    #[test]
    fn want_capped_at_effective_dimension() {
        // 3x3 with one deflation vector: at most 2 pairs available.
        let a = CsrMatrix::from_triplets(3, &[(0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0)]);
        let e0 = vec![1.0, 0.0, 0.0];
        let r = lanczos_smallest_csr(&a, 5, &[e0], &LanczosOptions::default()).unwrap();
        assert!(r.eigenvalues.len() <= 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = path_laplacian(15);
        let ones = vec![1.0 / 15f64.sqrt(); 15];
        let r1 = lanczos_smallest_csr(
            &a,
            1,
            std::slice::from_ref(&ones),
            &LanczosOptions::default(),
        )
        .unwrap();
        let r2 = lanczos_smallest_csr(&a, 1, &[ones], &LanczosOptions::default()).unwrap();
        assert_eq!(r1.eigenvalues, r2.eigenvalues);
    }

    #[test]
    fn disconnected_operator_multiple_zero_eigenvalues() {
        // Block diagonal Laplacian of two P_2 components: eigenvalues
        // {0, 0, 2, 2}. Deflating the global constant still leaves one
        // zero (the component indicator difference).
        let t = vec![
            (0u32, 0u32, 1.0),
            (0, 1, -1.0),
            (1, 0, -1.0),
            (1, 1, 1.0),
            (2, 2, 1.0),
            (2, 3, -1.0),
            (3, 2, -1.0),
            (3, 3, 1.0),
        ];
        let a = CsrMatrix::from_triplets(4, &t);
        let ones = vec![0.5; 4];
        let r = lanczos_smallest_csr(&a, 1, &[ones], &LanczosOptions::default()).unwrap();
        assert!(r.eigenvalues[0].abs() < 1e-8, "{:?}", r.eigenvalues);
    }
}
