//! Eigendecomposition of symmetric tridiagonal matrices.
//!
//! Implicit-QL iteration with Wilkinson-style shifts — the classic EISPACK
//! `tql2` routine — producing all eigenvalues and eigenvectors. Lanczos
//! reduces the Laplacian to tridiagonal form; this solves the reduced
//! problem exactly.

/// Errors from the tridiagonal eigensolver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TridiagError {
    /// The QL sweep failed to deflate an eigenvalue within the iteration
    /// budget (numerically pathological input).
    NoConvergence {
        /// Index of the eigenvalue being deflated when the budget ran out.
        index: usize,
    },
    /// `off_diag.len()` must equal `diag.len() - 1` (or both be empty).
    BadShape,
}

impl std::fmt::Display for TridiagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TridiagError::NoConvergence { index } => {
                write!(f, "QL iteration failed to converge at eigenvalue {index}")
            }
            TridiagError::BadShape => write!(f, "off-diagonal length must be diag length - 1"),
        }
    }
}

impl std::error::Error for TridiagError {}

/// `sign(a, b)`: `|a|` with the sign of `b` (FORTRAN SIGN intrinsic).
#[inline]
fn sign(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Computes all eigenvalues and eigenvectors of the symmetric tridiagonal
/// matrix with diagonal `diag` and sub/super-diagonal `off_diag`.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues ascending and
/// `eigenvectors[j]` the unit eigenvector for `eigenvalues[j]`.
pub fn eigh_tridiagonal(
    diag: &[f64],
    off_diag: &[f64],
) -> Result<(Vec<f64>, Vec<Vec<f64>>), TridiagError> {
    let n = diag.len();
    if n == 0 {
        return Ok((Vec::new(), Vec::new()));
    }
    if off_diag.len() + 1 != n {
        return Err(TridiagError::BadShape);
    }
    let mut d = diag.to_vec();
    // e[i] couples rows i and i+1; e[n-1] is a zero sentinel.
    let mut e: Vec<f64> = off_diag.to_vec();
    e.push(0.0);
    // z[k][j]: row k, column j; columns accumulate the rotations.
    let mut z = vec![vec![0.0f64; n]; n];
    for (k, row) in z.iter_mut().enumerate() {
        row[k] = 1.0;
    }

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find the first negligible sub-diagonal at or after l.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break; // d[l] has converged
            }
            iter += 1;
            if iter > 60 {
                return Err(TridiagError::NoConvergence { index: l });
            }
            // Wilkinson-style shift from the 2x2 at the top of the block.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + sign(r, g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow: skip the rest of this sweep.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                for row in z.iter_mut() {
                    f = row[i + 1];
                    row[i + 1] = s * row[i] + c * f;
                    row[i] = c * row[i] - s * f;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    // Sort ascending, permuting eigenvector columns along.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).expect("finite eigenvalues"));
    let values: Vec<f64> = order.iter().map(|&j| d[j]).collect();
    let vectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&j| (0..n).map(|k| z[k][j]).collect())
        .collect();
    Ok((values, vectors))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_eigenpairs(diag: &[f64], off: &[f64], values: &[f64], vectors: &[Vec<f64>]) {
        let n = diag.len();
        for (lam, v) in values.iter().zip(vectors) {
            // residual ||T v − λ v||
            let mut res = 0.0f64;
            for i in 0..n {
                let mut tv = diag[i] * v[i];
                if i > 0 {
                    tv += off[i - 1] * v[i - 1];
                }
                if i + 1 < n {
                    tv += off[i] * v[i + 1];
                }
                res += (tv - lam * v[i]).powi(2);
            }
            assert!(res.sqrt() < 1e-9, "residual {} for λ={lam}", res.sqrt());
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "eigenvector not unit: {norm}");
        }
    }

    #[test]
    fn empty_matrix() {
        let (vals, vecs) = eigh_tridiagonal(&[], &[]).unwrap();
        assert!(vals.is_empty() && vecs.is_empty());
    }

    #[test]
    fn one_by_one() {
        let (vals, vecs) = eigh_tridiagonal(&[3.5], &[]).unwrap();
        assert_eq!(vals, vec![3.5]);
        assert_eq!(vecs, vec![vec![1.0]]);
    }

    #[test]
    fn two_by_two_analytic() {
        // [[2, 1], [1, 2]] → eigenvalues 1, 3.
        let (vals, vecs) = eigh_tridiagonal(&[2.0, 2.0], &[1.0]).unwrap();
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 3.0).abs() < 1e-12);
        check_eigenpairs(&[2.0, 2.0], &[1.0], &vals, &vecs);
    }

    #[test]
    fn diagonal_matrix_sorted() {
        let (vals, vecs) = eigh_tridiagonal(&[5.0, -1.0, 2.0], &[0.0, 0.0]).unwrap();
        assert_eq!(vals, vec![-1.0, 2.0, 5.0]);
        check_eigenpairs(&[5.0, -1.0, 2.0], &[0.0, 0.0], &vals, &vecs);
    }

    #[test]
    fn path_laplacian_known_spectrum() {
        // Laplacian of the path P_n (tridiagonal) has eigenvalues
        // 4 sin²(kπ / 2n), k = 0..n-1.
        let n = 8;
        let diag: Vec<f64> = (0..n)
            .map(|i| if i == 0 || i == n - 1 { 1.0 } else { 2.0 })
            .collect();
        let off = vec![-1.0; n - 1];
        let (vals, vecs) = eigh_tridiagonal(&diag, &off).unwrap();
        for (k, &lam) in vals.iter().enumerate() {
            let expect = 4.0
                * (k as f64 * std::f64::consts::PI / (2.0 * n as f64))
                    .sin()
                    .powi(2);
            assert!((lam - expect).abs() < 1e-9, "k={k}: {lam} vs {expect}");
        }
        check_eigenpairs(&diag, &off, &vals, &vecs);
    }

    #[test]
    fn random_tridiagonal_residuals() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for n in [3usize, 10, 25] {
            let diag: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let off: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let (vals, vecs) = eigh_tridiagonal(&diag, &off).unwrap();
            check_eigenpairs(&diag, &off, &vals, &vecs);
            // Trace preserved.
            let tr: f64 = diag.iter().sum();
            let vs: f64 = vals.iter().sum();
            assert!((tr - vs).abs() < 1e-8);
            // Sorted ascending.
            assert!(vals.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        }
    }

    #[test]
    fn rejects_bad_shape() {
        assert_eq!(
            eigh_tridiagonal(&[1.0, 2.0], &[]).unwrap_err(),
            TridiagError::BadShape
        );
    }

    #[test]
    fn eigenvectors_orthogonal() {
        let diag = [1.0, 2.0, 3.0, 4.0];
        let off = [0.5, 0.5, 0.5];
        let (_, vecs) = eigh_tridiagonal(&diag, &off).unwrap();
        for i in 0..4 {
            for j in (i + 1)..4 {
                let d: f64 = vecs[i].iter().zip(&vecs[j]).map(|(a, b)| a * b).sum();
                assert!(d.abs() < 1e-9, "vectors {i},{j} not orthogonal: {d}");
            }
        }
    }
}
