//! Minimal sparse linear algebra for the RSB baseline.
//!
//! The paper's main comparison baseline is Recursive Spectral Bisection
//! (Pothen–Simon–Liou), which needs the second-smallest eigenpair (the
//! Fiedler vector) of a graph Laplacian. This crate provides the required
//! substrate from scratch:
//!
//! * [`dense`] — the handful of dense vector kernels Lanczos needs.
//! * [`csr`] — a symmetric sparse matrix in CSR form with `y = Ax`.
//! * [`tridiag`] — implicit-QL eigensolver for symmetric tridiagonal
//!   matrices (the classic `tql2` algorithm), eigenvalues + eigenvectors.
//! * [`lanczos`] — Lanczos iteration with full reorthogonalization and
//!   optional deflation, returning the smallest eigenpairs of a symmetric
//!   operator.
//!
//! Scope is deliberately limited to what spectral bisection needs; this is
//! not a general linear-algebra library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod dense;
pub mod lanczos;
pub mod tridiag;

pub use csr::CsrMatrix;
pub use lanczos::{lanczos_smallest, LanczosOptions, LanczosResult};
