//! Property-based tests for the linear algebra substrate.

use gapart_linalg::dense::{axpy, dot, norm, normalize, orthogonalize_against};
use gapart_linalg::lanczos::lanczos_smallest_csr;
use gapart_linalg::tridiag::eigh_tridiagonal;
use gapart_linalg::{CsrMatrix, LanczosOptions};
use proptest::prelude::*;

fn arb_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dot_is_bilinear(
        a in arb_vec(8), b in arb_vec(8), c in arb_vec(8),
        alpha in -5.0f64..5.0,
    ) {
        let ab = dot(&a, &b);
        let ac = dot(&a, &c);
        let bc_sum: Vec<f64> = b.iter().zip(&c).map(|(x, y)| alpha * x + y).collect();
        let lhs = dot(&a, &bc_sum);
        prop_assert!((lhs - (alpha * ab + ac)).abs() < 1e-8);
    }

    #[test]
    fn cauchy_schwarz(a in arb_vec(12), b in arb_vec(12)) {
        prop_assert!(dot(&a, &b).abs() <= norm(&a) * norm(&b) + 1e-9);
    }

    #[test]
    fn axpy_matches_definition(a in arb_vec(10), b in arb_vec(10), alpha in -3.0f64..3.0) {
        let mut y = b.clone();
        axpy(alpha, &a, &mut y);
        for i in 0..10 {
            prop_assert!((y[i] - (b[i] + alpha * a[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn normalize_gives_unit_or_zero(mut a in arb_vec(9)) {
        let n0 = norm(&a);
        let returned = normalize(&mut a);
        prop_assert!((returned - n0).abs() < 1e-12);
        if n0 > 0.0 {
            prop_assert!((norm(&a) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn orthogonalization_annihilates_basis_components(v in arb_vec(6)) {
        // Orthonormal basis: e1, e3.
        let mut e1 = vec![0.0; 6];
        e1[0] = 1.0;
        let mut e3 = vec![0.0; 6];
        e3[2] = 1.0;
        let mut w = v.clone();
        orthogonalize_against(&mut w, &[e1.clone(), e3.clone()]);
        prop_assert!(dot(&w, &e1).abs() < 1e-10);
        prop_assert!(dot(&w, &e3).abs() < 1e-10);
        // Untouched coordinates are preserved.
        prop_assert!((w[1] - v[1]).abs() < 1e-12);
    }

    #[test]
    fn matvec_is_linear(
        entries in proptest::collection::vec((0u32..8, 0u32..8, -4.0f64..4.0), 1..30),
        x in arb_vec(8),
        y in arb_vec(8),
        alpha in -3.0f64..3.0,
    ) {
        let a = CsrMatrix::from_triplets(8, &entries);
        let combo: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| alpha * xi + yi).collect();
        let lhs = a.apply(&combo);
        let ax = a.apply(&x);
        let ay = a.apply(&y);
        for i in 0..8 {
            prop_assert!((lhs[i] - (alpha * ax[i] + ay[i])).abs() < 1e-8);
        }
    }

    #[test]
    fn tridiagonal_eigensolve_residuals_and_trace(
        diag in proptest::collection::vec(-5.0f64..5.0, 2..20),
        off_scale in 0.0f64..2.0,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let n = diag.len();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let off: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-1.0..1.0) * off_scale).collect();
        let (vals, vecs) = eigh_tridiagonal(&diag, &off).unwrap();
        // Trace conserved.
        let trace: f64 = diag.iter().sum();
        let sum: f64 = vals.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-7 * (1.0 + trace.abs()));
        // Sorted.
        prop_assert!(vals.windows(2).all(|w| w[0] <= w[1] + 1e-10));
        // Residuals small, eigenvectors unit.
        for (lam, v) in vals.iter().zip(&vecs) {
            let mut res = 0.0f64;
            for i in 0..n {
                let mut tv = diag[i] * v[i];
                if i > 0 { tv += off[i - 1] * v[i - 1]; }
                if i + 1 < n { tv += off[i] * v[i + 1]; }
                res += (tv - lam * v[i]).powi(2);
            }
            prop_assert!(res.sqrt() < 1e-7, "residual {}", res.sqrt());
            let nv: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            prop_assert!((nv - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn lanczos_finds_smallest_diagonal_entry(
        diag in proptest::collection::vec(0.0f64..20.0, 3..25),
    ) {
        let n = diag.len();
        let t: Vec<(u32, u32, f64)> = diag
            .iter()
            .enumerate()
            .map(|(i, &d)| (i as u32, i as u32, d))
            .collect();
        let a = CsrMatrix::from_triplets(n, &t);
        let r = lanczos_smallest_csr(&a, 1, &[], &LanczosOptions::default()).unwrap();
        let expected = diag.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!((r.eigenvalues[0] - expected).abs() < 1e-5,
            "got {} want {expected}", r.eigenvalues[0]);
    }

    #[test]
    fn lanczos_eigenvalue_bounds_by_gershgorin(
        entries in proptest::collection::vec((0u32..6, 0u32..6, -3.0f64..3.0), 1..20),
    ) {
        // Symmetrize to make the operator honest.
        let mut sym: Vec<(u32, u32, f64)> = Vec::new();
        for &(i, j, v) in &entries {
            sym.push((i, j, v));
            if i != j {
                sym.push((j, i, v));
            }
        }
        let a = CsrMatrix::from_triplets(6, &sym);
        prop_assume!(a.is_symmetric(1e-9));
        let r = lanczos_smallest_csr(&a, 1, &[], &LanczosOptions::default()).unwrap();
        // Gershgorin lower bound.
        let mut lower = f64::INFINITY;
        for i in 0..6u32 {
            let d = a.get(i, i);
            let radius: f64 = (0..6u32).filter(|&j| j != i).map(|j| a.get(i, j).abs()).sum();
            lower = lower.min(d - radius);
        }
        prop_assert!(r.eigenvalues[0] >= lower - 1e-6,
            "λ_min {} below Gershgorin bound {lower}", r.eigenvalues[0]);
    }
}
