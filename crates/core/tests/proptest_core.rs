//! Property-based tests for the GA core.

use gapart_core::chromosome::Chromosome;
use gapart_core::fitness::{FitnessEvaluator, FitnessKind, PartitionState};
use gapart_core::hillclimb::{hill_climb, swap_climb};
use gapart_core::ops::crossover::{knux_bias, CrossoverCtx, CrossoverOp};
use gapart_core::ops::mutation::{boundary_mutate, mutate};
use gapart_core::selection::SelectionScheme;
use gapart_core::{GaConfig, GaEngine};
use gapart_graph::generators::jittered_mesh;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_genes(n: usize, parts: u32, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..parts)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Incremental gain prediction equals the actual fitness delta for
    /// arbitrary graphs, objectives, λ, and move sequences.
    #[test]
    fn partition_state_gain_exactness(
        n in 6usize..80,
        parts in 2u32..7,
        seed in any::<u64>(),
        lambda in 0.25f64..3.0,
        kind_idx in 0usize..2,
        moves in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..60),
    ) {
        let kind = [FitnessKind::TotalCut, FitnessKind::WorstCut][kind_idx];
        let g = jittered_mesh(n, seed);
        let e = FitnessEvaluator::new(&g, parts, kind, lambda);
        let genes = arb_genes(n, parts, seed ^ 3);
        let mut state = PartitionState::new(e.clone(), genes);
        for (rv, rp) in moves {
            let v = rv % n as u32;
            let to = rp % parts;
            let before = state.fitness();
            let predicted = state.gain(v, to);
            state.apply(v, to);
            let after = state.fitness();
            prop_assert!((after - before - predicted).abs() < 1e-6);
        }
        // Final state agrees with a from-scratch evaluation.
        prop_assert!((state.fitness() - e.evaluate(state.labels())).abs() < 1e-6);
    }

    /// Hill climbing and swap climbing never decrease fitness and always
    /// keep genes in range.
    #[test]
    fn climbers_are_monotone(
        n in 6usize..100,
        parts in 2u32..6,
        seed in any::<u64>(),
        kind_idx in 0usize..2,
    ) {
        let kind = [FitnessKind::TotalCut, FitnessKind::WorstCut][kind_idx];
        let g = jittered_mesh(n, seed);
        let e = FitnessEvaluator::new(&g, parts, kind, 1.0);
        type Climber = fn(&FitnessEvaluator<'_>, &mut Vec<u32>, usize) -> gapart_core::hillclimb::ClimbStats;
        for (name, f) in [
            ("hill", hill_climb as Climber),
            ("swap", swap_climb as Climber),
        ] {
            let mut genes = arb_genes(n, parts, seed ^ 5);
            let before = e.evaluate(&genes);
            let stats = f(&e, &mut genes, 10);
            let after = e.evaluate(&genes);
            prop_assert!(after >= before - 1e-9, "{name} decreased fitness");
            prop_assert!((after - before - stats.gain).abs() < 1e-6,
                "{name} misreported its gain");
            prop_assert!(genes.iter().all(|&x| x < parts));
        }
    }

    /// Mutation changes at most the expected number of genes and keeps
    /// labels in range.
    #[test]
    fn mutation_in_range(
        n in 1usize..200,
        parts in 1u32..8,
        rate in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut genes = arb_genes(n, parts, seed);
        let before = genes.clone();
        mutate(&mut genes, rate, parts, &mut rng);
        prop_assert!(genes.iter().all(|&g| g < parts));
        if rate == 0.0 || parts == 1 {
            prop_assert_eq!(genes, before);
        }
    }

    /// Boundary mutation only ever moves nodes to parts adjacent to them
    /// (computed against the pre-mutation state).
    #[test]
    fn boundary_mutation_moves_are_local(
        n in 4usize..120,
        parts in 2u32..6,
        rate in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let g = jittered_mesh(n, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 7);
        let mut genes = arb_genes(n, parts, seed ^ 9);
        let before = genes.clone();
        boundary_mutate(&mut genes, &g, rate, &mut rng);
        for v in 0..n as u32 {
            if genes[v as usize] != before[v as usize] {
                prop_assert!(g.neighbors(v).iter().any(|&u| before[u as usize] == genes[v as usize]));
            }
        }
    }

    /// Selection always returns a valid index, for every scheme and any
    /// finite fitness landscape.
    #[test]
    fn selection_index_valid(
        fitness in proptest::collection::vec(-1e7f64..0.0, 1..50),
        seed in any::<u64>(),
        scheme_idx in 0usize..3,
    ) {
        let scheme = [
            SelectionScheme::Tournament(3),
            SelectionScheme::RouletteWheel,
            SelectionScheme::Rank,
        ][scheme_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let idx = scheme.select(&fitness, &mut rng);
            prop_assert!(idx < fitness.len());
        }
    }

    /// The KNUX bias is a probability and is symmetric in its arguments:
    /// p(a, b) + p(b, a) = 1 whenever some neighbour supports either side.
    #[test]
    fn knux_bias_is_probability(
        n in 4usize..80,
        parts in 2u32..6,
        seed in any::<u64>(),
    ) {
        let g = jittered_mesh(n, seed);
        let reference = arb_genes(n, parts, seed ^ 11);
        let mut rng = StdRng::seed_from_u64(seed ^ 13);
        for _ in 0..30 {
            let i = rng.gen_range(0..n as u32);
            let a = rng.gen_range(0..parts);
            let b = rng.gen_range(0..parts);
            let p_ab = knux_bias(&g, &reference, i, a, b);
            let p_ba = knux_bias(&g, &reference, i, b, a);
            prop_assert!((0.0..=1.0).contains(&p_ab));
            prop_assert!((p_ab + p_ba - 1.0).abs() < 1e-12);
        }
    }

    /// Engine runs are deterministic and never lose in-range genes, for
    /// arbitrary small configurations.
    #[test]
    fn engine_determinism_and_validity(
        n in 8usize..60,
        parts in 2u32..5,
        pop in 4usize..24,
        gens in 1usize..12,
        seed in any::<u64>(),
    ) {
        let g = jittered_mesh(n, seed);
        let make = || {
            GaConfig::paper_defaults(parts)
                .with_population_size(pop)
                .with_generations(gens)
                .with_seed(seed ^ 15)
        };
        let a = GaEngine::new(&g, make()).unwrap().run();
        let b = GaEngine::new(&g, make()).unwrap().run();
        prop_assert_eq!(&a.best_partition, &b.best_partition);
        prop_assert_eq!(&a.history, &b.history);
        prop_assert_eq!(a.best_partition.num_nodes(), n);
        prop_assert!(a.best_partition.labels().iter().all(|&l| l < parts));
        // History is monotone in best fitness.
        prop_assert!(a.history.best_fitness.windows(2).all(|w| w[1] >= w[0] - 1e-12));
    }

    /// Crossover output lengths and gene conservation hold for arbitrary
    /// parent pairs (complementarity checked per locus).
    #[test]
    fn crossover_conserves_loci(
        n in 2usize..100,
        parts in 2u32..6,
        seed in any::<u64>(),
        op_idx in 0usize..7,
    ) {
        let g = jittered_mesh(n, seed);
        let a = arb_genes(n, parts, seed ^ 17);
        let b = arb_genes(n, parts, seed ^ 19);
        let reference = arb_genes(n, parts, seed ^ 21);
        let op = CrossoverOp::ALL[op_idx];
        let ctx = CrossoverCtx::with_reference(&g, &reference);
        let mut rng = StdRng::seed_from_u64(seed ^ 23);
        let (c1, c2) = op.apply(&a, &b, &ctx, &mut rng);
        let (ca, cb) = (Chromosome::new(c1), Chromosome::new(c2));
        prop_assert_eq!(ca.len(), n);
        for i in 0..n as u32 {
            let pair = (ca.gene(i), cb.gene(i));
            prop_assert!(pair == (a[i as usize], b[i as usize]) || pair == (b[i as usize], a[i as usize]));
        }
    }

    /// §3.5 balanced extension: starting from a greedily balanced old
    /// partition, every part's load stays within one maximum node weight
    /// of the ideal average, and the old-node prefix is never relabelled.
    #[test]
    fn balanced_extension_stays_within_one_max_weight_of_ideal(
        weights in proptest::collection::vec(1u32..9, 8..120),
        parts in 2u32..7,
        split_frac in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        use gapart_core::incremental::extend_partition_balanced;
        use gapart_graph::{GraphBuilder, Partition};

        let n = weights.len();
        let n_old = ((n as f64 * split_frac) as usize).clamp(1, n);
        // Structure is irrelevant to the balance property; a path keeps
        // the builder happy for any n.
        let mut b = GraphBuilder::with_nodes(n);
        for v in 1..n as u32 {
            b.push_edge(v - 1, v, 1);
        }
        let graph = b.node_weights(weights.clone()).build().unwrap();

        // Old partition: the same greedy lightest-part rule, so its own
        // spread is already ≤ one max node weight (the precondition §3.5
        // maintains batch over batch).
        let mut loads = vec![0u64; parts as usize];
        let mut old_labels = Vec::with_capacity(n_old);
        for &w in weights.iter().take(n_old) {
            let p = (0..parts as usize).min_by_key(|&q| loads[q]).unwrap();
            old_labels.push(p as u32);
            loads[p] += w as u64;
        }
        let old = Partition::new(old_labels, parts).unwrap();

        let ext = extend_partition_balanced(&graph, &old, seed).unwrap();

        // Prefix preserved.
        for v in 0..n_old as u32 {
            prop_assert_eq!(ext.part(v), old.part(v), "old node {} relabelled", v);
        }
        // Every part within one max node weight of the ideal average.
        let wmax = *weights.iter().max().unwrap() as f64;
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        let avg = total as f64 / parts as f64;
        let mut final_loads = vec![0u64; parts as usize];
        for v in 0..n as u32 {
            final_loads[ext.part(v) as usize] += graph.node_weight(v) as u64;
        }
        for (q, &load) in final_loads.iter().enumerate() {
            prop_assert!(
                (load as f64 - avg).abs() <= wmax + 1e-9,
                "part {} load {} vs ideal {} (wmax {})",
                q, load, avg, wmax
            );
        }
    }
}
