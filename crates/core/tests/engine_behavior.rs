//! Behavioral integration tests of the GA engine and DPGA driver:
//! everything a user would rely on beyond "it runs" — budget accounting,
//! seeding guarantees, operator wiring, topology effects, and the
//! incremental pipeline's contract.

use gapart_core::dpga::MigrationPolicy;
use gapart_core::history::average_histories;
use gapart_core::incremental::{extend_partition_balanced, greedy_neighbor_assign};
use gapart_core::population::InitStrategy;
use gapart_core::{
    CrossoverOp, DpgaConfig, DpgaEngine, FitnessEvaluator, FitnessKind, GaConfig, GaEngine,
    HillClimbMode, SelectionScheme, Topology,
};
use gapart_graph::generators::{gnp, paper_graph};
use gapart_graph::incremental::grow_local;
use gapart_graph::Partition;

fn base(parts: u32) -> GaConfig {
    GaConfig::paper_defaults(parts)
        .with_population_size(40)
        .with_generations(20)
        .with_seed(77)
}

#[test]
fn history_length_tracks_generation_budget() {
    let g = paper_graph(78);
    for gens in [0usize, 1, 7, 20] {
        let r = GaEngine::new(&g, base(4).with_generations(gens))
            .unwrap()
            .run();
        assert_eq!(r.generations_run, gens);
        assert_eq!(r.history.len(), gens + 1, "gens={gens}");
    }
}

#[test]
fn zero_crossover_rate_still_improves_via_selection_and_elitism() {
    let g = paper_graph(98);
    let mut cfg = base(4).with_generations(40);
    cfg.crossover_rate = 0.0;
    let r = GaEngine::new(&g, cfg).unwrap().run();
    assert!(r.history.best_fitness.last().unwrap() >= &r.history.best_fitness[0]);
}

#[test]
fn zero_mutation_zero_crossover_is_pure_selection() {
    // With no variation operators and no elite swap, the best individual
    // can never improve beyond the initial population's best.
    let g = paper_graph(78);
    let mut cfg = base(4).with_generations(15);
    cfg.crossover_rate = 0.0;
    cfg.mutation_rate = 0.0;
    cfg.elite_swap_passes = 0;
    let r = GaEngine::new(&g, cfg).unwrap().run();
    assert_eq!(
        r.history.best_fitness[0],
        *r.history.best_fitness.last().unwrap(),
        "best improved without any variation operator"
    );
}

#[test]
fn every_selection_scheme_drives_the_engine() {
    let g = paper_graph(88);
    for scheme in [
        SelectionScheme::Tournament(2),
        SelectionScheme::Tournament(5),
        SelectionScheme::RouletteWheel,
        SelectionScheme::Rank,
    ] {
        let mut cfg = base(4);
        cfg.selection = scheme;
        let r = GaEngine::new(&g, cfg).unwrap().run();
        assert_eq!(r.best_partition.num_nodes(), 88, "{scheme}");
    }
}

#[test]
fn every_crossover_operator_drives_the_engine() {
    let g = paper_graph(78);
    for op in CrossoverOp::ALL {
        let r = GaEngine::new(&g, base(4).with_crossover(op)).unwrap().run();
        assert!(r.best_cut > 0, "{op}");
    }
}

#[test]
fn explicit_knux_reference_is_honoured() {
    // With a reference that fully matches a target partition and KNUX
    // (static reference), offspring are pulled toward the reference.
    let g = paper_graph(144);
    let target: Vec<u32> = g
        .coords()
        .unwrap()
        .iter()
        .map(|p| u32::from(p.x > 0.5))
        .collect();
    let mut cfg = base(2)
        .with_crossover(CrossoverOp::Knux)
        .with_generations(30);
    cfg.knux_reference = Some(target.clone());
    let r = GaEngine::new(&g, cfg).unwrap().run();
    // The run should land close to the reference's quality class: compare
    // cut against the target's cut within 2x.
    let e = FitnessEvaluator::new(&g, 2, FitnessKind::TotalCut, 1.0);
    let target_cut = e.reported_cut(&target);
    assert!(
        r.best_cut <= target_cut * 2,
        "KNUX ignored its reference: {} vs {target_cut}",
        r.best_cut
    );
}

#[test]
fn engine_works_without_coordinates() {
    // KNUX uses adjacency only, so coordinate-free graphs must work.
    let g = gnp(60, 0.15, 3);
    let r = GaEngine::new(&g, base(4)).unwrap().run();
    assert_eq!(r.best_partition.num_nodes(), 60);
}

#[test]
fn lambda_zero_optimizes_balance_only() {
    let g = paper_graph(98);
    let mut cfg = base(4).with_generations(40);
    cfg.lambda = 0.0;
    let r = GaEngine::new(&g, cfg).unwrap().run();
    // With λ=0 the imbalance should be driven to (near) the minimum
    // achievable for 98 nodes / 4 parts: sizes {24,24,25,25} → 2·(0.5)²·2 = 1.
    assert!(
        r.best_metrics.imbalance <= 1.0 + 1e-9,
        "imbalance {} not minimized",
        r.best_metrics.imbalance
    );
}

#[test]
fn dpga_respects_topology_sizes() {
    let g = paper_graph(88);
    for topo in [
        Topology::Hypercube(0),
        Topology::Hypercube(2),
        Topology::Ring(6),
        Topology::Mesh2d(2, 3),
        Topology::Complete(5),
    ] {
        let config = DpgaConfig {
            base: base(4).with_population_size(2 * topo.size().max(8)),
            topology: topo,
            migration_interval: 3,
            num_migrants: 1,
            migration_policy: MigrationPolicy::Best,
            parallel: false,
            init_overrides: None,
        };
        let r = DpgaEngine::new(&g, config).unwrap().run();
        assert_eq!(r.per_subpop.len(), topo.size(), "{topo}");
    }
}

#[test]
fn average_histories_matches_figure_protocol() {
    // 3 runs of different seeds; the averaged curve must lie between the
    // pointwise min and max of the individual curves.
    let g = paper_graph(98);
    let histories: Vec<_> = (0..3)
        .map(|s| {
            GaEngine::new(&g, base(4).with_seed(s))
                .unwrap()
                .run()
                .history
        })
        .collect();
    let (avg_cut, _) = average_histories(&histories);
    for (gidx, &avg) in avg_cut.iter().enumerate() {
        let vals: Vec<f64> = histories
            .iter()
            .map(|h| h.best_cut[gidx.min(h.best_cut.len() - 1)] as f64)
            .collect();
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9);
    }
}

#[test]
fn incremental_seeding_contract() {
    // The balanced extension must (a) preserve old labels, (b) be balanced,
    // and (c) produce something the greedy baseline can be compared to.
    let old_g = paper_graph(118);
    let old_p = Partition::round_robin(118, 4);
    let grown = grow_local(&old_g, 41, 9).unwrap().graph;

    let ext = extend_partition_balanced(&grown, &old_p, 5).unwrap();
    for v in 0..118u32 {
        assert_eq!(ext.part(v), old_p.part(v));
    }
    let sizes = ext.part_sizes();
    assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);

    let greedy = greedy_neighbor_assign(&grown, &old_p).unwrap();
    for v in 0..118u32 {
        assert_eq!(greedy.part(v), old_p.part(v));
    }
    // Greedy follows locality, so its cut should beat the random balanced
    // extension's cut (it ignores balance to do so).
    let e = FitnessEvaluator::new(&grown, 4, FitnessKind::TotalCut, 1.0);
    assert!(e.reported_cut(greedy.labels()) <= e.reported_cut(ext.labels()));
}

#[test]
fn hill_climb_mode_cost_quality_order() {
    // On equal budgets: memetic ≥ plain in quality (it embeds local
    // search); both must be deterministic.
    let g = paper_graph(144);
    let plain = GaEngine::new(&g, base(4).with_generations(15))
        .unwrap()
        .run();
    let memetic = GaEngine::new(
        &g,
        base(4)
            .with_generations(15)
            .with_hill_climb(HillClimbMode::Offspring { passes: 1 }),
    )
    .unwrap()
    .run();
    assert!(memetic.best_fitness >= plain.best_fitness);
}

#[test]
fn seeded_plus_random_composition() {
    let seed_p = Partition::blocks(98, 4);
    let init = InitStrategy::SeededPlusRandom {
        partition: seed_p.labels().to_vec(),
        perturbation: 0.0, // perturbed copies stay exact for this test
        random_fraction: 0.5,
    };
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let chroms = init.generate(98, 4, 20, &mut rng);
    assert_eq!(chroms.len(), 20);
    let exact = chroms
        .iter()
        .filter(|c| c.genes() == seed_p.labels())
        .count();
    // Half the population (10) are unperturbed seed copies; random ones
    // almost surely differ.
    assert!(exact >= 10, "only {exact} seed copies");
    assert!(exact <= 12, "{exact} — random share missing");
}
