//! Parent selection schemes.
//!
//! The paper does not pin down its selection mechanism, so the engine
//! supports the standard three; binary tournament is the default (robust
//! to the negative fitness values our cost-based objectives produce).

use rand::Rng;

/// Parent-selection strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionScheme {
    /// Size-`k` tournament: sample `k` individuals uniformly, keep the
    /// fittest. Invariant under fitness translation, so it handles the
    /// negative fitness values natively.
    Tournament(u32),
    /// Classic roulette wheel on *windowed* fitness (shifted so the worst
    /// individual has weight ~0; raw negative values cannot be sampled
    /// proportionally).
    RouletteWheel,
    /// Linear rank selection: probability proportional to rank, best
    /// ranked highest.
    Rank,
}

impl Default for SelectionScheme {
    fn default() -> Self {
        SelectionScheme::Tournament(2)
    }
}

impl std::fmt::Display for SelectionScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectionScheme::Tournament(k) => write!(f, "tournament({k})"),
            SelectionScheme::RouletteWheel => write!(f, "roulette"),
            SelectionScheme::Rank => write!(f, "rank"),
        }
    }
}

impl SelectionScheme {
    /// Selects one parent index given each individual's fitness.
    ///
    /// # Panics
    ///
    /// Panics on an empty fitness slice, a tournament size of 0, or
    /// non-finite fitness values.
    pub fn select<R: Rng + ?Sized>(&self, fitness: &[f64], rng: &mut R) -> usize {
        assert!(!fitness.is_empty(), "cannot select from empty population");
        debug_assert!(fitness.iter().all(|f| f.is_finite()));
        match self {
            SelectionScheme::Tournament(k) => {
                assert!(*k > 0, "tournament size must be positive");
                let mut best = rng.gen_range(0..fitness.len());
                for _ in 1..*k {
                    let challenger = rng.gen_range(0..fitness.len());
                    if fitness[challenger] > fitness[best] {
                        best = challenger;
                    }
                }
                best
            }
            SelectionScheme::RouletteWheel => {
                let worst = fitness.iter().copied().fold(f64::INFINITY, f64::min);
                let best = fitness.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                // Window: weight = f − worst + ε·range, so the worst
                // individual keeps a sliver of probability.
                let range = (best - worst).max(1e-12);
                let eps = 0.01 * range;
                let total: f64 = fitness.iter().map(|f| f - worst + eps).sum();
                let mut ball = rng.gen_range(0.0..total);
                for (i, f) in fitness.iter().enumerate() {
                    ball -= f - worst + eps;
                    if ball <= 0.0 {
                        return i;
                    }
                }
                fitness.len() - 1
            }
            SelectionScheme::Rank => {
                let n = fitness.len();
                let mut order: Vec<usize> = (0..n).collect();
                // total_cmp: deterministic total order, no NaN panic.
                order.sort_by(|&a, &b| fitness[a].total_cmp(&fitness[b]));
                // Rank weights 1..=n (worst..best); total n(n+1)/2.
                let total = n * (n + 1) / 2;
                let mut ball = rng.gen_range(0..total) as i64;
                for (rank0, &idx) in order.iter().enumerate() {
                    ball -= (rank0 + 1) as i64;
                    if ball < 0 {
                        return idx;
                    }
                }
                order[n - 1]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frequencies(scheme: SelectionScheme, fitness: &[f64], trials: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; fitness.len()];
        for _ in 0..trials {
            counts[scheme.select(fitness, &mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn tournament_prefers_fitter() {
        let fitness = vec![-10.0, -1.0, -5.0];
        let counts = frequencies(SelectionScheme::Tournament(2), &fitness, 30_000);
        assert!(counts[1] > counts[2], "{counts:?}");
        assert!(counts[2] > counts[0], "{counts:?}");
        // Binary tournament: best selected with prob 1 - (2/3)^2·... ≈
        // expected counts ratio 5:3:1 among 3 individuals.
        let total: usize = counts.iter().sum();
        assert_eq!(total, 30_000);
    }

    #[test]
    fn tournament_size_one_is_uniform() {
        let fitness = vec![-10.0, -1.0];
        let counts = frequencies(SelectionScheme::Tournament(1), &fitness, 20_000);
        assert!(
            (counts[0] as i64 - counts[1] as i64).abs() < 1500,
            "{counts:?}"
        );
    }

    #[test]
    fn large_tournament_is_nearly_elitist() {
        let fitness = vec![-3.0, -1.0, -2.0, -9.0];
        let counts = frequencies(SelectionScheme::Tournament(16), &fitness, 5_000);
        assert!(counts[1] as f64 / 5_000.0 > 0.9, "{counts:?}");
    }

    #[test]
    fn roulette_handles_negative_fitness() {
        let fitness = vec![-100.0, -50.0, -10.0];
        let counts = frequencies(SelectionScheme::RouletteWheel, &fitness, 30_000);
        assert!(counts[2] > counts[1], "{counts:?}");
        assert!(counts[1] > counts[0], "{counts:?}");
        // The worst individual must still be selectable.
        assert!(counts[0] > 0);
    }

    #[test]
    fn roulette_uniform_when_equal() {
        let fitness = vec![-5.0; 4];
        let counts = frequencies(SelectionScheme::RouletteWheel, &fitness, 40_000);
        for &c in &counts {
            assert!((8_000..=12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn rank_ignores_fitness_magnitudes() {
        // Outlier magnitudes shouldn't distort rank selection: with ranks
        // 1..=3, probabilities are 1/6, 2/6, 3/6 regardless of values.
        let fitness = vec![-1e9, -2.0, -1.0];
        let counts = frequencies(SelectionScheme::Rank, &fitness, 60_000);
        let p: Vec<f64> = counts.iter().map(|&c| c as f64 / 60_000.0).collect();
        assert!((p[0] - 1.0 / 6.0).abs() < 0.02, "{p:?}");
        assert!((p[1] - 2.0 / 6.0).abs() < 0.02, "{p:?}");
        assert!((p[2] - 3.0 / 6.0).abs() < 0.02, "{p:?}");
    }

    #[test]
    fn single_individual_always_selected() {
        let mut rng = StdRng::seed_from_u64(0);
        for scheme in [
            SelectionScheme::Tournament(2),
            SelectionScheme::RouletteWheel,
            SelectionScheme::Rank,
        ] {
            assert_eq!(scheme.select(&[-1.0], &mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_population_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        SelectionScheme::default().select(&[], &mut rng);
    }
}
