//! Incremental graph partitioning (§3.5, §4.2).
//!
//! After the graph grows (see [`gapart_graph::incremental`]), "the
//! previous partitioning can itself be used to generate a good
//! partitioning for the changed graph by randomly assigning new graph
//! nodes to various parts, while at the same time ensuring that balance
//! is maintained". This module provides that seeding, the paper's
//! conclusion-section deterministic baseline ("assigns new nodes to the
//! part to which most of its nearest neighbors belong"), and a one-call
//! incremental GA driver.

use crate::engine::{GaConfig, GaEngine, GaResult};
use crate::error::GaError;
use crate::population::InitStrategy;
use gapart_graph::{CsrGraph, Partition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Extends `old` (a partition of the first `old.num_nodes()` nodes of
/// `graph`) to all of `graph`'s nodes: each new node goes to a part drawn
/// uniformly among the currently *lightest* parts, so balance is
/// maintained exactly as §3.5 describes. Deterministic in `seed`.
///
/// # Errors
///
/// [`GaError::BadSeed`] if `old` covers more nodes than `graph` has.
pub fn extend_partition_balanced(
    graph: &CsrGraph,
    old: &Partition,
    seed: u64,
) -> Result<Partition, GaError> {
    let n_old = old.num_nodes();
    let n_new = graph.num_nodes();
    if n_old > n_new {
        return Err(GaError::BadSeed {
            message: format!("old partition covers {n_old} nodes, graph has {n_new}"),
        });
    }
    let num_parts = old.num_parts();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x696e_6372); // "incr"
    let mut loads = vec![0u64; num_parts as usize];
    for v in 0..n_old as u32 {
        loads[old.part(v) as usize] += graph.node_weight(v) as u64;
    }
    let mut labels = old.labels().to_vec();
    labels.reserve(n_new - n_old);
    let mut lightest: Vec<u32> = Vec::with_capacity(num_parts as usize);
    for v in n_old as u32..n_new as u32 {
        let min_load = *loads.iter().min().expect("at least one part");
        lightest.clear();
        lightest.extend(
            loads
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == min_load)
                .map(|(p, _)| p as u32),
        );
        let part = lightest[rng.gen_range(0..lightest.len())];
        labels.push(part);
        loads[part as usize] += graph.node_weight(v) as u64;
    }
    Partition::new(labels, num_parts).map_err(|e| GaError::BadSeed {
        message: e.to_string(),
    })
}

/// The deterministic baseline from the paper's conclusions: each new node
/// is assigned "to the part to which most of its nearest neighbors
/// belong". New nodes are processed in id order; neighbours not yet
/// assigned are ignored; a node with no assigned neighbours (possible
/// only in degenerate graphs) goes to the lightest part. Ties break to
/// the lower part id.
///
/// # Errors
///
/// [`GaError::BadSeed`] if `old` covers more nodes than `graph` has.
pub fn greedy_neighbor_assign(graph: &CsrGraph, old: &Partition) -> Result<Partition, GaError> {
    let n_old = old.num_nodes();
    let n_new = graph.num_nodes();
    if n_old > n_new {
        return Err(GaError::BadSeed {
            message: format!("old partition covers {n_old} nodes, graph has {n_new}"),
        });
    }
    let num_parts = old.num_parts();
    let mut labels = old.labels().to_vec();
    labels.resize(n_new, u32::MAX); // MAX = unassigned sentinel
    let mut loads = vec![0u64; num_parts as usize];
    for v in 0..n_old as u32 {
        loads[old.part(v) as usize] += graph.node_weight(v) as u64;
    }
    let mut votes = vec![0u64; num_parts as usize];
    for v in n_old as u32..n_new as u32 {
        votes.iter_mut().for_each(|c| *c = 0);
        let mut any = false;
        for (&u, &w) in graph.neighbors(v).iter().zip(graph.edge_weights(v)) {
            let pu = labels[u as usize];
            if pu != u32::MAX {
                votes[pu as usize] += w as u64;
                any = true;
            }
        }
        let part = if any {
            votes
                .iter()
                .enumerate()
                .max_by_key(|&(p, &c)| (c, std::cmp::Reverse(p)))
                .map(|(p, _)| p as u32)
                .expect("at least one part")
        } else {
            loads
                .iter()
                .enumerate()
                .min_by_key(|&(_, &l)| l)
                .map(|(p, _)| p as u32)
                .expect("at least one part")
        };
        labels[v as usize] = part;
        loads[part as usize] += graph.node_weight(v) as u64;
    }
    Partition::new(labels, num_parts).map_err(|e| GaError::BadSeed {
        message: e.to_string(),
    })
}

/// Runs the incremental GA: seeds the population from the balanced
/// extension of `old` (plus the configured perturbation) and optimizes on
/// the grown graph. This is exactly the paper's §4.2 pipeline.
///
/// The provided `config`'s `init` is overridden; everything else
/// (operator, rates, budget, fitness kind) is honoured.
pub fn incremental_ga(
    graph: &CsrGraph,
    old: &Partition,
    mut config: GaConfig,
) -> Result<GaResult, GaError> {
    let seed_partition = extend_partition_balanced(graph, old, config.seed)?;
    config.num_parts = old.num_parts();
    config.init = InitStrategy::Seeded {
        partition: seed_partition.labels().to_vec(),
        perturbation: 0.05,
    };
    Ok(GaEngine::new(graph, config)?.run())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::{FitnessEvaluator, FitnessKind};
    use gapart_graph::generators::paper_graph;
    use gapart_graph::incremental::grow_local;

    fn grown(base: usize, extra: usize, seed: u64) -> (CsrGraph, CsrGraph) {
        let g = paper_graph(base);
        let r = grow_local(&g, extra, seed).unwrap();
        (g, r.graph)
    }

    #[test]
    fn balanced_extension_preserves_old_labels() {
        let (base, grown) = grown(118, 21, 1);
        let old = gapart_rsb::rsb_partition(&base, 4, &Default::default()).unwrap();
        let ext = extend_partition_balanced(&grown, &old, 7).unwrap();
        assert_eq!(ext.num_nodes(), 139);
        for v in 0..118u32 {
            assert_eq!(ext.part(v), old.part(v), "old node {v} moved");
        }
    }

    #[test]
    fn balanced_extension_keeps_balance() {
        let (_, grown_g) = grown(183, 60, 2);
        let old = Partition::round_robin(183, 8);
        let ext = extend_partition_balanced(&grown_g, &old, 3).unwrap();
        let sizes = ext.part_sizes();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn balanced_extension_deterministic() {
        let (_, g) = grown(78, 10, 3);
        let old = Partition::round_robin(78, 4);
        assert_eq!(
            extend_partition_balanced(&g, &old, 9).unwrap(),
            extend_partition_balanced(&g, &old, 9).unwrap()
        );
    }

    #[test]
    fn greedy_assigns_to_majority_part() {
        let (base, grown_g) = grown(98, 20, 4);
        let old = gapart_rsb::rsb_partition(&base, 4, &Default::default()).unwrap();
        let greedy = greedy_neighbor_assign(&grown_g, &old).unwrap();
        // Every new node's part must be the weighted-majority part among
        // its already-assigned (lower-id or earlier-new) neighbours.
        for v in 98u32..118 {
            let pv = greedy.part(v);
            let mut votes = std::collections::HashMap::new();
            for &u in grown_g.neighbors(v) {
                if u < v {
                    *votes.entry(greedy.part(u)).or_insert(0u32) += 1;
                }
            }
            if let Some((&max_part, &max_votes)) = votes
                .iter()
                .max_by_key(|&(&p, &c)| (c, std::cmp::Reverse(p)))
            {
                assert_eq!(
                    votes.get(&pv).copied().unwrap_or(0),
                    max_votes,
                    "node {v}: assigned {pv}, majority {max_part}"
                );
            }
        }
    }

    #[test]
    fn incremental_ga_beats_greedy_baseline() {
        // The paper's conclusion: DKNUX incremental results "could not be
        // obtained by a simple deterministic algorithm".
        let (base, grown_g) = grown(118, 41, 5);
        let old = gapart_rsb::rsb_partition(&base, 4, &Default::default()).unwrap();
        let e = FitnessEvaluator::new(&grown_g, 4, FitnessKind::TotalCut, 1.0);

        let greedy = greedy_neighbor_assign(&grown_g, &old).unwrap();
        let greedy_fit = e.evaluate(greedy.labels());

        let config = GaConfig::paper_defaults(4)
            .with_population_size(80)
            .with_generations(80)
            .with_seed(13);
        let result = incremental_ga(&grown_g, &old, config).unwrap();
        assert!(
            result.best_fitness > greedy_fit,
            "GA {} vs greedy {greedy_fit}",
            result.best_fitness
        );
    }

    #[test]
    fn incremental_ga_covers_all_nodes() {
        let (base, grown_g) = grown(78, 10, 6);
        let old = Partition::round_robin(78, 4);
        let config = GaConfig::paper_defaults(4)
            .with_population_size(30)
            .with_generations(10)
            .with_seed(1);
        let r = incremental_ga(&grown_g, &old, config).unwrap();
        assert_eq!(r.best_partition.num_nodes(), 88);
        let _ = base;
    }

    #[test]
    fn rejects_shrunken_graph() {
        let g = paper_graph(78);
        let old = Partition::round_robin(100, 4);
        assert!(matches!(
            extend_partition_balanced(&g, &old, 0).unwrap_err(),
            GaError::BadSeed { .. }
        ));
        assert!(matches!(
            greedy_neighbor_assign(&g, &old).unwrap_err(),
            GaError::BadSeed { .. }
        ));
    }
}
