//! The SC'94 contribution: genetic algorithms for graph partitioning and
//! incremental graph partitioning.
//!
//! This crate implements everything in §3 of the paper:
//!
//! * [`chromosome`] — the vector representation: gene `i` is the part of
//!   node `i`.
//! * [`fitness`] — Fitness 1 (total communication cost) and Fitness 2
//!   (worst-part communication cost), plus an incremental-move evaluator.
//! * [`ops`] — crossover operators: 1-point, 2-point, k-point, uniform
//!   (UX), and the paper's **KNUX** and **DKNUX**; plus mutation.
//! * [`selection`] — tournament, roulette-wheel and rank selection.
//! * [`hillclimb`] — boundary-vertex hill climbing (§3.6).
//! * [`population`] — population containers and the seeding strategies of
//!   §3.5 (random, heuristic-seeded, incremental reuse).
//! * [`engine`] — the single-population generational GA.
//! * [`dpga`] — the coarse-grained distributed-population GA (§3.4):
//!   subpopulations on a hypercube (or ring/mesh) exchanging their best
//!   individuals, executed on real threads in deterministic lockstep.
//! * [`incremental`] — incremental repartitioning (§3.5, §4.2) plus the
//!   greedy neighbour-majority baseline the conclusion mentions.
//! * [`dynamic`] — the streaming generalization: a [`DynamicSession`]
//!   maintains a partition across mutation batches with localized
//!   refinement and threshold-triggered full repartitions.
//! * [`topology`] — the DPGA communication topologies.
//! * [`history`] — per-generation convergence records (the paper's
//!   figures average these over 5 runs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chromosome;
pub mod dpga;
pub mod dynamic;
pub mod engine;
pub mod error;
pub mod fitness;
pub mod hillclimb;
pub mod history;
pub mod incremental;
pub mod ops;
pub mod partitioner_impl;
pub mod population;
pub mod selection;
pub mod topology;

pub use dpga::{DpgaConfig, DpgaEngine, DpgaResult, MigrationPolicy};
pub use dynamic::{
    BatchAction, BatchRecord, DynamicConfig, DynamicError, DynamicSession, MethodResolver,
    SessionSpec, SessionState, SpecError, DEFAULT_SESSION_SEED,
};
pub use engine::{GaConfig, GaEngine, GaResult, HillClimbMode};
pub use error::GaError;
pub use fitness::{FitnessEvaluator, FitnessKind};
pub use history::ConvergenceHistory;
pub use ops::crossover::CrossoverOp;
pub use partitioner_impl::{DpgaPartitioner, GaPartitioner};
pub use population::InitStrategy;
pub use selection::SelectionScheme;
pub use topology::Topology;
