//! The single-population generational GA engine.
//!
//! [`DpgaEngine`](crate::dpga::DpgaEngine) composes several of these (one
//! per subpopulation); everything about a generation — selection,
//! crossover, mutation, optional hill climbing, elitist replacement, and
//! the DKNUX reference update — lives here.

use crate::chromosome::Chromosome;
use crate::error::GaError;
use crate::fitness::{EvalScratch, FitnessEvaluator, FitnessKind};
use crate::hillclimb::hill_climb;
use crate::history::ConvergenceHistory;
use crate::ops::crossover::{CrossoverCtx, CrossoverOp};
use crate::ops::mutation::mutate;
use crate::population::{Individual, InitStrategy, Population};
use crate::selection::SelectionScheme;
use gapart_graph::partition::PartitionMetrics;
use gapart_graph::{CsrGraph, Partition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Minimum offspring per rayon worker before the evaluation phase fans
/// out — below `2×` this, thread-spawn overhead exceeds the work. Pure
/// scheduling: results are identical at any value.
pub(crate) const PAR_MIN_OFFSPRING: usize = 8;

/// When (if at all) to apply boundary hill climbing (§3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HillClimbMode {
    /// Never.
    Off,
    /// On every offspring, right after mutation (memetic mode). Strongest
    /// but slowest; the paper notes "performance can further be improved
    /// by incorporating a hill-climbing step".
    Offspring {
        /// Maximum sweeps per offspring.
        passes: usize,
    },
    /// Only on the final best individual, after the last generation.
    FinalBest {
        /// Maximum sweeps.
        passes: usize,
    },
}

/// Full configuration of a GA run.
///
/// [`GaConfig::paper_defaults`] reproduces §4's setup: total population
/// 320, crossover rate 0.7, mutation rate 0.01, DKNUX, λ = 1.
#[derive(Debug, Clone)]
pub struct GaConfig {
    /// Number of parts to partition into.
    pub num_parts: u32,
    /// Which of the paper's two objectives to maximize.
    pub fitness: FitnessKind,
    /// Weight of the communication term (paper: 1.0).
    pub lambda: f64,
    /// Crossover operator.
    pub crossover: CrossoverOp,
    /// Probability that a selected pair is crossed (paper: 0.7); pairs
    /// that skip crossover are cloned.
    pub crossover_rate: f64,
    /// Per-gene mutation probability (paper: 0.01).
    pub mutation_rate: f64,
    /// Probability that each *boundary* gene additionally mutates to a
    /// neighbouring part (extension; 0 disables). Classic uniform
    /// mutation almost never proposes useful moves on locality-rich
    /// graphs, so a little boundary-directed noise keeps the search alive
    /// after the population converges.
    pub boundary_mutation_rate: f64,
    /// Number of individuals.
    pub population_size: usize,
    /// Generations to run.
    pub generations: usize,
    /// Parent selection scheme.
    pub selection: SelectionScheme,
    /// Number of best individuals copied unchanged into the next
    /// generation.
    pub elitism: usize,
    /// Hill-climbing mode.
    pub hill_climb: HillClimbMode,
    /// Swap-climb passes applied to the best-ever individual once per
    /// generation (0 disables). Pair swaps preserve balance exactly, so
    /// this escapes the single-move local optima that the squared
    /// imbalance term creates — the exploitation channel that lets the GA
    /// refine heuristic seeds (Tables 1, 2, 5) without per-offspring cost.
    pub elite_swap_passes: usize,
    /// Initial-population strategy (§3.5).
    pub init: InitStrategy,
    /// Explicit KNUX reference solution `I`. Defaults to the best
    /// individual of the initial population (which, for a `Seeded` init,
    /// is the heuristic seed itself — the paper's setup).
    pub knux_reference: Option<Vec<u32>>,
    /// RNG seed; every run with the same config and graph is identical.
    pub seed: u64,
    /// Stop early once the reported cut reaches this value.
    pub target_cut: Option<u64>,
    /// Fan the per-generation fitness evaluation (and offspring hill
    /// climbing) across rayon workers. Breeding stays on one thread so
    /// the RNG stream is fixed, and results are reduced in index order,
    /// so `true` and `false` produce **bit-identical** runs — asserted in
    /// the tests; only wall time changes.
    pub parallel: bool,
}

impl GaConfig {
    /// The paper's experimental configuration (§4) for a single
    /// population: 320 individuals, `p_c = 0.7`, `p_m = 0.01`, DKNUX,
    /// Fitness 1, λ = 1, binary tournament, elitism 2.
    pub fn paper_defaults(num_parts: u32) -> Self {
        GaConfig {
            num_parts,
            fitness: FitnessKind::TotalCut,
            lambda: 1.0,
            crossover: CrossoverOp::Dknux,
            crossover_rate: 0.7,
            mutation_rate: 0.01,
            boundary_mutation_rate: 0.0,
            population_size: 320,
            generations: 200,
            selection: SelectionScheme::Tournament(2),
            elitism: 2,
            hill_climb: HillClimbMode::Off,
            elite_swap_passes: 1,
            init: InitStrategy::BalancedRandom,
            knux_reference: None,
            seed: 0x5343_3934, // "SC94"
            target_cut: None,
            parallel: true,
        }
    }

    /// Budget sized for the *coarsest* graph of a multilevel V-cycle
    /// (`gapart_graph::multilevel`): such graphs carry at most a couple of
    /// hundred nodes, so a small population with offspring hill climbing
    /// and boundary mutation converges in tens of generations — the
    /// paper's full §4 budget would be pure waste there. The registry's
    /// `mlga` method wraps a GA with exactly this configuration.
    pub fn coarse_defaults(num_parts: u32) -> Self {
        let mut config = GaConfig::paper_defaults(num_parts);
        config.population_size = 64;
        config.generations = 60;
        config.hill_climb = HillClimbMode::Offspring { passes: 1 };
        config.boundary_mutation_rate = 0.05;
        config
    }

    /// Sets the fitness kind.
    #[must_use]
    pub fn with_fitness(mut self, kind: FitnessKind) -> Self {
        self.fitness = kind;
        self
    }

    /// Sets the crossover operator.
    #[must_use]
    pub fn with_crossover(mut self, op: CrossoverOp) -> Self {
        self.crossover = op;
        self
    }

    /// Sets the generation budget.
    #[must_use]
    pub fn with_generations(mut self, generations: usize) -> Self {
        self.generations = generations;
        self
    }

    /// Sets the population size.
    #[must_use]
    pub fn with_population_size(mut self, size: usize) -> Self {
        self.population_size = size;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the initialization strategy.
    #[must_use]
    pub fn with_init(mut self, init: InitStrategy) -> Self {
        self.init = init;
        self
    }

    /// Sets the hill-climb mode.
    #[must_use]
    pub fn with_hill_climb(mut self, mode: HillClimbMode) -> Self {
        self.hill_climb = mode;
        self
    }

    /// Enables or disables parallel fitness evaluation (results are
    /// identical either way; see [`GaConfig::parallel`]).
    #[must_use]
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Seeds the population from a heuristic partition with the default
    /// perturbation (10% of genes), the paper's §3.5 setup.
    #[must_use]
    pub fn seeded_from(mut self, partition: &Partition) -> Self {
        self.init = InitStrategy::Seeded {
            partition: partition.labels().to_vec(),
            perturbation: 0.1,
        };
        self
    }

    fn validate(&self, num_nodes: usize) -> Result<(), GaError> {
        if self.num_parts == 0 || self.num_parts as usize > num_nodes {
            return Err(GaError::BadPartCount {
                num_parts: self.num_parts,
                num_nodes,
            });
        }
        for (name, value) in [
            ("crossover_rate", self.crossover_rate),
            ("mutation_rate", self.mutation_rate),
            ("boundary_mutation_rate", self.boundary_mutation_rate),
        ] {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(GaError::BadRate { name, value });
            }
        }
        if self.population_size < 2 {
            return Err(GaError::BadPopulation {
                message: format!("population of {} cannot breed", self.population_size),
            });
        }
        if self.elitism >= self.population_size {
            return Err(GaError::BadPopulation {
                message: format!(
                    "elitism {} must be below population size {}",
                    self.elitism, self.population_size
                ),
            });
        }
        let seed_params: Option<(&Vec<u32>, f64, f64)> = match &self.init {
            InitStrategy::Seeded {
                partition,
                perturbation,
            } => Some((partition, *perturbation, 0.0)),
            InitStrategy::SeededPlusRandom {
                partition,
                perturbation,
                random_fraction,
            } => Some((partition, *perturbation, *random_fraction)),
            _ => None,
        };
        if let Some((partition, perturbation, random_fraction)) = seed_params {
            if partition.len() != num_nodes {
                return Err(GaError::BadSeed {
                    message: format!(
                        "seed has {} labels for {} nodes",
                        partition.len(),
                        num_nodes
                    ),
                });
            }
            if partition.iter().any(|&p| p >= self.num_parts) {
                return Err(GaError::BadSeed {
                    message: "seed label out of range".into(),
                });
            }
            if !(0.0..=1.0).contains(&perturbation) {
                return Err(GaError::BadRate {
                    name: "perturbation",
                    value: perturbation,
                });
            }
            if !(0.0..=1.0).contains(&random_fraction) {
                return Err(GaError::BadRate {
                    name: "random_fraction",
                    value: random_fraction,
                });
            }
        }
        if let Some(reference) = &self.knux_reference {
            if reference.len() != num_nodes {
                return Err(GaError::BadSeed {
                    message: "KNUX reference has wrong length".into(),
                });
            }
        }
        Ok(())
    }
}

/// Outcome of a GA run.
#[derive(Debug, Clone)]
pub struct GaResult {
    /// Best partition discovered.
    pub best_partition: Partition,
    /// Its fitness.
    pub best_fitness: f64,
    /// Its reported cut (total cut for Fitness 1, worst cut for Fitness 2
    /// — the number the paper's tables print).
    pub best_cut: u64,
    /// Full metrics of the best partition.
    pub best_metrics: PartitionMetrics,
    /// Per-generation convergence record.
    pub history: ConvergenceHistory,
    /// Generations actually executed (may stop early on `target_cut`).
    pub generations_run: usize,
}

/// The single-population generational GA.
#[derive(Debug)]
pub struct GaEngine<'g> {
    graph: &'g CsrGraph,
    config: GaConfig,
    evaluator: FitnessEvaluator<'g>,
    rng: StdRng,
    population: Population,
    /// Best individual ever seen (elitism is per-generation; this is
    /// global).
    best_ever: Individual,
    /// The KNUX/DKNUX reference solution `I`.
    reference: Vec<u32>,
    history: ConvergenceHistory,
    scratch: EvalScratch,
    generations_run: usize,
}

impl<'g> GaEngine<'g> {
    /// Builds the engine: validates the configuration, generates and
    /// evaluates the initial population, and fixes the initial KNUX
    /// reference.
    pub fn new(graph: &'g CsrGraph, config: GaConfig) -> Result<Self, GaError> {
        config.validate(graph.num_nodes())?;
        let evaluator =
            FitnessEvaluator::new(graph, config.num_parts, config.fitness, config.lambda);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let chromosomes = config.init.generate(
            graph.num_nodes(),
            config.num_parts,
            config.population_size,
            &mut rng,
        );
        let population = Population::evaluate_batch(chromosomes, &evaluator, config.parallel);
        let best_ever = population.best().clone();
        let reference = config
            .knux_reference
            .clone()
            .unwrap_or_else(|| best_ever.chromosome.genes().to_vec());
        let mut history = ConvergenceHistory::with_capacity(config.generations);
        let best_cut = evaluator.reported_cut(best_ever.chromosome.genes());
        history.push(best_ever.fitness, population.mean_fitness(), best_cut);
        Ok(GaEngine {
            graph,
            config,
            evaluator,
            rng,
            population,
            best_ever,
            reference,
            history,
            scratch: EvalScratch::default(),
            generations_run: 0,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    /// Best individual found so far.
    pub fn best(&self) -> &Individual {
        &self.best_ever
    }

    /// Reported cut of the best individual found so far.
    pub fn best_cut(&self) -> u64 {
        self.evaluator
            .reported_cut(self.best_ever.chromosome.genes())
    }

    /// Convergence history so far (index 0 = initial population).
    pub fn history(&self) -> &ConvergenceHistory {
        &self.history
    }

    /// Copies of the `k` fittest individuals (for DPGA emigration).
    pub fn emigrants(&self, k: usize) -> Vec<Individual> {
        self.population
            .top_k(k)
            .into_iter()
            .map(|i| self.population.individuals[i].clone())
            .collect()
    }

    /// Copies of `k` uniformly random individuals (for the DPGA's random
    /// migration policy). Uses the supplied RNG so the DPGA driver stays
    /// deterministic.
    pub fn random_individuals<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<Individual> {
        (0..k.min(self.population.len()))
            .map(|_| {
                let idx = rng.gen_range(0..self.population.len());
                self.population.individuals[idx].clone()
            })
            .collect()
    }

    /// Receives migrants, replacing the worst local individuals, and
    /// updates the best-ever / DKNUX reference if a migrant is better.
    pub fn immigrate(&mut self, incoming: Vec<Individual>) {
        for ind in &incoming {
            if ind.fitness > self.best_ever.fitness {
                self.best_ever = ind.clone();
                if self.config.crossover.is_dynamic() {
                    self.reference = ind.chromosome.genes().to_vec();
                }
            }
        }
        self.population.replace_worst(incoming);
    }

    /// Runs one generation. Returns the best fitness after the step.
    ///
    /// The generation is split into two phases. **Breeding** (selection,
    /// crossover, mutation) is sequential: it owns the RNG, so its stream
    /// of draws is fixed by the seed alone. **Evaluation** (offspring hill
    /// climbing + fitness) is RNG-free and embarrassingly parallel: when
    /// [`GaConfig::parallel`] is set it fans across rayon workers and is
    /// reduced in index order, making the parallel path bit-identical to
    /// the sequential one.
    pub fn step(&mut self) -> f64 {
        let pop_size = self.config.population_size;
        let mut next: Vec<Individual> = Vec::with_capacity(pop_size);

        // Elites survive unchanged.
        for idx in self.population.top_k(self.config.elitism) {
            next.push(self.population.individuals[idx].clone());
        }

        // Phase 1 — breed offspring genes (sequential; consumes the RNG).
        let wanted = pop_size - next.len();
        let fitness_values = self.population.fitness_values();
        let mut offspring: Vec<Vec<u32>> = Vec::with_capacity(wanted + 1);
        while offspring.len() < wanted {
            let i = self.config.selection.select(&fitness_values, &mut self.rng);
            let j = self.config.selection.select(&fitness_values, &mut self.rng);
            let pa = self.population.individuals[i].chromosome.genes();
            let pb = self.population.individuals[j].chromosome.genes();

            let (mut c1, mut c2) = if self.rng.gen::<f64>() < self.config.crossover_rate {
                let ctx = CrossoverCtx {
                    graph: self.graph,
                    reference: Some(&self.reference),
                    parent_fitness: Some((fitness_values[i], fitness_values[j])),
                };
                self.config.crossover.apply(pa, pb, &ctx, &mut self.rng)
            } else {
                (pa.to_vec(), pb.to_vec())
            };

            for child in [&mut c1, &mut c2] {
                mutate(
                    child,
                    self.config.mutation_rate,
                    self.config.num_parts,
                    &mut self.rng,
                );
                if self.config.boundary_mutation_rate > 0.0 {
                    crate::ops::mutation::boundary_mutate(
                        child,
                        self.graph,
                        self.config.boundary_mutation_rate,
                        &mut self.rng,
                    );
                }
            }
            offspring.push(c1);
            offspring.push(c2);
        }
        // An odd quota breeds one spare child; drop it (its RNG draws
        // already happened, so the stream does not depend on this).
        offspring.truncate(wanted);

        // Phase 2 — hill-climb + evaluate (RNG-free; parallel when
        // configured, reduced in index order either way).
        let evaluator = &self.evaluator;
        let climb = self.config.hill_climb;
        let eval_one = |scratch: &mut EvalScratch, mut genes: Vec<u32>| {
            if let HillClimbMode::Offspring { passes } = climb {
                hill_climb(evaluator, &mut genes, passes);
            }
            let fitness = evaluator.evaluate_with(&genes, scratch);
            Individual {
                chromosome: Chromosome::new(genes),
                fitness,
            }
        };
        if self.config.parallel {
            // One scratch per worker chunk, not per offspring; min_len
            // keeps tiny populations inline (thread spawn would cost
            // more than the evaluations).
            next.extend(
                offspring
                    .into_par_iter()
                    .with_min_len(PAR_MIN_OFFSPRING)
                    .map_init(EvalScratch::default, eval_one)
                    .collect::<Vec<_>>(),
            );
        } else {
            let scratch = &mut self.scratch;
            next.extend(offspring.into_iter().map(|genes| eval_one(scratch, genes)));
        }

        self.population = Population { individuals: next };
        self.generations_run += 1;

        // Track global best; DKNUX continually re-targets it.
        let best_idx = self.population.best_index();
        if self.population.individuals[best_idx].fitness > self.best_ever.fitness {
            self.best_ever = self.population.individuals[best_idx].clone();
            if self.config.crossover.is_dynamic() {
                self.reference = self.best_ever.chromosome.genes().to_vec();
            }
        }

        // Elite polish: one swap-climb of the global best per generation.
        if self.config.elite_swap_passes > 0 {
            let mut genes = self.best_ever.chromosome.genes().to_vec();
            crate::hillclimb::swap_climb(
                &self.evaluator,
                &mut genes,
                self.config.elite_swap_passes,
            );
            let fitness = self.evaluator.evaluate_with(&genes, &mut self.scratch);
            if fitness > self.best_ever.fitness {
                self.best_ever = Individual {
                    chromosome: Chromosome::new(genes),
                    fitness,
                };
                if self.config.crossover.is_dynamic() {
                    self.reference = self.best_ever.chromosome.genes().to_vec();
                }
                // Feed the improvement back into the gene pool.
                self.population.replace_worst(vec![self.best_ever.clone()]);
            }
        }
        let best_cut = self
            .evaluator
            .reported_cut(self.best_ever.chromosome.genes());
        self.history.push(
            self.best_ever.fitness,
            self.population.mean_fitness(),
            best_cut,
        );
        self.best_ever.fitness
    }

    /// Runs the configured number of generations (stopping early if
    /// `target_cut` is reached) and returns the result. Applies the
    /// `FinalBest` hill climb if configured.
    pub fn run(mut self) -> GaResult {
        for _ in 0..self.config.generations {
            self.step();
            if let Some(target) = self.config.target_cut {
                if self.best_cut() <= target {
                    break;
                }
            }
        }
        self.finish()
    }

    /// Finalizes without running further generations (used by DPGA, which
    /// drives [`GaEngine::step`] itself).
    pub fn finish(mut self) -> GaResult {
        if let HillClimbMode::FinalBest { passes } = self.config.hill_climb {
            let mut genes = self.best_ever.chromosome.genes().to_vec();
            hill_climb(&self.evaluator, &mut genes, passes);
            let fitness = self.evaluator.evaluate_with(&genes, &mut self.scratch);
            if fitness > self.best_ever.fitness {
                self.best_ever = Individual {
                    chromosome: Chromosome::new(genes),
                    fitness,
                };
            }
        }
        let best_cut = self
            .evaluator
            .reported_cut(self.best_ever.chromosome.genes());
        let best_partition = self
            .best_ever
            .chromosome
            .clone()
            .into_partition(self.config.num_parts);
        let best_metrics = PartitionMetrics::compute(self.graph, &best_partition);
        GaResult {
            best_partition,
            best_fitness: self.best_ever.fitness,
            best_cut,
            best_metrics,
            history: self.history,
            generations_run: self.generations_run,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapart_graph::generators::paper_graph;
    use gapart_graph::partition::cut_size;

    fn small_config(num_parts: u32) -> GaConfig {
        GaConfig::paper_defaults(num_parts)
            .with_population_size(40)
            .with_generations(30)
            .with_seed(7)
    }

    #[test]
    fn run_improves_over_initial_population() {
        let g = paper_graph(78);
        let r = GaEngine::new(&g, small_config(4)).unwrap().run();
        assert!(r.history.best_fitness.last().unwrap() >= &r.history.best_fitness[0]);
        assert_eq!(r.generations_run, 30);
        assert_eq!(r.history.len(), 31);
    }

    #[test]
    fn best_fitness_is_monotone_nondecreasing() {
        let g = paper_graph(98);
        let r = GaEngine::new(&g, small_config(4)).unwrap().run();
        for w in r.history.best_fitness.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "best-ever fitness regressed");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = paper_graph(88);
        let a = GaEngine::new(&g, small_config(4)).unwrap().run();
        let b = GaEngine::new(&g, small_config(4)).unwrap().run();
        assert_eq!(a.best_partition, b.best_partition);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn parallel_and_sequential_evaluation_agree_exactly() {
        // The rayon fan-out only touches the RNG-free phase and reduces
        // in index order, so it must be bit-identical — including with
        // offspring hill climbing (the expensive path it exists for).
        // Small budget: the trait-level contract test covers the plain
        // configuration at full length; this one only needs the memetic
        // path. Population 40 still exceeds 2×PAR_MIN_OFFSPRING, so the
        // 4-thread pool genuinely fans out.
        let g = paper_graph(98);
        let config = |parallel: bool| {
            small_config(4)
                .with_generations(8)
                .with_hill_climb(HillClimbMode::Offspring { passes: 1 })
                .with_parallel(parallel)
        };
        // A 4-thread pool forces real fan-out even on single-core hosts.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let par = pool.install(|| GaEngine::new(&g, config(true)).unwrap().run());
        let seq = GaEngine::new(&g, config(false)).unwrap().run();
        assert_eq!(par.best_partition, seq.best_partition);
        assert_eq!(par.history, seq.history);
        assert_eq!(par.best_fitness, seq.best_fitness);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let g = paper_graph(88);
        let a = GaEngine::new(&g, small_config(4)).unwrap().run();
        let b = GaEngine::new(&g, small_config(4).with_seed(8))
            .unwrap()
            .run();
        assert_ne!(a.history.mean_fitness, b.history.mean_fitness);
    }

    #[test]
    fn result_metrics_match_partition() {
        let g = paper_graph(78);
        let r = GaEngine::new(&g, small_config(2)).unwrap().run();
        assert_eq!(r.best_metrics.total_cut, cut_size(&g, &r.best_partition));
        assert_eq!(r.best_cut, r.best_metrics.total_cut);
    }

    #[test]
    fn worst_cut_fitness_reports_max_cut() {
        let g = paper_graph(78);
        let cfg = small_config(4).with_fitness(FitnessKind::WorstCut);
        let r = GaEngine::new(&g, cfg).unwrap().run();
        assert_eq!(r.best_cut, r.best_metrics.max_cut);
    }

    #[test]
    fn seeded_run_never_loses_the_seed() {
        // With elitism, a run seeded from a good partition must end at
        // least as fit as the seed.
        let g = paper_graph(144);
        let seed = gapart_ibp::ibp_partition(&g, 4, &Default::default()).unwrap();
        let e = FitnessEvaluator::new(&g, 4, FitnessKind::TotalCut, 1.0);
        let seed_fit = e.evaluate(seed.labels());
        let cfg = small_config(4).seeded_from(&seed);
        let r = GaEngine::new(&g, cfg).unwrap().run();
        assert!(
            r.best_fitness >= seed_fit,
            "GA lost the seed: {} < {seed_fit}",
            r.best_fitness
        );
    }

    #[test]
    fn target_cut_stops_early() {
        let g = paper_graph(78);
        let mut cfg = small_config(2);
        cfg.target_cut = Some(u64::MAX); // trivially satisfied
        cfg.generations = 1000;
        let r = GaEngine::new(&g, cfg).unwrap().run();
        assert_eq!(r.generations_run, 1);
    }

    #[test]
    fn hill_climb_modes_run() {
        let g = paper_graph(78);
        let base = small_config(4).with_generations(5);
        let off = GaEngine::new(&g, base.clone()).unwrap().run();
        let memetic = GaEngine::new(
            &g,
            base.clone()
                .with_hill_climb(HillClimbMode::Offspring { passes: 2 }),
        )
        .unwrap()
        .run();
        let final_best = GaEngine::new(
            &g,
            base.with_hill_climb(HillClimbMode::FinalBest { passes: 10 }),
        )
        .unwrap()
        .run();
        // Memetic search should find a solution at least as good as plain
        // GA in this tiny budget (it embeds local search).
        assert!(memetic.best_fitness >= off.best_fitness);
        assert!(final_best.best_fitness >= off.best_fitness - 1e-12);
    }

    #[test]
    fn config_validation_catches_errors() {
        let g = paper_graph(78);
        let bad_parts = GaConfig::paper_defaults(0);
        assert!(matches!(
            GaEngine::new(&g, bad_parts).unwrap_err(),
            GaError::BadPartCount { .. }
        ));
        let mut bad_rate = small_config(2);
        bad_rate.crossover_rate = 1.5;
        assert!(matches!(
            GaEngine::new(&g, bad_rate).unwrap_err(),
            GaError::BadRate { .. }
        ));
        let mut bad_pop = small_config(2);
        bad_pop.population_size = 1;
        assert!(matches!(
            GaEngine::new(&g, bad_pop).unwrap_err(),
            GaError::BadPopulation { .. }
        ));
        let mut bad_elit = small_config(2);
        bad_elit.elitism = 40;
        assert!(matches!(
            GaEngine::new(&g, bad_elit).unwrap_err(),
            GaError::BadPopulation { .. }
        ));
        let mut bad_seed = small_config(2);
        bad_seed.init = InitStrategy::Seeded {
            partition: vec![0; 3],
            perturbation: 0.1,
        };
        assert!(matches!(
            GaEngine::new(&g, bad_seed).unwrap_err(),
            GaError::BadSeed { .. }
        ));
    }

    #[test]
    fn dknux_beats_two_point_on_equal_budget() {
        // The paper's headline claim, in miniature: same budget, DKNUX
        // reaches a better cut than 2-point crossover.
        let g = paper_graph(144);
        let base = GaConfig::paper_defaults(4)
            .with_population_size(60)
            .with_generations(60)
            .with_seed(11);
        let dknux = GaEngine::new(&g, base.clone()).unwrap().run();
        let two_point = GaEngine::new(&g, base.with_crossover(CrossoverOp::TwoPoint))
            .unwrap()
            .run();
        assert!(
            dknux.best_fitness > two_point.best_fitness,
            "DKNUX {} vs 2-point {}",
            dknux.best_fitness,
            two_point.best_fitness
        );
    }

    #[test]
    fn emigrants_and_immigration() {
        let g = paper_graph(78);
        let mut e1 = GaEngine::new(&g, small_config(4)).unwrap();
        let mut e2 = GaEngine::new(&g, small_config(4).with_seed(99)).unwrap();
        e1.step();
        e2.step();
        let migrants = e1.emigrants(3);
        assert_eq!(migrants.len(), 3);
        assert!(migrants[0].fitness >= migrants[1].fitness);
        let before_best = e2.best().fitness;
        e2.immigrate(migrants.clone());
        assert!(e2.best().fitness >= before_best.max(migrants[0].fitness));
    }
}
