//! The paper's fitness functions (§2) and an incremental-move evaluator.
//!
//! With unit λ the paper maximizes
//!
//! * Fitness 1: `−( Σ_q (|B(q)| − |V|/n)² + Σ_q C(q) )`
//! * Fitness 2: `−( Σ_q (|B(q)| − |V|/n)² + max_q C(q) )`
//!
//! where `C(q)` is the weight of edges leaving part `q` (so each cut edge
//! contributes to two parts in the Fitness-1 sum). Node/edge weights
//! generalize `|B(q)|` to weighted loads exactly as §2 defines.

use gapart_graph::CsrGraph;

/// Which of the paper's two objectives to optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitnessKind {
    /// Fitness 1: imbalance + λ · total communication cost `Σ_q C(q)`.
    TotalCut,
    /// Fitness 2: imbalance + λ · worst-part cost `max_q C(q)` — the
    /// non-differentiable objective gradient methods cannot handle (§4.3).
    WorstCut,
}

impl std::fmt::Display for FitnessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitnessKind::TotalCut => write!(f, "fitness1(total-cut)"),
            FitnessKind::WorstCut => write!(f, "fitness2(worst-cut)"),
        }
    }
}

/// Reusable scratch buffers for [`FitnessEvaluator::evaluate_with`].
#[derive(Debug, Default, Clone)]
pub struct EvalScratch {
    loads: Vec<u64>,
    cuts: Vec<u64>,
}

/// Evaluates chromosomes against a graph. Borrowing the graph keeps
/// evaluation allocation-free on the hot path (via [`EvalScratch`]).
#[derive(Debug, Clone)]
pub struct FitnessEvaluator<'g> {
    graph: &'g CsrGraph,
    num_parts: u32,
    kind: FitnessKind,
    lambda: f64,
    avg_load: f64,
}

impl<'g> FitnessEvaluator<'g> {
    /// Creates an evaluator for `num_parts` parts with weighting `lambda`
    /// (the paper's experiments use `lambda = 1`).
    pub fn new(graph: &'g CsrGraph, num_parts: u32, kind: FitnessKind, lambda: f64) -> Self {
        assert!(num_parts > 0, "num_parts must be positive");
        let avg_load = graph.total_node_weight() as f64 / num_parts as f64;
        FitnessEvaluator {
            graph,
            num_parts,
            kind,
            lambda,
            avg_load,
        }
    }

    /// The graph under evaluation.
    #[inline]
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// Number of parts.
    #[inline]
    pub fn num_parts(&self) -> u32 {
        self.num_parts
    }

    /// The objective being optimized.
    #[inline]
    pub fn kind(&self) -> FitnessKind {
        self.kind
    }

    /// The λ weighting between imbalance and communication cost.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Ideal per-part load.
    #[inline]
    pub fn avg_load(&self) -> f64 {
        self.avg_load
    }

    /// Fitness of `genes` (higher is better; always ≤ 0).
    pub fn evaluate(&self, genes: &[u32]) -> f64 {
        let mut scratch = EvalScratch::default();
        self.evaluate_with(genes, &mut scratch)
    }

    /// Allocation-free fitness evaluation using caller-provided scratch.
    pub fn evaluate_with(&self, genes: &[u32], scratch: &mut EvalScratch) -> f64 {
        let (loads, cuts) = self.tally(genes, scratch);
        let imbalance: f64 = loads
            .iter()
            .map(|&l| {
                let d = l as f64 - self.avg_load;
                d * d
            })
            .sum();
        let comm = match self.kind {
            FitnessKind::TotalCut => cuts.iter().sum::<u64>() as f64,
            FitnessKind::WorstCut => cuts.iter().copied().max().unwrap_or(0) as f64,
        };
        -(imbalance + self.lambda * comm)
    }

    /// The cut number the paper's tables report for this objective:
    /// `Σ_q C(q) / 2` for Fitness 1 (Tables 1–3), `max_q C(q)` for
    /// Fitness 2 (Tables 4–6).
    pub fn reported_cut(&self, genes: &[u32]) -> u64 {
        let mut scratch = EvalScratch::default();
        let (_, cuts) = self.tally(genes, &mut scratch);
        match self.kind {
            FitnessKind::TotalCut => cuts.iter().sum::<u64>() / 2,
            FitnessKind::WorstCut => cuts.iter().copied().max().unwrap_or(0),
        }
    }

    fn tally<'s>(&self, genes: &[u32], scratch: &'s mut EvalScratch) -> (&'s [u64], &'s [u64]) {
        let n = self.graph.num_nodes();
        assert_eq!(genes.len(), n, "chromosome length != node count");
        let p = self.num_parts as usize;
        scratch.loads.clear();
        scratch.loads.resize(p, 0);
        scratch.cuts.clear();
        scratch.cuts.resize(p, 0);
        for v in 0..n as u32 {
            let pv = genes[v as usize];
            debug_assert!(pv < self.num_parts, "gene out of range");
            scratch.loads[pv as usize] += self.graph.node_weight(v) as u64;
            let mut out = 0u64;
            for (&u, &w) in self
                .graph
                .neighbors(v)
                .iter()
                .zip(self.graph.edge_weights(v))
            {
                if genes[u as usize] != pv {
                    out += w as u64;
                }
            }
            scratch.cuts[pv as usize] += out;
        }
        (&scratch.loads, &scratch.cuts)
    }
}

/// Incremental-move evaluator: maintains per-part loads and cuts so that
/// the fitness effect of moving one node can be computed in `O(deg(v) +
/// P)` and applied in the same bound. This is what makes the paper's
/// boundary hill climbing (§3.6) affordable inside the GA loop.
#[derive(Debug, Clone)]
pub struct PartitionState<'g> {
    evaluator: FitnessEvaluator<'g>,
    labels: Vec<u32>,
    loads: Vec<u64>,
    cuts: Vec<u64>,
}

impl<'g> PartitionState<'g> {
    /// Builds the state for `genes` (one full `O(V + E)` tally).
    pub fn new(evaluator: FitnessEvaluator<'g>, genes: Vec<u32>) -> Self {
        let mut scratch = EvalScratch::default();
        let (loads, cuts) = evaluator.tally(&genes, &mut scratch);
        let (loads, cuts) = (loads.to_vec(), cuts.to_vec());
        PartitionState {
            evaluator,
            labels: genes,
            loads,
            cuts,
        }
    }

    /// Current labels.
    #[inline]
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Consumes the state, returning the label vector.
    pub fn into_labels(self) -> Vec<u32> {
        self.labels
    }

    /// Current fitness (same value [`FitnessEvaluator::evaluate`] would
    /// return for the current labels).
    pub fn fitness(&self) -> f64 {
        let imbalance: f64 = self
            .loads
            .iter()
            .map(|&l| {
                let d = l as f64 - self.evaluator.avg_load;
                d * d
            })
            .sum();
        let comm = match self.evaluator.kind {
            FitnessKind::TotalCut => self.cuts.iter().sum::<u64>() as f64,
            FitnessKind::WorstCut => self.cuts.iter().copied().max().unwrap_or(0) as f64,
        };
        -(imbalance + self.evaluator.lambda * comm)
    }

    /// Fitness change if node `v` moved to part `to` (0 if `to` is its
    /// current part). Does not mutate.
    pub fn gain(&self, v: u32, to: u32) -> f64 {
        let from = self.labels[v as usize];
        if from == to {
            return 0.0;
        }
        let g = self.evaluator.graph;
        let wv = g.node_weight(v) as u64;

        // Edge-weight sums from v into its own part and into `to`.
        let mut in_from = 0u64;
        let mut in_to = 0u64;
        let mut deg_w = 0u64;
        for (&u, &w) in g.neighbors(v).iter().zip(g.edge_weights(v)) {
            let r = self.labels[u as usize];
            deg_w += w as u64;
            if r == from {
                in_from += w as u64;
            } else if r == to {
                in_to += w as u64;
            }
        }
        // C(from) loses v's outgoing contribution (deg_w − in_from) but
        // gains the now-cut edges to v from its old part (in_from).
        // C(to) gains v's new outgoing contribution (deg_w − in_to) and
        // loses the previously-cut edges from `to` into v (in_to).
        let new_cut_from = self.cuts[from as usize] + 2 * in_from - deg_w;
        let new_cut_to = self.cuts[to as usize] + deg_w - 2 * in_to;

        let imb_delta = {
            let a = self.evaluator.avg_load;
            let lf = self.loads[from as usize] as f64;
            let lt = self.loads[to as usize] as f64;
            let w = wv as f64;
            ((lf - w - a).powi(2) - (lf - a).powi(2)) + ((lt + w - a).powi(2) - (lt - a).powi(2))
        };
        let comm_delta = match self.evaluator.kind {
            FitnessKind::TotalCut => {
                (new_cut_from + new_cut_to) as f64
                    - (self.cuts[from as usize] + self.cuts[to as usize]) as f64
            }
            FitnessKind::WorstCut => {
                let old_max = self.cuts.iter().copied().max().unwrap_or(0);
                let mut new_max = new_cut_from.max(new_cut_to);
                for (r, &c) in self.cuts.iter().enumerate() {
                    if r as u32 != from && r as u32 != to {
                        new_max = new_max.max(c);
                    }
                }
                new_max as f64 - old_max as f64
            }
        };
        -(imb_delta + self.evaluator.lambda * comm_delta)
    }

    /// Moves node `v` to part `to`, updating loads and cuts incrementally.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range.
    pub fn apply(&mut self, v: u32, to: u32) {
        assert!(to < self.evaluator.num_parts, "part out of range");
        let from = self.labels[v as usize];
        if from == to {
            return;
        }
        let g = self.evaluator.graph;
        let wv = g.node_weight(v) as u64;
        let mut in_from = 0u64;
        let mut in_to = 0u64;
        let mut deg_w = 0u64;
        for (&u, &w) in g.neighbors(v).iter().zip(g.edge_weights(v)) {
            let r = self.labels[u as usize];
            deg_w += w as u64;
            if r == from {
                in_from += w as u64;
            } else if r == to {
                in_to += w as u64;
            }
        }
        self.cuts[from as usize] = self.cuts[from as usize] + 2 * in_from - deg_w;
        self.cuts[to as usize] = self.cuts[to as usize] + deg_w - 2 * in_to;
        self.loads[from as usize] -= wv;
        self.loads[to as usize] += wv;
        self.labels[v as usize] = to;
    }

    /// Per-part cut values `C(q)` (directed: each cut edge counted in two
    /// parts).
    #[inline]
    pub fn cuts(&self) -> &[u64] {
        &self.cuts
    }

    /// Per-part weighted loads.
    #[inline]
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapart_graph::builder::from_edges;
    use gapart_graph::generators::paper_graph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn square() -> CsrGraph {
        from_edges(4, &[(0, 1), (2, 3), (0, 2), (1, 3)]).unwrap()
    }

    #[test]
    fn fitness1_matches_hand_computation() {
        let g = square();
        let e = FitnessEvaluator::new(&g, 2, FitnessKind::TotalCut, 1.0);
        // {0,1} vs {2,3}: balanced, 2 cut edges → Σ C(q) = 4.
        assert_eq!(e.evaluate(&[0, 0, 1, 1]), -4.0);
        // {0} vs {1,2,3}: imbalance (1-2)² + (3-2)² = 2, cuts 0-1 and 0-2
        // → Σ C(q) = 4 → fitness −6.
        assert_eq!(e.evaluate(&[0, 1, 1, 1]), -6.0);
    }

    #[test]
    fn fitness2_uses_max_part_cut() {
        let g = from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let e = FitnessEvaluator::new(&g, 3, FitnessKind::WorstCut, 1.0);
        // {0},{1,2},{3,4}: C = [4, 2, 2]; max 4. Loads [1,2,2], avg 5/3;
        // imbalance = (1-5/3)² + 2(2-5/3)² = 4/9 + 2/9 = 6/9.
        let f = e.evaluate(&[0, 1, 1, 2, 2]);
        assert!((f - -(6.0 / 9.0 + 4.0)).abs() < 1e-12, "{f}");
    }

    #[test]
    fn lambda_scales_communication_term() {
        let g = square();
        let e = FitnessEvaluator::new(&g, 2, FitnessKind::TotalCut, 2.0);
        assert_eq!(e.evaluate(&[0, 0, 1, 1]), -8.0);
    }

    #[test]
    fn paper_ordering_example() {
        // §3.1: on a path of 8 nodes, 11100011 < 11100001 (less balanced)
        // and 11100011 > 10101011 (6 inter-part edges).
        let edges: Vec<(u32, u32)> = (0..7).map(|i| (i, i + 1)).collect();
        let g = from_edges(8, &edges).unwrap();
        let e = FitnessEvaluator::new(&g, 2, FitnessKind::TotalCut, 1.0);
        let f_11100011 = e.evaluate(&[1, 1, 1, 0, 0, 0, 1, 1]);
        let f_11100001 = e.evaluate(&[1, 1, 1, 0, 0, 0, 0, 1]);
        let f_10101011 = e.evaluate(&[1, 0, 1, 0, 1, 0, 1, 1]);
        assert!(f_11100001 > f_11100011, "more balanced string should win");
        assert!(f_11100011 > f_10101011, "fewer cut edges should win");
    }

    #[test]
    fn reported_cut_total_vs_worst() {
        let g = square();
        let genes = [0u32, 0, 1, 1];
        let e1 = FitnessEvaluator::new(&g, 2, FitnessKind::TotalCut, 1.0);
        let e2 = FitnessEvaluator::new(&g, 2, FitnessKind::WorstCut, 1.0);
        assert_eq!(e1.reported_cut(&genes), 2); // Σ C / 2
        assert_eq!(e2.reported_cut(&genes), 2); // max C
    }

    #[test]
    fn scratch_reuse_matches_fresh_eval() {
        let g = paper_graph(78);
        let e = FitnessEvaluator::new(&g, 4, FitnessKind::TotalCut, 1.0);
        let mut scratch = EvalScratch::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let genes: Vec<u32> = (0..78).map(|_| rng.gen_range(0..4)).collect();
            assert_eq!(e.evaluate(&genes), e.evaluate_with(&genes, &mut scratch));
        }
    }

    #[test]
    fn state_fitness_matches_evaluator() {
        let g = paper_graph(98);
        for kind in [FitnessKind::TotalCut, FitnessKind::WorstCut] {
            let e = FitnessEvaluator::new(&g, 4, kind, 1.0);
            let mut rng = StdRng::seed_from_u64(7);
            let genes: Vec<u32> = (0..98).map(|_| rng.gen_range(0..4)).collect();
            let state = PartitionState::new(e.clone(), genes.clone());
            assert!(
                (state.fitness() - e.evaluate(&genes)).abs() < 1e-9,
                "{kind}"
            );
        }
    }

    #[test]
    fn gain_predicts_apply_exactly() {
        let g = paper_graph(88);
        for kind in [FitnessKind::TotalCut, FitnessKind::WorstCut] {
            let e = FitnessEvaluator::new(&g, 8, kind, 1.0);
            let mut rng = StdRng::seed_from_u64(11);
            let genes: Vec<u32> = (0..88).map(|_| rng.gen_range(0..8)).collect();
            let mut state = PartitionState::new(e.clone(), genes);
            for _ in 0..200 {
                let v = rng.gen_range(0..88u32);
                let to = rng.gen_range(0..8u32);
                let before = state.fitness();
                let predicted = state.gain(v, to);
                state.apply(v, to);
                let after = state.fitness();
                assert!(
                    (after - before - predicted).abs() < 1e-6,
                    "{kind}: predicted {predicted}, actual {}",
                    after - before
                );
                // Cross-check against a full evaluation.
                assert!((after - e.evaluate(state.labels())).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn weighted_graph_state_consistency() {
        use gapart_graph::GraphBuilder;
        let g = GraphBuilder::with_nodes(5)
            .weighted_edge(0, 1, 3)
            .weighted_edge(1, 2, 2)
            .weighted_edge(2, 3, 5)
            .weighted_edge(3, 4, 1)
            .weighted_edge(4, 0, 4)
            .node_weights(vec![2, 1, 3, 1, 2])
            .build()
            .unwrap();
        let e = FitnessEvaluator::new(&g, 2, FitnessKind::WorstCut, 1.5);
        let mut state = PartitionState::new(e.clone(), vec![0, 0, 1, 1, 0]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let v = rng.gen_range(0..5u32);
            let to = rng.gen_range(0..2u32);
            let predicted = state.gain(v, to);
            let before = state.fitness();
            state.apply(v, to);
            assert!((state.fitness() - before - predicted).abs() < 1e-9);
            assert!((state.fitness() - e.evaluate(state.labels())).abs() < 1e-9);
        }
    }

    #[test]
    fn gain_to_same_part_is_zero() {
        let g = square();
        let e = FitnessEvaluator::new(&g, 2, FitnessKind::TotalCut, 1.0);
        let state = PartitionState::new(e, vec![0, 0, 1, 1]);
        assert_eq!(state.gain(0, 0), 0.0);
    }

    use gapart_graph::CsrGraph;
}
