//! Populations and the initialization strategies of §3.5.

use crate::chromosome::Chromosome;
use crate::fitness::{EvalScratch, FitnessEvaluator};
use rand::seq::SliceRandom;
use rand::Rng;
use rayon::prelude::*;

/// A chromosome with its cached fitness.
#[derive(Debug, Clone, PartialEq)]
pub struct Individual {
    /// The candidate solution.
    pub chromosome: Chromosome,
    /// Cached fitness (higher is better).
    pub fitness: f64,
}

/// How the initial population is generated (§3.5: random, or "seeded with
/// a pre-estimated heuristic solution such as that obtained through an
/// Index Based Partitioning scheme or the results of recursive spectral
/// bisection").
#[derive(Debug, Clone, PartialEq)]
pub enum InitStrategy {
    /// Every gene uniform over parts. Maximally diverse, unbalanced.
    Random,
    /// Each individual is a random permutation cut into equal blocks —
    /// perfectly balanced but locality-blind.
    BalancedRandom,
    /// Seed with a heuristic partition. The first individual is the exact
    /// seed; the rest perturb it by reassigning each gene with probability
    /// `perturbation` (keeps the population near the seed but diverse
    /// enough for crossover to work with).
    Seeded {
        /// The heuristic solution (one label per node).
        partition: Vec<u32>,
        /// Per-gene perturbation probability for the non-first
        /// individuals.
        perturbation: f64,
    },
    /// Seed *and* explore: the first individual is the exact seed, a
    /// `1 − random_fraction` share are perturbed copies, and the rest are
    /// balanced-random. Pure `Seeded` populations collapse onto the seed
    /// (DKNUX is a consensus operator), leaving the GA unable to escape
    /// the seed's local optimum; the random share restores the diversity
    /// the search feeds on, while elitism guarantees the result is never
    /// worse than the seed.
    SeededPlusRandom {
        /// The heuristic solution (one label per node).
        partition: Vec<u32>,
        /// Per-gene perturbation probability for the perturbed copies.
        perturbation: f64,
        /// Fraction of the population drawn balanced-random.
        random_fraction: f64,
    },
}

impl InitStrategy {
    /// Generates `pop_size` chromosomes of length `n` over `num_parts`
    /// parts.
    ///
    /// # Panics
    ///
    /// Panics if a `Seeded` partition has the wrong length or out-of-range
    /// labels (configuration validation happens earlier, in the engine).
    pub fn generate<R: Rng + ?Sized>(
        &self,
        n: usize,
        num_parts: u32,
        pop_size: usize,
        rng: &mut R,
    ) -> Vec<Chromosome> {
        match self {
            InitStrategy::Random => (0..pop_size)
                .map(|_| Chromosome::new((0..n).map(|_| rng.gen_range(0..num_parts)).collect()))
                .collect(),
            InitStrategy::BalancedRandom => (0..pop_size)
                .map(|_| {
                    let mut order: Vec<u32> = (0..n as u32).collect();
                    order.shuffle(rng);
                    let mut genes = vec![0u32; n];
                    let base = n / num_parts as usize;
                    let extra = n % num_parts as usize;
                    let mut pos = 0usize;
                    for part in 0..num_parts {
                        let take = base + usize::from((part as usize) < extra);
                        for &v in &order[pos..pos + take] {
                            genes[v as usize] = part;
                        }
                        pos += take;
                    }
                    Chromosome::new(genes)
                })
                .collect(),
            InitStrategy::Seeded {
                partition,
                perturbation,
            } => {
                assert_eq!(partition.len(), n, "seed partition length mismatch");
                assert!(
                    partition.iter().all(|&p| p < num_parts),
                    "seed partition label out of range"
                );
                (0..pop_size)
                    .map(|i| {
                        let mut genes = partition.clone();
                        if i > 0 {
                            crate::ops::mutation::mutate(&mut genes, *perturbation, num_parts, rng);
                        }
                        Chromosome::new(genes)
                    })
                    .collect()
            }
            InitStrategy::SeededPlusRandom {
                partition,
                perturbation,
                random_fraction,
            } => {
                assert!(
                    (0.0..=1.0).contains(random_fraction),
                    "random_fraction must be a probability"
                );
                let random_count =
                    ((pop_size as f64 * random_fraction).round() as usize).min(pop_size - 1);
                let seeded_count = pop_size - random_count;
                let mut out = InitStrategy::Seeded {
                    partition: partition.clone(),
                    perturbation: *perturbation,
                }
                .generate(n, num_parts, seeded_count, rng);
                out.extend(InitStrategy::BalancedRandom.generate(n, num_parts, random_count, rng));
                out
            }
        }
    }
}

/// A population of evaluated individuals.
#[derive(Debug, Clone)]
pub struct Population {
    /// The individuals, in no particular order.
    pub individuals: Vec<Individual>,
}

impl Population {
    /// Evaluates `chromosomes` and wraps them into a population.
    pub fn evaluate(chromosomes: Vec<Chromosome>, evaluator: &FitnessEvaluator<'_>) -> Self {
        let mut scratch = EvalScratch::default();
        let individuals = chromosomes
            .into_iter()
            .map(|c| {
                let fitness = evaluator.evaluate_with(c.genes(), &mut scratch);
                Individual {
                    chromosome: c,
                    fitness,
                }
            })
            .collect();
        Population { individuals }
    }

    /// Like [`Population::evaluate`] but fanning the fitness evaluations
    /// across rayon workers when `parallel` is true. Fitness is a pure
    /// function of the genes and results are reduced in index order, so
    /// both paths build identical populations.
    pub fn evaluate_batch(
        chromosomes: Vec<Chromosome>,
        evaluator: &FitnessEvaluator<'_>,
        parallel: bool,
    ) -> Self {
        if !parallel {
            return Self::evaluate(chromosomes, evaluator);
        }
        let individuals = chromosomes
            .into_par_iter()
            .with_min_len(crate::engine::PAR_MIN_OFFSPRING)
            .map_init(EvalScratch::default, |scratch, c| {
                let fitness = evaluator.evaluate_with(c.genes(), scratch);
                Individual {
                    chromosome: c,
                    fitness,
                }
            })
            .collect();
        Population { individuals }
    }

    /// Number of individuals.
    pub fn len(&self) -> usize {
        self.individuals.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.individuals.is_empty()
    }

    /// Index of the fittest individual (first among ties).
    ///
    /// # Panics
    ///
    /// Panics on an empty population.
    pub fn best_index(&self) -> usize {
        assert!(!self.is_empty(), "empty population has no best");
        let mut best = 0usize;
        for (i, ind) in self.individuals.iter().enumerate().skip(1) {
            if ind.fitness > self.individuals[best].fitness {
                best = i;
            }
        }
        best
    }

    /// The fittest individual.
    pub fn best(&self) -> &Individual {
        &self.individuals[self.best_index()]
    }

    /// Index of the least-fit individual (first among ties).
    pub fn worst_index(&self) -> usize {
        assert!(!self.is_empty(), "empty population has no worst");
        let mut worst = 0usize;
        for (i, ind) in self.individuals.iter().enumerate().skip(1) {
            if ind.fitness < self.individuals[worst].fitness {
                worst = i;
            }
        }
        worst
    }

    /// Mean fitness.
    pub fn mean_fitness(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.individuals.iter().map(|i| i.fitness).sum::<f64>() / self.len() as f64
    }

    /// Fitness values in population order (for the selection schemes).
    pub fn fitness_values(&self) -> Vec<f64> {
        self.individuals.iter().map(|i| i.fitness).collect()
    }

    /// Indices of the `k` fittest individuals, fittest first.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by(|&a, &b| {
            // total_cmp: deterministic total order, no NaN panic.
            self.individuals[b]
                .fitness
                .total_cmp(&self.individuals[a].fitness)
        });
        order.truncate(k);
        order
    }

    /// Replaces the `k` worst individuals with `incoming` (used by DPGA
    /// migration: "copies of its best individuals" arrive from
    /// neighbours). Extra incoming individuals beyond the population size
    /// are ignored.
    pub fn replace_worst(&mut self, incoming: Vec<Individual>) {
        let k = incoming.len().min(self.len());
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by(|&a, &b| {
            // total_cmp: deterministic total order, no NaN panic.
            self.individuals[a]
                .fitness
                .total_cmp(&self.individuals[b].fitness)
        });
        for (slot, ind) in order.into_iter().zip(incoming.into_iter().take(k)) {
            self.individuals[slot] = ind;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::FitnessKind;
    use gapart_graph::generators::paper_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_init_covers_all_parts() {
        let mut rng = StdRng::seed_from_u64(1);
        let chroms = InitStrategy::Random.generate(200, 4, 3, &mut rng);
        assert_eq!(chroms.len(), 3);
        for c in &chroms {
            assert!(c.genes().iter().all(|&g| g < 4));
            for part in 0..4u32 {
                assert!(c.genes().contains(&part), "part {part} missing");
            }
        }
    }

    #[test]
    fn balanced_random_is_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        let chroms = InitStrategy::BalancedRandom.generate(103, 4, 5, &mut rng);
        for c in &chroms {
            let mut counts = [0usize; 4];
            for &g in c.genes() {
                counts[g as usize] += 1;
            }
            let min = counts.iter().min().unwrap();
            let max = counts.iter().max().unwrap();
            assert!(max - min <= 1, "{counts:?}");
        }
    }

    #[test]
    fn seeded_keeps_exact_first_individual() {
        let seed: Vec<u32> = (0..50).map(|i| i % 3).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let chroms = InitStrategy::Seeded {
            partition: seed.clone(),
            perturbation: 0.2,
        }
        .generate(50, 3, 10, &mut rng);
        assert_eq!(chroms[0].genes(), &seed[..]);
        // Later individuals perturbed but close.
        let distant = chroms[1..]
            .iter()
            .filter(|c| c.genes() == &seed[..])
            .count();
        assert!(distant < 9, "perturbation did nothing");
        for c in &chroms[1..] {
            let hamming = c.hamming(&Chromosome::new(seed.clone()));
            assert!(hamming <= 25, "perturbed too far: {hamming}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn seeded_rejects_wrong_length() {
        let mut rng = StdRng::seed_from_u64(1);
        InitStrategy::Seeded {
            partition: vec![0; 3],
            perturbation: 0.1,
        }
        .generate(5, 2, 2, &mut rng);
    }

    #[test]
    fn population_best_worst_mean() {
        let g = paper_graph(78);
        let e = FitnessEvaluator::new(&g, 2, FitnessKind::TotalCut, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let chroms = InitStrategy::BalancedRandom.generate(78, 2, 20, &mut rng);
        let pop = Population::evaluate(chroms, &e);
        let best = pop.best().fitness;
        let worst = pop.individuals[pop.worst_index()].fitness;
        let mean = pop.mean_fitness();
        assert!(best >= mean && mean >= worst);
        assert_eq!(pop.fitness_values().len(), 20);
    }

    #[test]
    fn top_k_is_sorted_descending() {
        let g = paper_graph(78);
        let e = FitnessEvaluator::new(&g, 2, FitnessKind::TotalCut, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let chroms = InitStrategy::Random.generate(78, 2, 30, &mut rng);
        let pop = Population::evaluate(chroms, &e);
        let top = pop.top_k(5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(pop.individuals[w[0]].fitness >= pop.individuals[w[1]].fitness);
        }
        assert_eq!(top[0], pop.best_index());
    }

    #[test]
    fn replace_worst_upgrades_population() {
        let g = paper_graph(78);
        let e = FitnessEvaluator::new(&g, 2, FitnessKind::TotalCut, 1.0);
        let mut rng = StdRng::seed_from_u64(6);
        let chroms = InitStrategy::Random.generate(78, 2, 10, &mut rng);
        let mut pop = Population::evaluate(chroms, &e);
        let old_worst = pop.individuals[pop.worst_index()].fitness;
        // Migrate in two copies of the best.
        let best = pop.best().clone();
        pop.replace_worst(vec![best.clone(), best]);
        let new_worst = pop.individuals[pop.worst_index()].fitness;
        assert!(new_worst >= old_worst);
        assert_eq!(pop.len(), 10);
    }
}
