//! The paper's representation (§3.1): an individual is a vector whose
//! `i`-th element names the part that node `i` is allocated to.

use gapart_graph::Partition;

/// A candidate solution: `genes[i]` is the part label of node `i`.
///
/// Kept deliberately thin — a newtype over `Vec<u32>` with the helpers the
/// operators need. Fitness is stored alongside in
/// [`crate::population::Individual`], not here, so chromosomes stay
/// hashable/comparable by content.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Chromosome {
    genes: Vec<u32>,
}

impl Chromosome {
    /// Wraps a gene vector.
    pub fn new(genes: Vec<u32>) -> Self {
        Chromosome { genes }
    }

    /// From an existing partition.
    pub fn from_partition(p: &Partition) -> Self {
        Chromosome {
            genes: p.labels().to_vec(),
        }
    }

    /// Into a validated [`Partition`].
    ///
    /// # Panics
    ///
    /// Panics if any gene is `≥ num_parts` — operators never produce such
    /// genes, so this indicates an internal bug.
    pub fn into_partition(self, num_parts: u32) -> Partition {
        // gapart-lint: allow(lib-panic) -- genes come only from operators that write labels < num_parts; documented as a bug indicator above
        Partition::new(self.genes, num_parts).expect("operators keep genes in range")
    }

    /// Gene (part label) of node `v`.
    #[inline]
    pub fn gene(&self, v: u32) -> u32 {
        self.genes[v as usize]
    }

    /// Mutable access for operators.
    #[inline]
    pub fn genes_mut(&mut self) -> &mut [u32] {
        &mut self.genes
    }

    /// The raw gene slice.
    #[inline]
    pub fn genes(&self) -> &[u32] {
        &self.genes
    }

    /// Number of genes (nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.genes.len()
    }

    /// Whether the chromosome is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }

    /// Hamming distance to another chromosome (number of differing genes).
    /// Useful for diversity diagnostics.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn hamming(&self, other: &Chromosome) -> usize {
        assert_eq!(self.len(), other.len(), "chromosome length mismatch");
        self.genes
            .iter()
            .zip(&other.genes)
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl From<Vec<u32>> for Chromosome {
    fn from(genes: Vec<u32>) -> Self {
        Chromosome::new(genes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_with_partition() {
        let p = Partition::round_robin(6, 3);
        let c = Chromosome::from_partition(&p);
        assert_eq!(c.genes(), &[0, 1, 2, 0, 1, 2]);
        let p2 = c.into_partition(3);
        assert_eq!(p, p2);
    }

    #[test]
    fn hamming_counts_differences() {
        let a = Chromosome::new(vec![0, 0, 1, 1]);
        let b = Chromosome::new(vec![0, 1, 1, 0]);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn paper_example_strings() {
        // §3.1: "11100011 represents the mapping that assigns nodes
        // 1,2,3,7,8 to part 1 and nodes 4,5,6 to part 0" (1-indexed).
        let c = Chromosome::new(vec![1, 1, 1, 0, 0, 0, 1, 1]);
        assert_eq!(c.gene(0), 1);
        assert_eq!(c.gene(3), 0);
        assert_eq!(c.len(), 8);
    }

    #[test]
    #[should_panic(expected = "in range")]
    fn into_partition_checks_range() {
        Chromosome::new(vec![0, 5]).into_partition(2);
    }
}
