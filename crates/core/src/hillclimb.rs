//! Boundary-vertex hill climbing (§3.6).
//!
//! "Only the 'boundary points' of each part (with neighbors in other
//! parts) are examined to see if migrating them to the appropriate
//! neighboring part improves fitness." Implemented on top of the
//! incremental [`PartitionState`] so each candidate move costs
//! `O(deg(v) + P)` instead of a full re-evaluation.

use crate::fitness::{FitnessEvaluator, PartitionState};

/// Statistics from a hill-climbing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClimbStats {
    /// Vertices moved.
    pub moves: usize,
    /// Total fitness improvement (≥ 0).
    pub gain: f64,
    /// Passes executed before reaching a local optimum (or the cap).
    pub passes: usize,
}

/// Hill-climbs `genes` in place: repeatedly sweeps the boundary vertices,
/// moving each to the *best* strictly-improving neighbouring part, until a
/// full pass makes no move or `max_passes` is reached. Returns statistics.
///
/// Only parts that actually appear among a vertex's neighbours are
/// candidate destinations ("the appropriate neighboring part"), which both
/// matches the paper and keeps the sweep `O(boundary × deg)`.
pub fn hill_climb(
    evaluator: &FitnessEvaluator<'_>,
    genes: &mut Vec<u32>,
    max_passes: usize,
) -> ClimbStats {
    let graph = evaluator.graph();
    let mut state = PartitionState::new(evaluator.clone(), std::mem::take(genes));
    let mut stats = ClimbStats {
        moves: 0,
        gain: 0.0,
        passes: 0,
    };
    let mut candidate_parts: Vec<u32> = Vec::with_capacity(8);
    for _ in 0..max_passes {
        stats.passes += 1;
        let mut moved = false;
        for v in 0..graph.num_nodes() as u32 {
            let pv = state.labels()[v as usize];
            candidate_parts.clear();
            for &u in graph.neighbors(v) {
                let pu = state.labels()[u as usize];
                if pu != pv && !candidate_parts.contains(&pu) {
                    candidate_parts.push(pu);
                }
            }
            if candidate_parts.is_empty() {
                continue; // interior vertex
            }
            let mut best_gain = 0.0f64;
            let mut best_part = pv;
            for &q in &candidate_parts {
                let g = state.gain(v, q);
                if g > best_gain + 1e-12 {
                    best_gain = g;
                    best_part = q;
                }
            }
            if best_part != pv {
                state.apply(v, best_part);
                stats.moves += 1;
                stats.gain += best_gain;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    *genes = state.into_labels();
    stats
}

/// Swap-aware hill climbing: alternates the single-move sweep of
/// [`hill_climb`] with a *pair-swap* sweep that exchanges two boundary
/// vertices between parts. Swaps preserve balance exactly, so they escape
/// the single-move local optima that the squared imbalance term creates
/// (a lone migration pays an `O(load)` imbalance penalty that usually
/// outweighs a 1–2 edge cut gain; an exchange pays none).
///
/// Cost per pass is `O(B² · (deg + P))` for `B` boundary vertices — fine
/// for polishing elites, too slow for every offspring.
pub fn swap_climb(
    evaluator: &FitnessEvaluator<'_>,
    genes: &mut Vec<u32>,
    max_passes: usize,
) -> ClimbStats {
    let graph = evaluator.graph();
    let n = graph.num_nodes() as u32;
    let mut state = PartitionState::new(evaluator.clone(), std::mem::take(genes));
    let mut stats = ClimbStats {
        moves: 0,
        gain: 0.0,
        passes: 0,
    };
    for _ in 0..max_passes {
        stats.passes += 1;
        let mut improved = false;

        // Phase 1: greedy single moves (cheap).
        for v in 0..n {
            let pv = state.labels()[v as usize];
            let mut best_gain = 1e-12;
            let mut best_part = pv;
            for &u in graph.neighbors(v) {
                let q = state.labels()[u as usize];
                if q != pv {
                    let g = state.gain(v, q);
                    if g > best_gain {
                        best_gain = g;
                        best_part = q;
                    }
                }
            }
            if best_part != pv {
                state.apply(v, best_part);
                stats.moves += 1;
                stats.gain += best_gain;
                improved = true;
            }
        }

        // Phase 2: boundary pair swaps. For each boundary vertex v with a
        // neighbouring part q, tentatively move v → q, then look for the
        // best counter-move u → p among q's boundary vertices.
        let boundary: Vec<u32> = (0..n)
            .filter(|&v| {
                let pv = state.labels()[v as usize];
                graph
                    .neighbors(v)
                    .iter()
                    .any(|&u| state.labels()[u as usize] != pv)
            })
            .collect();
        for &v in &boundary {
            let p = state.labels()[v as usize];
            let mut cand: Vec<u32> = Vec::with_capacity(4);
            for &u in graph.neighbors(v) {
                let q = state.labels()[u as usize];
                if q != p && !cand.contains(&q) {
                    cand.push(q);
                }
            }
            for q in cand {
                // v may have moved in an earlier successful swap; always
                // work relative to its current part.
                let cur = state.labels()[v as usize];
                if cur == q {
                    continue;
                }
                let g1 = state.gain(v, q);
                state.apply(v, q);
                // Best counter-move from q back to cur (exclude v itself).
                let mut best: Option<(u32, f64)> = None;
                for &u in &boundary {
                    if u == v || state.labels()[u as usize] != q {
                        continue;
                    }
                    let g2 = state.gain(u, cur);
                    if best.is_none_or(|(_, bg)| g2 > bg) {
                        best = Some((u, g2));
                    }
                }
                match best {
                    Some((u, g2)) if g1 + g2 > 1e-12 => {
                        state.apply(u, cur);
                        stats.moves += 2;
                        stats.gain += g1 + g2;
                        improved = true;
                    }
                    _ => {
                        state.apply(v, cur); // revert the tentative move
                    }
                }
            }
        }

        if !improved {
            break;
        }
    }
    *genes = state.into_labels();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::FitnessKind;
    use gapart_graph::builder::from_edges;
    use gapart_graph::generators::paper_graph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn repairs_a_single_misplaced_vertex() {
        // Path 0-1-2-3-4-5 with node 1 on the wrong side.
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let e = FitnessEvaluator::new(&g, 2, FitnessKind::TotalCut, 1.0);
        let mut genes = vec![0u32, 1, 0, 1, 1, 1];
        let before = e.evaluate(&genes);
        let stats = hill_climb(&e, &mut genes, 10);
        let after = e.evaluate(&genes);
        assert!(after > before);
        assert!((after - before - stats.gain).abs() < 1e-9);
        assert_eq!(genes, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn never_decreases_fitness() {
        let g = paper_graph(144);
        let mut rng = StdRng::seed_from_u64(5);
        for kind in [FitnessKind::TotalCut, FitnessKind::WorstCut] {
            let e = FitnessEvaluator::new(&g, 4, kind, 1.0);
            for _ in 0..5 {
                let mut genes: Vec<u32> = (0..144).map(|_| rng.gen_range(0..4)).collect();
                let before = e.evaluate(&genes);
                hill_climb(&e, &mut genes, 8);
                assert!(e.evaluate(&genes) >= before, "{kind}");
            }
        }
    }

    #[test]
    fn reaches_local_optimum() {
        // After convergence, no single boundary move may improve fitness.
        let g = paper_graph(98);
        let e = FitnessEvaluator::new(&g, 4, FitnessKind::TotalCut, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut genes: Vec<u32> = (0..98).map(|_| rng.gen_range(0..4)).collect();
        hill_climb(&e, &mut genes, 100);
        let state = crate::fitness::PartitionState::new(e.clone(), genes.clone());
        for v in 0..98u32 {
            for q in 0..4u32 {
                assert!(
                    state.gain(v, q) <= 1e-9,
                    "improving move remained: {v} -> {q}"
                );
            }
        }
    }

    #[test]
    fn improves_random_partitions_substantially() {
        let g = paper_graph(167);
        let e = FitnessEvaluator::new(&g, 4, FitnessKind::TotalCut, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut genes: Vec<u32> = (0..167).map(|_| rng.gen_range(0..4)).collect();
        let before = e.reported_cut(&genes);
        hill_climb(&e, &mut genes, 30);
        let after = e.reported_cut(&genes);
        assert!(
            after < before / 2,
            "hill climbing should at least halve a random cut: {before} -> {after}"
        );
    }

    #[test]
    fn stats_report_passes() {
        let g = paper_graph(78);
        let e = FitnessEvaluator::new(&g, 2, FitnessKind::TotalCut, 1.0);
        // Already-optimal-ish input: single pass, no moves.
        let mut genes: Vec<u32> = vec![0; 78];
        let stats = hill_climb(&e, &mut genes, 5);
        assert_eq!(stats.moves, 0);
        assert_eq!(stats.passes, 1);
    }

    #[test]
    fn zero_passes_is_identity() {
        let g = paper_graph(78);
        let e = FitnessEvaluator::new(&g, 4, FitnessKind::TotalCut, 1.0);
        let mut genes: Vec<u32> = (0..78).map(|v| v % 4).collect();
        let before = genes.clone();
        let stats = hill_climb(&e, &mut genes, 0);
        assert_eq!(genes, before);
        assert_eq!(stats.moves, 0);
    }
}
