//! The coarse-grained distributed-population GA (§3.4).
//!
//! Individuals are split across subpopulations placed on the nodes of a
//! virtual architecture (the paper: 16 subpopulations on a 4-d hypercube,
//! 320 individuals total). Crossover happens only within a subpopulation;
//! every `migration_interval` generations each subpopulation sends copies
//! of its best individuals to its topological neighbours, which adopt
//! them in place of their worst members.
//!
//! Execution is **lockstep**: all subpopulations advance the same number
//! of generations between synchronized migration rounds. Because each
//! subpopulation owns an independent seeded RNG and migration happens at
//! fixed generation boundaries, the parallel (rayon) and sequential
//! drivers produce bit-identical results — asserted in the tests.

use crate::engine::{GaConfig, GaEngine, GaResult};
use crate::error::GaError;
use crate::history::ConvergenceHistory;
use crate::population::Individual;
use crate::topology::Topology;
use gapart_graph::partition::PartitionMetrics;
use gapart_graph::{CsrGraph, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Which individuals a subpopulation emits at a migration round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPolicy {
    /// Copies of the `k` fittest individuals — the paper's policy
    /// ("communicates copies of its best individuals").
    Best,
    /// `k` uniformly random individuals — the drift-preserving control
    /// case for the ablation study.
    Random,
}

/// Configuration of a DPGA run.
#[derive(Debug, Clone)]
pub struct DpgaConfig {
    /// Per-subpopulation GA template. `base.population_size` is the
    /// **total** population; it is divided evenly across subpopulations
    /// (any remainder goes to the lowest-numbered ones).
    pub base: GaConfig,
    /// The virtual interconnect.
    pub topology: Topology,
    /// Generations between migration rounds.
    pub migration_interval: usize,
    /// Best individuals sent to *each* neighbour per round.
    pub num_migrants: usize,
    /// Which individuals migrate (paper: the best).
    pub migration_policy: MigrationPolicy,
    /// Run subpopulations on rayon worker threads (`false` = sequential;
    /// results are identical either way).
    pub parallel: bool,
    /// Optional per-subpopulation initialization override: subpopulation
    /// `i` uses `init_overrides[i % len]` instead of `base.init`. The
    /// heterogeneous-island pattern (some islands seeded, some random)
    /// keeps exploration alive when a strong heuristic seed would
    /// otherwise collapse every island onto its local optimum — DKNUX is
    /// a consensus operator, so homogeneous seeded islands stop searching.
    pub init_overrides: Option<Vec<crate::population::InitStrategy>>,
}

impl DpgaConfig {
    /// The paper's configuration: 16 subpopulations on a 4-d hypercube,
    /// total population 320, `p_c = 0.7`, `p_m = 0.01`, DKNUX.
    pub fn paper(num_parts: u32) -> Self {
        DpgaConfig {
            base: GaConfig::paper_defaults(num_parts),
            topology: Topology::PAPER,
            migration_interval: 5,
            num_migrants: 2,
            migration_policy: MigrationPolicy::Best,
            parallel: true,
            init_overrides: None,
        }
    }

    /// Sizing for the *coarsest* graph of a multilevel V-cycle: the
    /// [`GaConfig::coarse_defaults`] budget split across 4 islands on a
    /// 2-d hypercube (16 islands would leave 4 individuals each). The
    /// registry's `mldpga` method wraps a DPGA with this configuration.
    pub fn coarse(num_parts: u32) -> Self {
        let mut config = Self::paper(num_parts);
        config.base = GaConfig::coarse_defaults(num_parts);
        config.topology = Topology::Hypercube(2);
        config
    }

    /// Replaces the base GA config.
    #[must_use]
    pub fn with_base(mut self, base: GaConfig) -> Self {
        self.base = base;
        self
    }

    /// Replaces the topology.
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    fn validate(&self) -> Result<(), GaError> {
        let subpops = self.topology.size();
        if subpops == 0 {
            return Err(GaError::BadTopology {
                message: "topology has no nodes".into(),
            });
        }
        if self.base.population_size < 2 * subpops {
            return Err(GaError::BadTopology {
                message: format!(
                    "total population {} cannot give {} subpopulations at least 2 individuals each",
                    self.base.population_size, subpops
                ),
            });
        }
        if self.migration_interval == 0 {
            return Err(GaError::BadTopology {
                message: "migration interval must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Outcome of a DPGA run.
#[derive(Debug, Clone)]
pub struct DpgaResult {
    /// Best partition across all subpopulations.
    pub best_partition: Partition,
    /// Its fitness.
    pub best_fitness: f64,
    /// Its reported cut (total or worst per the fitness kind).
    pub best_cut: u64,
    /// Full metrics of the best partition.
    pub best_metrics: PartitionMetrics,
    /// Global convergence history: the best-so-far across subpopulations
    /// at each generation.
    pub history: ConvergenceHistory,
    /// Each subpopulation's own result (histories included).
    pub per_subpop: Vec<GaResult>,
}

/// Driver that owns one [`GaEngine`] per subpopulation.
#[derive(Debug)]
pub struct DpgaEngine<'g> {
    engines: Vec<GaEngine<'g>>,
    config: DpgaConfig,
    graph: &'g CsrGraph,
    migration_round: u64,
}

impl<'g> DpgaEngine<'g> {
    /// Builds one engine per topology node. Subpopulation `i` uses seed
    /// `base.seed ⊕ mix(i)` so runs are decorrelated but reproducible.
    pub fn new(graph: &'g CsrGraph, config: DpgaConfig) -> Result<Self, GaError> {
        config.validate()?;
        let subpops = config.topology.size();
        let total = config.base.population_size;
        let base_size = total / subpops;
        let extra = total % subpops;
        let mut engines = Vec::with_capacity(subpops);
        for i in 0..subpops {
            let mut sub = config.base.clone();
            if let Some(overrides) = &config.init_overrides {
                if !overrides.is_empty() {
                    sub.init = overrides[i % overrides.len()].clone();
                }
            }
            sub.population_size = base_size + usize::from(i < extra);
            // Keep elitism feasible in the smaller subpopulation.
            sub.elitism = sub.elitism.min(sub.population_size - 1);
            sub.seed = config
                .base
                .seed
                .wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .rotate_left(i as u32);
            engines.push(GaEngine::new(graph, sub)?);
        }
        Ok(DpgaEngine {
            engines,
            config,
            graph,
            migration_round: 0,
        })
    }

    /// Number of subpopulations.
    pub fn num_subpopulations(&self) -> usize {
        self.engines.len()
    }

    /// Advances every subpopulation by `generations` in lockstep (no
    /// migration inside the block).
    fn advance(&mut self, generations: usize) {
        if self.config.parallel {
            self.engines.par_iter_mut().for_each(|e| {
                for _ in 0..generations {
                    e.step();
                }
            });
        } else {
            for e in &mut self.engines {
                for _ in 0..generations {
                    e.step();
                }
            }
        }
    }

    /// One synchronized migration round: everyone emits copies of its best
    /// individuals to each neighbour, then everyone absorbs its inbox.
    fn migrate(&mut self) {
        let topo = self.config.topology;
        let k = self.config.num_migrants;
        // Deterministic per-round RNG for the random policy.
        let mut rng = StdRng::seed_from_u64(
            self.config
                .base
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(self.migration_round),
        );
        self.migration_round += 1;
        // Collect all outboxes first (pure reads), then deliver, so the
        // exchange is simultaneous as on a real message-passing machine.
        let outboxes: Vec<Vec<Individual>> = self
            .engines
            .iter()
            .map(|e| match self.config.migration_policy {
                MigrationPolicy::Best => e.emigrants(k),
                MigrationPolicy::Random => e.random_individuals(k, &mut rng),
            })
            .collect();
        let mut inboxes: Vec<Vec<Individual>> = vec![Vec::new(); self.engines.len()];
        for (i, outbox) in outboxes.iter().enumerate() {
            for j in topo.neighbors(i) {
                inboxes[j].extend(outbox.iter().cloned());
            }
        }
        for (engine, inbox) in self.engines.iter_mut().zip(inboxes) {
            engine.immigrate(inbox);
        }
    }

    /// Runs `base.generations` generations with migration every
    /// `migration_interval`, then returns the merged result.
    pub fn run(mut self) -> DpgaResult {
        let total = self.config.base.generations;
        let interval = self.config.migration_interval;
        let mut done = 0usize;
        while done < total {
            let block = interval.min(total - done);
            self.advance(block);
            done += block;
            if done < total {
                self.migrate();
            }
            if let Some(target) = self.config.base.target_cut {
                if self.engines.iter().any(|e| e.best_cut() <= target) {
                    break;
                }
            }
        }

        let per_subpop: Vec<GaResult> = self.engines.into_iter().map(|e| e.finish()).collect();
        let best_idx = per_subpop
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.best_fitness
                    .partial_cmp(&b.best_fitness)
                    .expect("finite fitness")
            })
            .map(|(i, _)| i)
            .expect("at least one subpopulation");

        // Global history: best-so-far across subpopulations per generation.
        let max_len = per_subpop
            .iter()
            .map(|r| r.history.len())
            .max()
            .unwrap_or(0);
        let mut history = ConvergenceHistory::with_capacity(max_len.saturating_sub(1));
        for g in 0..max_len {
            let mut best_fit = f64::NEG_INFINITY;
            let mut best_cut = u64::MAX;
            let mut mean_acc = 0.0;
            for r in &per_subpop {
                let idx = g.min(r.history.len() - 1);
                best_fit = best_fit.max(r.history.best_fitness[idx]);
                best_cut = best_cut.min(r.history.best_cut[idx]);
                mean_acc += r.history.mean_fitness[idx];
            }
            history.push(best_fit, mean_acc / per_subpop.len() as f64, best_cut);
        }

        let best = &per_subpop[best_idx];
        DpgaResult {
            best_partition: best.best_partition.clone(),
            best_fitness: best.best_fitness,
            best_cut: best.best_cut,
            best_metrics: PartitionMetrics::compute(self.graph, &best.best_partition),
            history,
            per_subpop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapart_graph::generators::paper_graph;

    fn small_dpga(num_parts: u32, parallel: bool) -> DpgaConfig {
        let base = GaConfig::paper_defaults(num_parts)
            .with_population_size(64)
            .with_generations(20)
            .with_seed(5);
        DpgaConfig {
            base,
            topology: Topology::Hypercube(2),
            migration_interval: 5,
            num_migrants: 2,
            migration_policy: MigrationPolicy::Best,
            parallel,
            init_overrides: None,
        }
    }

    #[test]
    fn paper_config_matches_section4() {
        let c = DpgaConfig::paper(8);
        assert_eq!(c.topology.size(), 16);
        assert_eq!(c.base.population_size, 320);
        assert_eq!(c.base.crossover_rate, 0.7);
        assert_eq!(c.base.mutation_rate, 0.01);
    }

    #[test]
    fn parallel_and_sequential_agree_exactly() {
        let g = paper_graph(98);
        let par = DpgaEngine::new(&g, small_dpga(4, true)).unwrap().run();
        let seq = DpgaEngine::new(&g, small_dpga(4, false)).unwrap().run();
        assert_eq!(par.best_partition, seq.best_partition);
        assert_eq!(par.history, seq.history);
        assert_eq!(par.best_fitness, seq.best_fitness);
    }

    #[test]
    fn subpopulation_sizes_sum_to_total() {
        let g = paper_graph(78);
        let mut cfg = small_dpga(4, false);
        cfg.base.population_size = 67; // not divisible by 4
        let e = DpgaEngine::new(&g, cfg).unwrap();
        assert_eq!(e.num_subpopulations(), 4);
        // 67 = 17 + 17 + 17 + 16 — verified indirectly by a clean run.
        let r = e.run();
        assert_eq!(r.per_subpop.len(), 4);
    }

    #[test]
    fn migration_spreads_good_solutions() {
        // With migration, the worst subpopulation's final best should be
        // close to the global best (it keeps receiving good immigrants).
        let g = paper_graph(144);
        let r = DpgaEngine::new(&g, small_dpga(4, true)).unwrap().run();
        let global = r.best_fitness;
        for sub in &r.per_subpop {
            assert!(
                sub.best_fitness >= global * 1.5, // fitnesses are negative
                "subpop {} vs global {global}",
                sub.best_fitness
            );
        }
    }

    #[test]
    fn history_is_monotone_and_aligned() {
        let g = paper_graph(78);
        let r = DpgaEngine::new(&g, small_dpga(2, true)).unwrap().run();
        assert_eq!(r.history.len(), 21);
        for w in r.history.best_fitness.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn validates_topology_population_fit() {
        let g = paper_graph(78);
        let mut cfg = small_dpga(2, false);
        cfg.base.population_size = 6; // < 2 per subpop on 4 nodes
        assert!(matches!(
            DpgaEngine::new(&g, cfg).unwrap_err(),
            GaError::BadTopology { .. }
        ));
        let mut cfg = small_dpga(2, false);
        cfg.migration_interval = 0;
        assert!(matches!(
            DpgaEngine::new(&g, cfg).unwrap_err(),
            GaError::BadTopology { .. }
        ));
    }

    #[test]
    fn random_migration_policy_runs_and_is_deterministic() {
        let g = paper_graph(98);
        let mut cfg = small_dpga(4, true);
        cfg.migration_policy = MigrationPolicy::Random;
        let a = DpgaEngine::new(&g, cfg.clone()).unwrap().run();
        let b = DpgaEngine::new(&g, cfg).unwrap().run();
        assert_eq!(a.best_partition, b.best_partition);
        assert_eq!(a.history, b.history);
        // And differs from the Best policy (different information flow).
        let best = DpgaEngine::new(&g, small_dpga(4, true)).unwrap().run();
        assert_ne!(a.history.mean_fitness, best.history.mean_fitness);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = paper_graph(88);
        let a = DpgaEngine::new(&g, small_dpga(4, true)).unwrap().run();
        let b = DpgaEngine::new(&g, small_dpga(4, true)).unwrap().run();
        assert_eq!(a.best_partition, b.best_partition);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn dpga_at_least_matches_single_population_on_budget() {
        // Same total evaluations; the distributed model should not be
        // dramatically worse (usually better via diversity).
        let g = paper_graph(144);
        let dpga = DpgaEngine::new(&g, small_dpga(4, true)).unwrap().run();
        let single = GaEngine::new(
            &g,
            GaConfig::paper_defaults(4)
                .with_population_size(64)
                .with_generations(20)
                .with_seed(5),
        )
        .unwrap()
        .run();
        assert!(
            dpga.best_fitness >= single.best_fitness * 1.6,
            "dpga {} vs single {}",
            dpga.best_fitness,
            single.best_fitness
        );
    }
}
