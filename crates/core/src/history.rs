//! Per-generation convergence records.
//!
//! The paper's figures plot solution quality against generations,
//! "obtained by averaging the results of 5 runs"; [`ConvergenceHistory`]
//! captures one run and [`average_histories`] reproduces the figures'
//! aggregation.

/// One GA run's per-generation statistics. Index 0 is the initial
/// population, before any generation has executed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConvergenceHistory {
    /// Best fitness in the population at each generation.
    pub best_fitness: Vec<f64>,
    /// Mean population fitness at each generation.
    pub mean_fitness: Vec<f64>,
    /// The paper's reported cut metric (total or worst, per the fitness
    /// kind) of the best-ever individual at each generation.
    pub best_cut: Vec<u64>,
}

impl ConvergenceHistory {
    /// Creates an empty history with capacity for `generations + 1`
    /// records.
    pub fn with_capacity(generations: usize) -> Self {
        ConvergenceHistory {
            best_fitness: Vec::with_capacity(generations + 1),
            mean_fitness: Vec::with_capacity(generations + 1),
            best_cut: Vec::with_capacity(generations + 1),
        }
    }

    /// Appends one generation's record.
    pub fn push(&mut self, best_fitness: f64, mean_fitness: f64, best_cut: u64) {
        self.best_fitness.push(best_fitness);
        self.mean_fitness.push(mean_fitness);
        self.best_cut.push(best_cut);
    }

    /// Number of recorded generations (including the initial population).
    pub fn len(&self) -> usize {
        self.best_fitness.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.best_fitness.is_empty()
    }

    /// Generation at which the best cut first reached its final value —
    /// the convergence speed the paper's "orders of magnitude" claim is
    /// about.
    pub fn convergence_generation(&self) -> Option<usize> {
        let last = *self.best_cut.last()?;
        self.best_cut.iter().position(|&c| c == last)
    }
}

/// Averages several runs' histories point-wise (runs may have different
/// lengths; the average extends each shorter run with its final value,
/// matching how converged GA curves are usually plotted).
///
/// Returns `(mean_best_cut, mean_best_fitness)` per generation.
pub fn average_histories(histories: &[ConvergenceHistory]) -> (Vec<f64>, Vec<f64>) {
    let max_len = histories.iter().map(|h| h.len()).max().unwrap_or(0);
    let mut cut = vec![0.0f64; max_len];
    let mut fit = vec![0.0f64; max_len];
    if histories.is_empty() {
        return (cut, fit);
    }
    for h in histories {
        for g in 0..max_len {
            let idx = g.min(h.len().saturating_sub(1));
            cut[g] += h.best_cut[idx] as f64;
            fit[g] += h.best_fitness[idx];
        }
    }
    let k = histories.len() as f64;
    for v in cut.iter_mut() {
        *v /= k;
    }
    for v in fit.iter_mut() {
        *v /= k;
    }
    (cut, fit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history(cuts: &[u64]) -> ConvergenceHistory {
        let mut h = ConvergenceHistory::default();
        for (i, &c) in cuts.iter().enumerate() {
            h.push(-(c as f64), -(c as f64) - 1.0, c);
            let _ = i;
        }
        h
    }

    #[test]
    fn push_and_len() {
        let h = history(&[10, 8, 8, 7]);
        assert_eq!(h.len(), 4);
        assert!(!h.is_empty());
        assert_eq!(h.best_cut, vec![10, 8, 8, 7]);
    }

    #[test]
    fn convergence_generation_finds_first_occurrence_of_final_value() {
        let h = history(&[10, 8, 7, 7, 7]);
        assert_eq!(h.convergence_generation(), Some(2));
        let h = history(&[5]);
        assert_eq!(h.convergence_generation(), Some(0));
        assert_eq!(ConvergenceHistory::default().convergence_generation(), None);
    }

    #[test]
    fn averaging_equal_length_runs() {
        let runs = vec![history(&[10, 8]), history(&[6, 4])];
        let (cut, fit) = average_histories(&runs);
        assert_eq!(cut, vec![8.0, 6.0]);
        assert_eq!(fit, vec![-8.0, -6.0]);
    }

    #[test]
    fn averaging_ragged_runs_extends_with_final_value() {
        let runs = vec![history(&[10, 8, 6]), history(&[4])];
        let (cut, _) = average_histories(&runs);
        // gen0: (10+4)/2, gen1: (8+4)/2, gen2: (6+4)/2
        assert_eq!(cut, vec![7.0, 6.0, 5.0]);
    }

    #[test]
    fn averaging_empty_input() {
        let (cut, fit) = average_histories(&[]);
        assert!(cut.is_empty() && fit.is_empty());
    }
}
