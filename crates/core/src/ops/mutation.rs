//! Mutation operators.

use gapart_graph::CsrGraph;
use rand::Rng;

/// Classic per-gene mutation: with probability `rate`, a gene is
/// reassigned to a uniformly random *different* part. The paper's
/// experiments use `rate = 0.01`.
///
/// No-op when `num_parts == 1` (there is no different part).
///
/// # Panics
///
/// Panics if `rate ∉ [0, 1]` or `num_parts == 0`.
pub fn mutate<R: Rng + ?Sized>(genes: &mut [u32], rate: f64, num_parts: u32, rng: &mut R) {
    assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
    assert!(num_parts > 0, "num_parts must be positive");
    if num_parts == 1 || rate == 0.0 {
        return;
    }
    for gene in genes.iter_mut() {
        if rng.gen::<f64>() < rate {
            // Sample among the other parts only.
            let offset = rng.gen_range(1..num_parts);
            *gene = (*gene + offset) % num_parts;
        }
    }
}

/// Locality-aware mutation (extension): with probability `rate`, a
/// *boundary* gene is reassigned to the part of one of its cross-boundary
/// neighbours. Interior genes are untouched, so the operator explores the
/// space of boundary perturbations the hill climber also works in.
pub fn boundary_mutate<R: Rng + ?Sized>(
    genes: &mut [u32],
    graph: &CsrGraph,
    rate: f64,
    rng: &mut R,
) {
    assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
    assert_eq!(genes.len(), graph.num_nodes(), "chromosome/graph mismatch");
    if rate == 0.0 {
        return;
    }
    // Decide every move against the pre-mutation state, then apply, so the
    // operator's semantics don't depend on node iteration order.
    let mut moves: Vec<(u32, u32)> = Vec::new();
    for v in 0..genes.len() as u32 {
        let pv = genes[v as usize];
        let nbrs = graph.neighbors(v);
        // Collect neighbouring foreign parts lazily; skip interior nodes.
        let mut foreign: Option<u32> = None;
        let mut count = 0u32;
        for &u in nbrs {
            let pu = genes[u as usize];
            if pu != pv {
                count += 1;
                // Reservoir sample one foreign part uniformly.
                if rng.gen_range(0..count) == 0 {
                    foreign = Some(pu);
                }
            }
        }
        if let Some(part) = foreign {
            if rng.gen::<f64>() < rate {
                moves.push((v, part));
            }
        }
    }
    for (v, part) in moves {
        genes[v as usize] = part;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapart_graph::builder::from_edges;
    use gapart_graph::generators::paper_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_rate_is_identity() {
        let mut genes = vec![0u32, 1, 2, 3];
        let before = genes.clone();
        let mut rng = StdRng::seed_from_u64(1);
        mutate(&mut genes, 0.0, 4, &mut rng);
        assert_eq!(genes, before);
    }

    #[test]
    fn rate_one_changes_every_gene() {
        let mut genes = vec![0u32; 50];
        let mut rng = StdRng::seed_from_u64(2);
        mutate(&mut genes, 1.0, 4, &mut rng);
        assert!(genes.iter().all(|&g| g != 0), "{genes:?}");
        assert!(genes.iter().all(|&g| g < 4));
    }

    #[test]
    fn single_part_is_noop() {
        let mut genes = vec![0u32; 10];
        let mut rng = StdRng::seed_from_u64(3);
        mutate(&mut genes, 1.0, 1, &mut rng);
        assert!(genes.iter().all(|&g| g == 0));
    }

    #[test]
    fn low_rate_changes_few_genes() {
        let mut genes = vec![0u32; 10_000];
        let mut rng = StdRng::seed_from_u64(4);
        mutate(&mut genes, 0.01, 4, &mut rng);
        let changed = genes.iter().filter(|&&g| g != 0).count();
        assert!((50..=200).contains(&changed), "changed = {changed}");
    }

    #[test]
    fn genes_stay_in_range() {
        let mut genes: Vec<u32> = (0..1000).map(|i| i % 7).collect();
        let mut rng = StdRng::seed_from_u64(5);
        mutate(&mut genes, 0.5, 7, &mut rng);
        assert!(genes.iter().all(|&g| g < 7));
    }

    #[test]
    fn boundary_mutation_never_touches_interior() {
        // Path 0-1-2-3-4-5, split {0,1,2} | {3,4,5}: only 2 and 3 are
        // boundary nodes.
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..20 {
            let mut genes = vec![0u32, 0, 0, 1, 1, 1];
            boundary_mutate(&mut genes, &g, 1.0, &mut rng);
            assert_eq!(genes[0], 0);
            assert_eq!(genes[1], 0);
            assert_eq!(genes[4], 1);
            assert_eq!(genes[5], 1);
        }
    }

    #[test]
    fn boundary_mutation_moves_to_neighbouring_part_only() {
        let g = paper_graph(98);
        let mut rng = StdRng::seed_from_u64(7);
        let mut genes: Vec<u32> = (0..98).map(|i| i % 4).collect();
        let before = genes.clone();
        boundary_mutate(&mut genes, &g, 1.0, &mut rng);
        for v in 0..98u32 {
            if genes[v as usize] != before[v as usize] {
                // The new part must have been a neighbour's old part.
                let ok = g
                    .neighbors(v)
                    .iter()
                    .any(|&u| before[u as usize] == genes[v as usize]);
                assert!(ok, "node {v} moved to a non-neighbouring part");
            }
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_rate() {
        let mut genes = vec![0u32];
        let mut rng = StdRng::seed_from_u64(1);
        mutate(&mut genes, 1.5, 2, &mut rng);
    }
}
