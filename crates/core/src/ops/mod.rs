//! Genetic operators: crossover (§3.2–3.3) and mutation.

pub mod crossover;
pub mod mutation;

pub use crossover::{CrossoverCtx, CrossoverOp};
pub use mutation::{boundary_mutate, mutate};
