//! Crossover operators, including the paper's KNUX and DKNUX (§3.2–3.3).
//!
//! KNUX (Knowledge-based Non-Uniform Crossover) generalizes uniform
//! crossover with a per-gene bias probability derived from a reference
//! solution `I` and the graph's adjacency: where parents `a` and `b`
//! disagree on gene `i`, the offspring takes `a_i` with probability
//!
//! ```text
//! p_i = #(i,a,I) / (#(i,a,I) + #(i,b,I))     (0.5 when both counts are 0)
//! ```
//!
//! where `#(i,X,I)` counts the neighbours of node `i` that `I` assigns to
//! the part `X` puts `i` in. DKNUX is the same operator with `I`
//! continuously updated to the best solution found so far.

use gapart_graph::CsrGraph;
use rand::Rng;

/// The crossover operator families compared in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossoverOp {
    /// Classic 1-point crossover (Holland).
    OnePoint,
    /// 2-point crossover — the "traditional operator" baseline in the
    /// paper's tables.
    TwoPoint,
    /// Generalized k-point crossover.
    KPoint(u32),
    /// Uniform crossover (Syswerda) — unbiased per-gene inheritance.
    Uniform,
    /// Knowledge-based non-uniform crossover with a **fixed** reference
    /// solution (the initial heuristic estimate).
    Knux,
    /// Dynamic KNUX: the reference is the best individual found so far,
    /// updated continuously during the search.
    Dknux,
    /// DKNUX with the bias additionally tilted by the parents' relative
    /// fitness (§3.2 says `p_i` depends on "the relative fitness of the
    /// parent strings"; plain KNUX/DKNUX use only the adjacency term).
    /// The payload is the blend weight `w ∈ [0, 1]` (scaled by 100 and
    /// stored as an integer percent so the enum stays `Eq`): the final
    /// bias is `(1−w)·adjacency + w·fitness`, where the fitness term is
    /// 0.75 toward the fitter parent (0.5 on ties or when fitness is
    /// unavailable).
    DknuxFitness(u8),
}

impl CrossoverOp {
    /// Whether the operator needs a reference solution in its context.
    pub fn requires_reference(&self) -> bool {
        matches!(
            self,
            CrossoverOp::Knux | CrossoverOp::Dknux | CrossoverOp::DknuxFitness(_)
        )
    }

    /// Whether the operator re-targets its reference to the best-so-far
    /// (the "dynamic" family).
    pub fn is_dynamic(&self) -> bool {
        matches!(self, CrossoverOp::Dknux | CrossoverOp::DknuxFitness(_))
    }

    /// All operators, for sweeps.
    pub const ALL: [CrossoverOp; 7] = [
        CrossoverOp::OnePoint,
        CrossoverOp::TwoPoint,
        CrossoverOp::KPoint(4),
        CrossoverOp::Uniform,
        CrossoverOp::Knux,
        CrossoverOp::Dknux,
        CrossoverOp::DknuxFitness(25),
    ];
}

impl std::fmt::Display for CrossoverOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrossoverOp::OnePoint => write!(f, "1-point"),
            CrossoverOp::TwoPoint => write!(f, "2-point"),
            CrossoverOp::KPoint(k) => write!(f, "{k}-point"),
            CrossoverOp::Uniform => write!(f, "UX"),
            CrossoverOp::Knux => write!(f, "KNUX"),
            CrossoverOp::Dknux => write!(f, "DKNUX"),
            CrossoverOp::DknuxFitness(w) => write!(f, "DKNUX-f{w}"),
        }
    }
}

/// Context a crossover may need: the graph (for KNUX's neighbour counts),
/// the reference solution `I`, and (for the fitness-weighted variant) the
/// parents' fitness values.
#[derive(Debug, Clone, Copy)]
pub struct CrossoverCtx<'a> {
    /// The graph being partitioned.
    pub graph: &'a CsrGraph,
    /// Reference solution for KNUX/DKNUX (`None` for the classic ops).
    pub reference: Option<&'a [u32]>,
    /// Fitness of parents `(a, b)`, used only by
    /// [`CrossoverOp::DknuxFitness`]. `None` defaults its fitness term
    /// to 0.5 (no tilt).
    pub parent_fitness: Option<(f64, f64)>,
}

impl<'a> CrossoverCtx<'a> {
    /// Context for the classic operators (no reference, no fitness).
    pub fn plain(graph: &'a CsrGraph) -> Self {
        CrossoverCtx {
            graph,
            reference: None,
            parent_fitness: None,
        }
    }

    /// Context with a KNUX reference.
    pub fn with_reference(graph: &'a CsrGraph, reference: &'a [u32]) -> Self {
        CrossoverCtx {
            graph,
            reference: Some(reference),
            parent_fitness: None,
        }
    }
}

impl CrossoverOp {
    /// Produces two offspring from parents `a` and `b`. Offspring are
    /// complementary: wherever one child inherits from `a`, the other
    /// inherits from `b`.
    ///
    /// # Panics
    ///
    /// Panics if parent lengths differ, or if a KNUX-family operator is
    /// invoked without `ctx.reference`.
    pub fn apply<R: Rng + ?Sized>(
        &self,
        a: &[u32],
        b: &[u32],
        ctx: &CrossoverCtx<'_>,
        rng: &mut R,
    ) -> (Vec<u32>, Vec<u32>) {
        assert_eq!(a.len(), b.len(), "parent length mismatch");
        match self {
            CrossoverOp::OnePoint => point_crossover(a, b, 1, rng),
            CrossoverOp::TwoPoint => point_crossover(a, b, 2, rng),
            CrossoverOp::KPoint(k) => point_crossover(a, b, *k as usize, rng),
            CrossoverOp::Uniform => uniform_crossover(a, b, rng),
            CrossoverOp::Knux | CrossoverOp::Dknux => {
                let reference = ctx
                    .reference
                    // gapart-lint: allow(lib-panic) -- API misuse contract pinned by the should_panic test; engine always threads a reference for KNUX ops
                    .expect("KNUX/DKNUX requires a reference solution");
                knux_crossover(a, b, ctx.graph, reference, 0.0, 0.5, rng)
            }
            CrossoverOp::DknuxFitness(percent) => {
                let reference = ctx
                    .reference
                    // gapart-lint: allow(lib-panic) -- API misuse contract pinned by the should_panic test; engine always threads a reference for KNUX ops
                    .expect("KNUX/DKNUX requires a reference solution");
                let w = f64::from(*percent).clamp(0.0, 100.0) / 100.0;
                let fitness_term = match ctx.parent_fitness {
                    Some((fa, fb)) if fa > fb => 0.75,
                    Some((fa, fb)) if fa < fb => 0.25,
                    _ => 0.5,
                };
                knux_crossover(a, b, ctx.graph, reference, w, fitness_term, rng)
            }
        }
    }
}

/// k-point crossover: choose `k` distinct cut sites; alternate the source
/// parent between segments.
fn point_crossover<R: Rng + ?Sized>(
    a: &[u32],
    b: &[u32],
    k: usize,
    rng: &mut R,
) -> (Vec<u32>, Vec<u32>) {
    let n = a.len();
    if n < 2 {
        return (a.to_vec(), b.to_vec());
    }
    // Cut sites are gene boundaries in 1..n (a site at i splits [0,i) from
    // [i,n)). Sample k distinct sites.
    let k = k.min(n - 1);
    let mut sites: Vec<usize> = Vec::with_capacity(k);
    while sites.len() < k {
        let s = rng.gen_range(1..n);
        if !sites.contains(&s) {
            sites.push(s);
        }
    }
    sites.sort_unstable();
    let mut c1 = Vec::with_capacity(n);
    let mut c2 = Vec::with_capacity(n);
    let mut from_a = true;
    let mut next_site = 0usize;
    for i in 0..n {
        if next_site < sites.len() && sites[next_site] == i {
            from_a = !from_a;
            next_site += 1;
        }
        if from_a {
            c1.push(a[i]);
            c2.push(b[i]);
        } else {
            c1.push(b[i]);
            c2.push(a[i]);
        }
    }
    (c1, c2)
}

/// Uniform crossover: each gene independently from either parent with
/// probability 0.5 (children complementary).
fn uniform_crossover<R: Rng + ?Sized>(a: &[u32], b: &[u32], rng: &mut R) -> (Vec<u32>, Vec<u32>) {
    let n = a.len();
    let mut c1 = Vec::with_capacity(n);
    let mut c2 = Vec::with_capacity(n);
    for i in 0..n {
        if rng.gen::<bool>() {
            c1.push(a[i]);
            c2.push(b[i]);
        } else {
            c1.push(b[i]);
            c2.push(a[i]);
        }
    }
    (c1, c2)
}

/// The paper's bias probability for gene `i`: `p_i = #a / (#a + #b)`
/// where `#x` counts neighbours of `i` that the reference assigns to the
/// part parent `x` gives node `i`; `0.5` when both counts are zero.
#[inline]
pub fn knux_bias(graph: &CsrGraph, reference: &[u32], i: u32, a_i: u32, b_i: u32) -> f64 {
    let mut count_a = 0u32;
    let mut count_b = 0u32;
    for &j in graph.neighbors(i) {
        let r = reference[j as usize];
        if r == a_i {
            count_a += 1;
        }
        if r == b_i {
            count_b += 1;
        }
    }
    if count_a == 0 && count_b == 0 {
        0.5
    } else {
        count_a as f64 / (count_a + count_b) as f64
    }
}

fn knux_crossover<R: Rng + ?Sized>(
    a: &[u32],
    b: &[u32],
    graph: &CsrGraph,
    reference: &[u32],
    fitness_weight: f64,
    fitness_term: f64,
    rng: &mut R,
) -> (Vec<u32>, Vec<u32>) {
    assert_eq!(
        reference.len(),
        a.len(),
        "reference length must match chromosome length"
    );
    let n = a.len();
    let mut c1 = Vec::with_capacity(n);
    let mut c2 = Vec::with_capacity(n);
    for i in 0..n {
        if a[i] == b[i] {
            // "if a_i = b_i, then c_i = a_i"
            c1.push(a[i]);
            c2.push(a[i]);
        } else {
            let adjacency = knux_bias(graph, reference, i as u32, a[i], b[i]);
            let p = (1.0 - fitness_weight) * adjacency + fitness_weight * fitness_term;
            if rng.gen::<f64>() < p {
                c1.push(a[i]);
                c2.push(b[i]);
            } else {
                c1.push(b[i]);
                c2.push(a[i]);
            }
        }
    }
    (c1, c2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapart_graph::builder::from_edges;
    use gapart_graph::generators::paper_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx(graph: &CsrGraph) -> CrossoverCtx<'_> {
        CrossoverCtx::plain(graph)
    }

    use gapart_graph::CsrGraph;

    #[test]
    fn offspring_are_complementary_and_gene_preserving() {
        let g = paper_graph(78);
        let reference: Vec<u32> = (0..78).map(|v| v % 4).collect();
        let a: Vec<u32> = (0..78).map(|v| v % 4).collect();
        let b: Vec<u32> = (0..78).map(|v| (v + 1) % 4).collect();
        let mut rng = StdRng::seed_from_u64(1);
        for op in CrossoverOp::ALL {
            let c = CrossoverCtx::with_reference(&g, &reference);
            let (c1, c2) = op.apply(&a, &b, &c, &mut rng);
            for i in 0..78 {
                let pair = (c1[i], c2[i]);
                let ok = pair == (a[i], b[i]) || pair == (b[i], a[i]);
                assert!(ok, "{op}: gene {i} not from parents");
            }
        }
    }

    #[test]
    fn one_point_has_single_switch() {
        let a = vec![0u32; 20];
        let b = vec![1u32; 20];
        let g = from_edges(20, &[(0, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let (c1, _) = CrossoverOp::OnePoint.apply(&a, &b, &ctx(&g), &mut rng);
        let switches = c1.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(switches, 1, "{c1:?}");
    }

    #[test]
    fn two_point_has_at_most_two_switches() {
        let a = vec![0u32; 30];
        let b = vec![1u32; 30];
        let g = from_edges(30, &[(0, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let (c1, _) = CrossoverOp::TwoPoint.apply(&a, &b, &ctx(&g), &mut rng);
            let switches = c1.windows(2).filter(|w| w[0] != w[1]).count();
            assert!(switches <= 2, "{c1:?}");
        }
    }

    #[test]
    fn k_point_respects_k() {
        let a = vec![0u32; 40];
        let b = vec![1u32; 40];
        let g = from_edges(40, &[(0, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let (c1, _) = CrossoverOp::KPoint(5).apply(&a, &b, &ctx(&g), &mut rng);
            let switches = c1.windows(2).filter(|w| w[0] != w[1]).count();
            assert!(switches <= 5);
        }
    }

    #[test]
    fn uniform_mixes_roughly_half() {
        let a = vec![0u32; 1000];
        let b = vec![1u32; 1000];
        let g = from_edges(1000, &[(0, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let (c1, _) = CrossoverOp::Uniform.apply(&a, &b, &ctx(&g), &mut rng);
        let from_a = c1.iter().filter(|&&x| x == 0).count();
        assert!((350..=650).contains(&from_a), "from_a = {from_a}");
    }

    #[test]
    fn knux_agreement_genes_pass_through() {
        let g = paper_graph(78);
        let reference: Vec<u32> = vec![0; 78];
        let a: Vec<u32> = vec![1; 78];
        let b: Vec<u32> = vec![1; 78];
        let mut rng = StdRng::seed_from_u64(13);
        let c = CrossoverCtx::with_reference(&g, &reference);
        let (c1, c2) = CrossoverOp::Knux.apply(&a, &b, &c, &mut rng);
        assert_eq!(c1, a);
        assert_eq!(c2, a);
    }

    #[test]
    fn knux_bias_formula() {
        // Path 0-1-2. For node 1: neighbours {0, 2}.
        let g = from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        // Reference puts 0 → part 0, 2 → part 1.
        let reference = vec![0u32, 9, 1];
        // a gives node 1 part 0 (1 supporting neighbour), b gives part 1
        // (1 supporting neighbour) → p = 1/2.
        assert_eq!(knux_bias(&g, &reference, 1, 0, 1), 0.5);
        // Reference puts both neighbours in part 0 → p = 1 for a.
        let reference = vec![0u32, 9, 0];
        assert_eq!(knux_bias(&g, &reference, 1, 0, 1), 1.0);
        assert_eq!(knux_bias(&g, &reference, 1, 1, 0), 0.0);
        // No neighbour in either part → 0.5.
        let reference = vec![7u32, 9, 7];
        assert_eq!(knux_bias(&g, &reference, 1, 0, 1), 0.5);
    }

    #[test]
    fn knux_follows_strong_bias() {
        // When the reference fully supports parent a everywhere, offspring
        // 1 must equal parent a.
        let g = paper_graph(144);
        let a: Vec<u32> = g
            .coords()
            .unwrap()
            .iter()
            .map(|p| u32::from(p.x > 0.5))
            .collect();
        let reference = a.clone(); // reference agrees with a
        let b: Vec<u32> = a.iter().map(|&x| 1 - x).collect(); // opposite
        let mut rng = StdRng::seed_from_u64(17);
        let c = CrossoverCtx::with_reference(&g, &reference);
        let (c1, _) = CrossoverOp::Knux.apply(&a, &b, &c, &mut rng);
        // A node whose neighbours are all on its own side of the split has
        // bias exactly 1.0 for parent a, so its offspring gene must equal
        // a's. Only boundary nodes (with cross-split neighbours) may flip.
        for v in 0..144u32 {
            if c1[v as usize] != a[v as usize] {
                let crosses = g
                    .neighbors(v)
                    .iter()
                    .any(|&u| a[u as usize] != a[v as usize]);
                assert!(crosses, "interior node {v} flipped against a bias of 1.0");
            }
        }
        // And interior nodes dominate, so most genes follow parent a.
        let diffs = c1.iter().zip(&a).filter(|(x, y)| x != y).count();
        assert!(
            diffs < 40,
            "KNUX ignored a strongly-supporting reference: {diffs} diffs"
        );
    }

    #[test]
    #[should_panic(expected = "requires a reference")]
    fn knux_without_reference_panics() {
        let g = from_edges(2, &[(0, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        CrossoverOp::Knux.apply(&[0, 1], &[1, 0], &ctx(&g), &mut rng);
    }

    #[test]
    fn tiny_chromosomes_survive() {
        let g = from_edges(1, &[]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let (c1, c2) = CrossoverOp::TwoPoint.apply(&[0], &[1], &ctx(&g), &mut rng);
        assert_eq!((c1, c2), (vec![0], vec![1]));
    }

    #[test]
    fn display_names() {
        assert_eq!(CrossoverOp::Dknux.to_string(), "DKNUX");
        assert_eq!(CrossoverOp::KPoint(4).to_string(), "4-point");
        assert_eq!(CrossoverOp::DknuxFitness(25).to_string(), "DKNUX-f25");
    }

    #[test]
    fn dynamic_family_is_classified() {
        assert!(CrossoverOp::Dknux.is_dynamic());
        assert!(CrossoverOp::DknuxFitness(10).is_dynamic());
        assert!(!CrossoverOp::Knux.is_dynamic());
        assert!(!CrossoverOp::TwoPoint.is_dynamic());
    }

    #[test]
    fn fitness_weighted_knux_tilts_toward_fitter_parent() {
        // With weight 100, the bias is purely the fitness term: 0.75
        // toward the fitter parent. Over many disagreeing genes, the
        // offspring should inherit from the fitter parent ~75% of the
        // time (vs ~50% for plain DKNUX with a neutral reference).
        let g = paper_graph(309);
        let n = 309;
        let a: Vec<u32> = vec![0; n];
        let b: Vec<u32> = vec![1; n];
        let reference: Vec<u32> = vec![9; n]; // supports neither side
        let ctx = CrossoverCtx {
            graph: &g,
            reference: Some(&reference),
            parent_fitness: Some((-1.0, -100.0)), // a much fitter
        };
        let mut rng = StdRng::seed_from_u64(31);
        let mut from_a = 0usize;
        let trials = 20;
        for _ in 0..trials {
            let (c1, _) = CrossoverOp::DknuxFitness(100).apply(&a, &b, &ctx, &mut rng);
            from_a += c1.iter().filter(|&&x| x == 0).count();
        }
        let share = from_a as f64 / (n * trials) as f64;
        assert!(
            (0.70..=0.80).contains(&share),
            "share from fitter parent: {share}"
        );

        // Weight 0 degrades to plain KNUX: neutral reference → ~50%.
        let mut from_a = 0usize;
        for _ in 0..trials {
            let (c1, _) = CrossoverOp::DknuxFitness(0).apply(&a, &b, &ctx, &mut rng);
            from_a += c1.iter().filter(|&&x| x == 0).count();
        }
        let share = from_a as f64 / (n * trials) as f64;
        assert!((0.45..=0.55).contains(&share), "neutral share: {share}");
    }

    #[test]
    fn fitness_weighted_without_fitness_is_neutral() {
        let g = paper_graph(78);
        let a: Vec<u32> = vec![0; 78];
        let b: Vec<u32> = vec![1; 78];
        let reference: Vec<u32> = vec![0; 78]; // fully supports a
        let ctx = CrossoverCtx::with_reference(&g, &reference);
        let mut rng = StdRng::seed_from_u64(33);
        // Weight 50 with no fitness info: p = 0.5·adjacency + 0.5·0.5;
        // adjacency is 1.0 everywhere (reference = a), so p = 0.75.
        let mut from_a = 0usize;
        for _ in 0..50 {
            let (c1, _) = CrossoverOp::DknuxFitness(50).apply(&a, &b, &ctx, &mut rng);
            from_a += c1.iter().filter(|&&x| x == 0).count();
        }
        let share = from_a as f64 / (78.0 * 50.0);
        assert!((0.70..=0.80).contains(&share), "share: {share}");
    }
}
