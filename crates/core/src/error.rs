//! Error type for GA configuration and execution.

use std::fmt;

/// Errors raised when configuring or running the genetic algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum GaError {
    /// `num_parts` is zero or larger than the node count.
    BadPartCount {
        /// Requested parts.
        num_parts: u32,
        /// Available nodes.
        num_nodes: usize,
    },
    /// A rate parameter is outside `[0, 1]`.
    BadRate {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Population size too small for the configured elitism/selection.
    BadPopulation {
        /// Human-readable description.
        message: String,
    },
    /// A seed partition does not match the graph or part count.
    BadSeed {
        /// Human-readable description.
        message: String,
    },
    /// DPGA topology/population mismatch.
    BadTopology {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for GaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GaError::BadPartCount {
                num_parts,
                num_nodes,
            } => {
                write!(
                    f,
                    "cannot partition {num_nodes} nodes into {num_parts} parts"
                )
            }
            GaError::BadRate { name, value } => {
                write!(f, "{name} = {value} is not in [0, 1]")
            }
            GaError::BadPopulation { message } => write!(f, "bad population: {message}"),
            GaError::BadSeed { message } => write!(f, "bad seed partition: {message}"),
            GaError::BadTopology { message } => write!(f, "bad topology: {message}"),
        }
    }
}

impl std::error::Error for GaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let e = GaError::BadPartCount {
            num_parts: 9,
            num_nodes: 4,
        };
        assert!(e.to_string().contains("9 parts"));
        let e = GaError::BadRate {
            name: "crossover_rate",
            value: 1.5,
        };
        assert!(e.to_string().contains("crossover_rate"));
        let e = GaError::BadSeed {
            message: "wrong length".into(),
        };
        assert!(e.to_string().contains("wrong length"));
    }
}
