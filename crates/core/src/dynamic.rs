//! Streaming dynamic repartitioning: maintain a partition across a
//! mutation stream.
//!
//! This is the production generalization of the paper's one-shot
//! incremental experiment (§3.5, §4.2). A [`DynamicSession`] owns the
//! current graph and partition and applies
//! [`gapart_graph::dynamic::Mutation`] batches with a three-stage
//! pipeline per batch:
//!
//! 1. **Seed** — new nodes are assigned by *both* of the paper's
//!    policies: the §3.5 balanced extension
//!    ([`crate::incremental::extend_partition_balanced`]) and the
//!    conclusion's neighbour-majority baseline
//!    ([`crate::incremental::greedy_neighbor_assign`]); the candidate
//!    with the lower composite cost (`Σ I(q) + λ Σ C(q)`, the paper's
//!    Fitness-1 objective) wins, ties toward the balanced policy.
//! 2. **Localized refine** — the configured
//!    [`gapart_graph::refine::RefineScheme`] (boundary FM by default,
//!    reusing the session's gain-bucket workspace so only the dirty
//!    frontier's buckets are rebuilt; or the frozen-gain sweep
//!    [`gapart_graph::refine::refine_kway_local`]) touches only the
//!    frontier (the mutated nodes plus a configurable BFS halo). The
//!    cut is maintained incrementally (batch edge deltas plus the
//!    refiner's exact gain), so outside escalations a batch costs the
//!    frontier work plus `O(V)` tallies — never a full edge-set pass.
//! 3. **Escalate when degraded** — when the maintained cut exceeds
//!    `escalate_ratio ×` the epoch's baseline cut
//!    ([`DynamicSession::baseline_cut`]), the session runs its full
//!    partitioner (typically the multilevel V-cycle from PR 2) from
//!    scratch, keeps the better of the two partitions, starts a new
//!    *epoch*, and re-anchors the baseline at the survivor's cut.
//!
//! Every step is deterministic: replaying the same trace through the
//! same configuration yields a bit-identical partition, regardless of
//! thread count (asserted in `tests/stream_contract.rs`).

use crate::error::GaError;
use crate::incremental::{extend_partition_balanced, greedy_neighbor_assign};
use gapart_graph::dynamic::{apply_batch, Mutation};
use gapart_graph::fm::{FmRefiner, ParallelFm};
use gapart_graph::partition::cut_size;
use gapart_graph::refine::{refine_kway_local, RefineOptions, RefineScheme, RefineStats};
use gapart_graph::{CsrGraph, GraphError, Partition, Partitioner, PartitionerError};

/// Errors surfaced by a [`DynamicSession`].
#[derive(Debug, Clone, PartialEq)]
pub enum DynamicError {
    /// A mutation batch was structurally invalid for the current graph.
    Graph(GraphError),
    /// Seeding the new nodes failed (partition/graph mismatch).
    Seed(GaError),
    /// The full repartitioner failed during an escalation.
    Escalation(PartitionerError),
    /// A [`SessionSpec`] named a method the resolver does not know.
    UnknownMethod(String),
    /// Restoring a session from persisted state failed an integrity
    /// check (the message says which).
    Resume(String),
}

impl std::fmt::Display for DynamicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicError::Graph(e) => write!(f, "bad mutation batch: {e}"),
            DynamicError::Seed(e) => write!(f, "seeding failed: {e}"),
            DynamicError::Escalation(e) => write!(f, "full repartition failed: {e}"),
            DynamicError::UnknownMethod(m) => write!(f, "unknown method '{m}'"),
            DynamicError::Resume(m) => write!(f, "cannot resume session: {m}"),
        }
    }
}

impl std::error::Error for DynamicError {}

impl From<GraphError> for DynamicError {
    fn from(e: GraphError) -> Self {
        DynamicError::Graph(e)
    }
}

/// Knobs of a [`DynamicSession`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicConfig {
    /// Number of parts to maintain.
    pub num_parts: u32,
    /// Seed for every stochastic step (balanced seeding, escalations).
    /// Batch `i` derives its sub-seed from `seed` and `i`, so a replay
    /// is a pure function of `(graph, trace, config)`.
    pub seed: u64,
    /// Options for the localized refinement pass.
    pub refine: RefineOptions,
    /// Refinement engine for the dirty-frontier pass: the boundary FM
    /// refiner (default; its gain buckets and degree caches live in the
    /// session and are reused across batches) or the frozen-gain sweep.
    pub refine_scheme: RefineScheme,
    /// BFS halo around the dirty nodes that the localized refinement may
    /// move (hops; 2 by default). Larger values trade batch latency for
    /// cut quality.
    pub frontier_hops: usize,
    /// Escalate to a full repartition when the maintained cut exceeds
    /// this multiple of the epoch's baseline cut
    /// ([`DynamicSession::baseline_cut`]; 1.5 by default).
    /// `f64::INFINITY` disables escalation entirely.
    pub escalate_ratio: f64,
    /// λ of the composite cost used to choose between the two seeding
    /// policies (1.0, the paper's setting).
    pub lambda: f64,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            num_parts: 2,
            seed: 0x5354_5245, // "STRE"
            refine: RefineOptions::default(),
            refine_scheme: RefineScheme::default(),
            frontier_hops: 2,
            escalate_ratio: 1.5,
            lambda: 1.0,
        }
    }
}

impl DynamicConfig {
    /// Default configuration for `num_parts` parts. The fields are
    /// public — adjust them with struct-update syntax
    /// (`DynamicConfig { seed: 7, ..DynamicConfig::new(4) }`) or go
    /// through [`SessionSpec`], the validated front door every session
    /// surface (CLI `stream`, the `serve` daemon, library callers)
    /// shares.
    pub fn new(num_parts: u32) -> Self {
        DynamicConfig {
            num_parts,
            ..DynamicConfig::default()
        }
    }
}

/// Default RNG seed for user-facing session surfaces (`stream`,
/// `serve`) — the bytes "SC94".
pub const DEFAULT_SESSION_SEED: u64 = 0x5343_3934;

/// A malformed or invalid [`SessionSpec`] field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A `key=value` token had no `=`.
    Malformed(String),
    /// The key is not a session parameter.
    UnknownKey(String),
    /// The value does not parse or is out of range for its key.
    BadValue {
        /// The offending key.
        key: String,
        /// The rejected value.
        value: String,
    },
    /// The spec text never set the mandatory `parts` key.
    MissingParts,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Malformed(tok) => write!(f, "expected key=value, got '{tok}'"),
            SpecError::UnknownKey(k) => write!(f, "unknown session parameter '{k}'"),
            SpecError::BadValue { key, value } => {
                write!(f, "bad value '{value}' for session parameter '{key}'")
            }
            SpecError::MissingParts => write!(f, "session spec must set parts=<n>"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Resolves a method name to a full partitioner for escalations.
///
/// [`SessionSpec`] lives below the partitioner registry (the facade
/// crate), so callers inject the lookup: the CLI and the serve daemon
/// pass `gapart::partitioners::by_name_with`, tests pass a closure over
/// whatever partitioner they build. Returning `None` surfaces as
/// [`DynamicError::UnknownMethod`].
pub type MethodResolver = fn(&str, RefineScheme) -> Option<Box<dyn Partitioner>>;

/// Everything that identifies a dynamic session, in one validated
/// value: part count, escalation method, refinement scheme, seed,
/// escalation threshold, and frontier size.
///
/// This is the *single* parse/validate path for session parameters.
/// The CLI `stream` flags, the serve protocol's `open` command, and the
/// session tape's `open` record all reduce to [`SessionSpec::set`] calls
/// keyed by the same names, so one grammar serves every surface:
///
/// ```text
/// parts=4 method=mlga refine=fm seed=0x53433934 threshold=1.5 hops=2
/// ```
///
/// [`SessionSpec::to_kv`] renders that canonical form and
/// [`SessionSpec::parse_kv`] reads it back; the two round-trip exactly
/// (including `threshold=inf`).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Number of parts to maintain (`parts=`, mandatory, > 0).
    pub parts: u32,
    /// Registry name of the full partitioner used for the opening solve
    /// and escalations (`method=`, default `mlga`). Validated at open
    /// time by the injected [`MethodResolver`].
    pub method: String,
    /// Dirty-frontier refinement engine (`refine=`, default `fm`).
    pub refine: RefineScheme,
    /// RNG seed (`seed=`, decimal or `0x`-hex; default
    /// [`DEFAULT_SESSION_SEED`]).
    pub seed: u64,
    /// Escalation threshold as a multiple of the epoch baseline cut
    /// (`threshold=`, default 1.5; `inf` disables escalation).
    pub threshold: f64,
    /// Refinement frontier radius in BFS hops (`hops=`, default 2).
    pub hops: usize,
}

impl SessionSpec {
    /// The defaults every surface shares, for `parts` parts.
    pub fn new(parts: u32) -> Self {
        SessionSpec {
            parts,
            method: "mlga".to_string(),
            refine: RefineScheme::default(),
            seed: DEFAULT_SESSION_SEED,
            threshold: 1.5,
            hops: 2,
        }
    }

    /// Sets one parameter from its textual form — the one validation
    /// path behind both `key=value` specs and CLI flags.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownKey`] / [`SpecError::BadValue`].
    // gapart-lint: allow(panic-reach) -- std `str::parse` on primitives; the Baseline::parse edge is a name-collision false positive
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), SpecError> {
        let bad = || SpecError::BadValue {
            key: key.to_string(),
            value: value.to_string(),
        };
        match key {
            "parts" => {
                self.parts = value.parse().ok().filter(|&p| p > 0).ok_or_else(bad)?;
            }
            "method" => {
                self.method = value.to_string();
            }
            "refine" => {
                self.refine = RefineScheme::by_name(value).ok_or_else(bad)?;
            }
            "seed" => {
                let parsed = match value
                    .strip_prefix("0x")
                    .or_else(|| value.strip_prefix("0X"))
                {
                    Some(hex) => u64::from_str_radix(hex, 16).ok(),
                    None => value.parse().ok(),
                };
                self.seed = parsed.ok_or_else(bad)?;
            }
            "threshold" => {
                self.threshold = value
                    .parse::<f64>()
                    .ok()
                    .filter(|t| *t > 0.0 && !t.is_nan())
                    .ok_or_else(bad)?;
            }
            "hops" => {
                self.hops = value.parse().map_err(|_| bad())?;
            }
            _ => return Err(SpecError::UnknownKey(key.to_string())),
        }
        Ok(())
    }

    /// Parses a whitespace-separated `key=value` spec. `parts=` is
    /// mandatory; every other key falls back to its default.
    ///
    /// # Errors
    ///
    /// See [`SpecError`].
    // gapart-lint: allow(panic-reach) -- inherits `set`'s std-parse name-collision false positive
    pub fn parse_kv(text: &str) -> Result<Self, SpecError> {
        let mut spec = SessionSpec::new(0);
        let mut saw_parts = false;
        for tok in text.split_whitespace() {
            let (key, value) = tok
                .split_once('=')
                .ok_or_else(|| SpecError::Malformed(tok.to_string()))?;
            spec.set(key, value)?;
            saw_parts |= key == "parts";
        }
        if !saw_parts {
            return Err(SpecError::MissingParts);
        }
        Ok(spec)
    }

    /// Renders the canonical `key=value` form. `parse_kv ∘ to_kv` is
    /// the identity; the serve tape records this string in its `open`
    /// record so a recovery reconstructs the exact configuration.
    pub fn to_kv(&self) -> String {
        format!(
            "parts={} method={} refine={} seed={} threshold={} hops={}",
            self.parts,
            self.method,
            self.refine.name(),
            self.seed,
            self.threshold,
            self.hops
        )
    }

    /// Lowers the spec to the session's internal knob struct.
    pub fn config(&self) -> DynamicConfig {
        DynamicConfig {
            num_parts: self.parts,
            seed: self.seed,
            refine_scheme: self.refine,
            frontier_hops: self.hops,
            escalate_ratio: self.threshold,
            ..DynamicConfig::default()
        }
    }

    /// Resolves the method and opens a fresh session on `graph` (full
    /// solve, epoch 1). See [`DynamicSession::new`].
    ///
    /// # Errors
    ///
    /// [`DynamicError::UnknownMethod`] when `resolver` does not know
    /// [`SessionSpec::method`]; otherwise as [`DynamicSession::new`].
    pub fn open(
        &self,
        graph: CsrGraph,
        resolver: MethodResolver,
    ) -> Result<DynamicSession, DynamicError> {
        let full = resolver(&self.method, self.refine)
            .ok_or_else(|| DynamicError::UnknownMethod(self.method.clone()))?;
        DynamicSession::new(graph, full, self.config())
    }

    /// Resolves the method and restores a session around persisted
    /// `(graph, partition, state)` — the serve daemon's
    /// snapshot-recovery path. See [`DynamicSession::resume`].
    ///
    /// # Errors
    ///
    /// [`DynamicError::UnknownMethod`] when `resolver` does not know
    /// [`SessionSpec::method`]; otherwise as [`DynamicSession::resume`].
    // gapart-lint: allow(panic-reach) -- cut_size indexing is unreachable: check_pair validates labels/graph shape first
    pub fn resume(
        &self,
        graph: CsrGraph,
        partition: Partition,
        state: SessionState,
        resolver: MethodResolver,
    ) -> Result<DynamicSession, DynamicError> {
        let full = resolver(&self.method, self.refine)
            .ok_or_else(|| DynamicError::UnknownMethod(self.method.clone()))?;
        DynamicSession::resume(graph, partition, full, self.config(), state)
    }
}

/// The part of a [`DynamicSession`]'s state that is not the graph or
/// the partition: the counters a persisted session must restore for a
/// resumed run to be bit-identical to an uninterrupted one.
///
/// `batches` feeds the per-batch sub-seed derivation, `epoch` and
/// `baseline_cut` drive escalation, and `current_cut` doubles as an
/// integrity check on resume (it must equal the recomputed cut of the
/// restored partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionState {
    /// Batches absorbed so far (the next batch's 0-based index).
    pub batches: usize,
    /// Full solves so far (see [`DynamicSession::epoch`]).
    pub epoch: usize,
    /// The cut the current epoch started from.
    pub baseline_cut: u64,
    /// The maintained cut of the partition.
    pub current_cut: u64,
}

/// How a batch was absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchAction {
    /// Seed + localized refinement only.
    Incremental,
    /// The degradation threshold tripped: a full repartition ran and a
    /// new epoch began.
    FullRepartition,
}

/// Per-batch history record. The `epoch` column makes escalations
/// visible: it increments exactly when `action` is
/// [`BatchAction::FullRepartition`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    /// 0-based batch index in the stream.
    pub batch: usize,
    /// Epoch after this batch (number of full solves so far).
    pub epoch: usize,
    /// Mutations in the batch.
    pub mutations: usize,
    /// Nodes the batch added.
    pub new_nodes: usize,
    /// Size of the localized-refinement frontier.
    pub frontier: usize,
    /// Cut right after seeding, before any refinement.
    pub cut_seeded: u64,
    /// Cut after the batch was fully absorbed.
    pub cut_after: u64,
    /// What the localized refinement did.
    pub refine: RefineStats,
    /// Incremental or escalated.
    pub action: BatchAction,
}

/// A live dynamic-repartitioning session: current graph + partition,
/// a full repartitioner for escalations, and the per-batch history.
///
/// See the [module docs](self) for the per-batch pipeline.
pub struct DynamicSession {
    graph: CsrGraph,
    partition: Partition,
    full: Box<dyn Partitioner>,
    config: DynamicConfig,
    /// Cut the current epoch started from: the result of the last full
    /// solve, or of the incremental partition when it beat that solve
    /// at the escalation. Escalation triggers relative to this.
    baseline_cut: u64,
    /// Maintained incrementally (edge deltas + refinement gain); always
    /// equal to `cut_size(&graph, &partition)`.
    current_cut: u64,
    epoch: usize,
    batches: usize,
    history: Vec<BatchRecord>,
    /// Reusable boundary-FM workspace (gain buckets, degree caches):
    /// batch refinement under [`RefineScheme::BoundaryFm`] touches only
    /// the dirty frontier's buckets and allocates nothing steady-state.
    fm: FmRefiner,
    /// Reusable parallel-FM workspace for
    /// [`RefineScheme::ParallelFm`] — the same frontier-local contract,
    /// with colored conflict-free move batches applied per round.
    pfm: ParallelFm,
}

impl std::fmt::Debug for DynamicSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicSession")
            .field("nodes", &self.graph.num_nodes())
            .field("parts", &self.config.num_parts)
            .field("full", &self.full.name())
            .field("epoch", &self.epoch)
            .field("batches", &self.batches)
            .finish()
    }
}

impl DynamicSession {
    /// Opens a session by running `full` once on `graph` — epoch 0's
    /// baseline solve.
    ///
    /// # Errors
    ///
    /// [`DynamicError::Escalation`] if the initial full solve fails.
    pub fn new(
        graph: CsrGraph,
        full: Box<dyn Partitioner>,
        config: DynamicConfig,
    ) -> Result<Self, DynamicError> {
        let report = full
            .partition(&graph, config.num_parts, config.seed)
            .map_err(DynamicError::Escalation)?;
        let cut = report.metrics.total_cut;
        Ok(DynamicSession {
            graph,
            partition: report.partition,
            full,
            config,
            baseline_cut: cut,
            current_cut: cut,
            epoch: 1,
            batches: 0,
            history: Vec::new(),
            fm: FmRefiner::new(),
            pfm: ParallelFm::new(),
        })
    }

    /// Opens a session around an existing partition (e.g. one loaded
    /// from disk), using its cut as the escalation baseline.
    ///
    /// # Errors
    ///
    /// [`DynamicError::Seed`] if `partition` does not cover `graph` or
    /// disagrees with the configured part count.
    pub fn with_partition(
        graph: CsrGraph,
        partition: Partition,
        full: Box<dyn Partitioner>,
        config: DynamicConfig,
    ) -> Result<Self, DynamicError> {
        Self::check_pair(&graph, &partition, &config)?;
        let cut = cut_size(&graph, &partition);
        Ok(Self::assemble(
            graph,
            partition,
            full,
            config,
            // No full solve has run: the supplied partition is the
            // epoch-0 baseline.
            SessionState {
                batches: 0,
                epoch: 0,
                baseline_cut: cut,
                current_cut: cut,
            },
        ))
    }

    /// Restores a session from persisted `(graph, partition, state)` —
    /// the crash-recovery path: a tape snapshot carries exactly these
    /// three plus the [`SessionSpec`]. Restoring `state.batches` keeps
    /// the per-batch sub-seed derivation aligned, so replaying the
    /// post-snapshot tail reproduces the uninterrupted run bit for bit.
    ///
    /// # Errors
    ///
    /// [`DynamicError::Seed`] if `partition` does not cover `graph` or
    /// disagrees with the configured part count;
    /// [`DynamicError::Resume`] if the recomputed cut of the restored
    /// partition disagrees with `state.current_cut` (a corrupt or
    /// mismatched snapshot).
    // gapart-lint: allow(panic-reach) -- cut_size indexing is unreachable: check_pair validates labels/graph shape first
    pub fn resume(
        graph: CsrGraph,
        partition: Partition,
        full: Box<dyn Partitioner>,
        config: DynamicConfig,
        state: SessionState,
    ) -> Result<Self, DynamicError> {
        Self::check_pair(&graph, &partition, &config)?;
        let actual = cut_size(&graph, &partition);
        if actual != state.current_cut {
            return Err(DynamicError::Resume(format!(
                "snapshot says cut {}, restored partition has cut {actual}",
                state.current_cut
            )));
        }
        Ok(Self::assemble(graph, partition, full, config, state))
    }

    /// Shared shape check for externally supplied partitions.
    fn check_pair(
        graph: &CsrGraph,
        partition: &Partition,
        config: &DynamicConfig,
    ) -> Result<(), DynamicError> {
        if partition.num_nodes() != graph.num_nodes() || partition.num_parts() != config.num_parts {
            return Err(DynamicError::Seed(GaError::BadSeed {
                message: format!(
                    "partition covers {} nodes / {} parts, session wants {} / {}",
                    partition.num_nodes(),
                    partition.num_parts(),
                    graph.num_nodes(),
                    config.num_parts
                ),
            }));
        }
        Ok(())
    }

    fn assemble(
        graph: CsrGraph,
        partition: Partition,
        full: Box<dyn Partitioner>,
        config: DynamicConfig,
        state: SessionState,
    ) -> Self {
        DynamicSession {
            graph,
            partition,
            full,
            config,
            baseline_cut: state.baseline_cut,
            current_cut: state.current_cut,
            epoch: state.epoch,
            batches: state.batches,
            history: Vec::new(),
            fm: FmRefiner::new(),
            pfm: ParallelFm::new(),
        }
    }

    /// The restorable counters — what a snapshot must persist alongside
    /// the graph and partition (see [`DynamicSession::resume`]).
    pub fn state(&self) -> SessionState {
        SessionState {
            batches: self.batches,
            epoch: self.epoch,
            baseline_cut: self.baseline_cut,
            current_cut: self.current_cut,
        }
    }

    /// The current graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The maintained partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The session configuration.
    pub fn config(&self) -> &DynamicConfig {
        &self.config
    }

    /// Per-batch records, oldest first.
    pub fn history(&self) -> &[BatchRecord] {
        &self.history
    }

    /// Number of full solves so far: the initial solve when the session
    /// was opened with [`DynamicSession::new`] (a
    /// [`DynamicSession::with_partition`] session starts at 0) plus one
    /// per escalation.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// The cut the current epoch started from — what escalation
    /// triggers relative to. After a [`DynamicSession::new`] open or an
    /// escalation where the fresh solve won, this is that full solve's
    /// cut; when the incremental partition beat the fresh solve at an
    /// escalation, it is the (better) incremental cut instead.
    pub fn baseline_cut(&self) -> u64 {
        self.baseline_cut
    }

    /// Current cut of the maintained partition (tracked incrementally;
    /// `O(1)`).
    pub fn current_cut(&self) -> u64 {
        debug_assert_eq!(self.current_cut, cut_size(&self.graph, &self.partition));
        self.current_cut
    }

    /// Deterministic per-batch sub-seed.
    fn batch_seed(&self) -> u64 {
        self.config
            .seed
            .wrapping_add((self.batches as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Applies one mutation batch; returns the record it appended (the
    /// same value [`DynamicSession::history`] retains).
    ///
    /// # Errors
    ///
    /// See [`DynamicError`]; on error the session is unchanged.
    pub fn apply_batch(&mut self, batch: &[Mutation]) -> Result<BatchRecord, DynamicError> {
        let (graph, dirty) = apply_batch(&self.graph, batch)?;
        let seed = self.batch_seed();
        let n_old = self.partition.num_nodes();
        let new_nodes = graph.num_nodes() - n_old;
        let n_parts = self.config.num_parts as usize;

        // Cut delta contributed by the batch's edges under a given
        // labelling: every `AddEdge` op adds its weight to the (possibly
        // pre-existing) edge, so it raises the cut by exactly that
        // weight when its endpoints sit in different parts. This keeps
        // the cut maintained in O(|batch|) instead of re-walking the
        // whole edge set.
        let added_cut = |p: &Partition| -> u64 {
            batch
                .iter()
                .map(|m| match *m {
                    Mutation::AddEdge { u, v, weight } if p.part(u) != p.part(v) => weight as u64,
                    _ => 0,
                })
                .sum()
        };

        // 1. Seed: both of the paper's policies, best composite cost
        //    wins. Both candidates agree on the old-node prefix, so the
        //    comparison needs only a load tally plus the batch's edge
        //    delta — no full-graph metrics pass.
        let (mut partition, cut_seeded) = if new_nodes > 0 {
            let balanced = extend_partition_balanced(&graph, &self.partition, seed)
                .map_err(DynamicError::Seed)?;
            let majority =
                greedy_neighbor_assign(&graph, &self.partition).map_err(DynamicError::Seed)?;
            let mut base_loads = vec![0u64; n_parts];
            for v in 0..n_old as u32 {
                base_loads[self.partition.part(v) as usize] += graph.node_weight(v) as u64;
            }
            let avg = graph.total_node_weight() as f64 / n_parts as f64;
            // The paper's composite cost Σ I(q) + λ Σ C(q), with
            // Σ C(q) = 2 × total cut (each cut edge charges both parts).
            let score = |p: &Partition| -> (f64, u64) {
                let mut loads = base_loads.clone();
                for v in n_old as u32..graph.num_nodes() as u32 {
                    loads[p.part(v) as usize] += graph.node_weight(v) as u64;
                }
                let imbalance: f64 = loads
                    .iter()
                    .map(|&l| {
                        let d = l as f64 - avg;
                        d * d
                    })
                    .sum();
                let cut = self.current_cut + added_cut(p);
                (imbalance + self.config.lambda * (2 * cut) as f64, cut)
            };
            let (cost_b, cut_b) = score(&balanced);
            let (cost_m, cut_m) = score(&majority);
            if cost_m < cost_b {
                (majority, cut_m)
            } else {
                (balanced, cut_b)
            }
        } else {
            let cut = self.current_cut + added_cut(&self.partition);
            (self.partition.clone(), cut)
        };
        debug_assert_eq!(cut_seeded, cut_size(&graph, &partition));

        // 2. Localized refinement on the dirty frontier. The refiner's
        //    reported gain is the exact cut delta (unit-tested), so the
        //    cut stays maintained without an edge-set pass. Boundary FM
        //    rebuilds only the frontier's buckets inside the session's
        //    persistent workspace.
        let frontier = dirty.frontier(&graph, self.config.frontier_hops);
        let refine = match self.config.refine_scheme {
            RefineScheme::BoundaryFm => {
                self.fm
                    .refine_local(&graph, &mut partition, &self.config.refine, seed, &frontier)
            }
            RefineScheme::ParallelFm | RefineScheme::ParallelFmRescan => {
                // Same engine, two eval-table modes (identical results);
                // the persistent workspace serves both.
                self.pfm.set_full_rescan(matches!(
                    self.config.refine_scheme,
                    RefineScheme::ParallelFmRescan
                ));
                self.pfm
                    .refine_local(&graph, &mut partition, &self.config.refine, seed, &frontier)
            }
            RefineScheme::Sweep => {
                refine_kway_local(&graph, &mut partition, &self.config.refine, &frontier)
            }
        };
        let mut cut_after = cut_seeded - refine.gain;
        debug_assert_eq!(cut_after, cut_size(&graph, &partition));

        // 3. Escalate when quality degraded past the threshold.
        let degraded = cut_after as f64 > self.config.escalate_ratio * self.baseline_cut as f64;
        let action = if degraded {
            let report = self
                .full
                .partition(&graph, self.config.num_parts, seed)
                .map_err(DynamicError::Escalation)?;
            // Keep whichever side of the escalation is actually better:
            // a small-budget full solve can lose to a well-maintained
            // incremental partition, and regressing the cut would make
            // escalation worse than useless. Either way the survivor's
            // cut becomes the new epoch baseline.
            if report.metrics.total_cut < cut_after {
                partition = report.partition;
                cut_after = report.metrics.total_cut;
            }
            self.baseline_cut = cut_after;
            self.epoch += 1;
            BatchAction::FullRepartition
        } else {
            BatchAction::Incremental
        };

        self.graph = graph;
        self.partition = partition;
        self.current_cut = cut_after;
        let record = BatchRecord {
            batch: self.batches,
            epoch: self.epoch,
            mutations: batch.len(),
            new_nodes,
            frontier: frontier.len(),
            cut_seeded,
            cut_after,
            refine,
            action,
        };
        self.history.push(record.clone());
        self.batches += 1;
        Ok(record)
    }

    /// Replays a whole trace, stopping at the first error.
    ///
    /// # Errors
    ///
    /// The first [`DynamicError`] any batch raises; batches before it
    /// are applied.
    pub fn replay(&mut self, batches: &[Vec<Mutation>]) -> Result<(), DynamicError> {
        for batch in batches {
            self.apply_batch(batch)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GaConfig;
    use crate::partitioner_impl::GaPartitioner;
    use gapart_graph::dynamic::scenario::{generate, Scenario, TraceSpec};
    use gapart_graph::dynamic::MutationLog;
    use gapart_graph::generators::jittered_mesh;
    use gapart_graph::multilevel::MultilevelPartitioner;

    /// Small-budget multilevel GA, the intended escalation partitioner.
    fn mlga() -> Box<dyn Partitioner> {
        Box::new(MultilevelPartitioner::new(
            "mlga",
            Box::new(GaPartitioner::new(GaConfig::coarse_defaults(4))),
        ))
    }

    fn session(n: usize, parts: u32) -> DynamicSession {
        DynamicSession::new(
            jittered_mesh(n, 11),
            mlga(),
            DynamicConfig {
                seed: 5,
                ..DynamicConfig::new(parts)
            },
        )
        .unwrap()
    }

    #[test]
    fn opens_with_a_full_solve() {
        let s = session(150, 4);
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.partition().num_nodes(), 150);
        assert_eq!(s.baseline_cut(), s.current_cut());
        assert!(s.history().is_empty());
    }

    #[test]
    fn incremental_batch_keeps_all_invariants() {
        let mut s = session(150, 4);
        let mut log = MutationLog::new(150);
        let a = log.add_node(1, Some(gapart_graph::Point2::new(0.5, 0.5)));
        log.add_edge(a, 10, 1);
        log.add_edge(a, 20, 1);
        let rec = s.apply_batch(log.ops()).unwrap();
        assert_eq!(rec.action, BatchAction::Incremental);
        assert_eq!(rec.new_nodes, 1);
        assert_eq!(s.partition().num_nodes(), 151);
        assert!(s.partition().labels().iter().all(|&l| l < 4));
        // Refinement never worsens the seeded cut.
        assert!(rec.cut_after <= rec.cut_seeded);
        // No part was drained empty.
        assert!(s.partition().part_sizes().iter().all(|&z| z > 0));
    }

    #[test]
    fn replays_a_generated_trace_end_to_end() {
        let mut s = session(200, 4);
        let trace = generate(
            s.graph(),
            Scenario::RandomChurn,
            &TraceSpec {
                batches: 6,
                ops_per_batch: 12,
                seed: 3,
            },
        )
        .unwrap();
        s.replay(&trace).unwrap();
        assert_eq!(s.history().len(), 6);
        assert_eq!(s.partition().num_nodes(), s.graph().num_nodes());
        s.graph().validate().unwrap();
    }

    #[test]
    fn escalation_trips_on_degradation_and_starts_an_epoch() {
        // Forcing the threshold to 0 makes any positive cut "degraded",
        // so every batch must escalate.
        let g = jittered_mesh(150, 11);
        let mut s = DynamicSession::new(
            g,
            mlga(),
            DynamicConfig {
                seed: 5,
                escalate_ratio: 0.0,
                ..DynamicConfig::new(4)
            },
        )
        .unwrap();
        let trace = generate(
            s.graph(),
            Scenario::MeshGrowth,
            &TraceSpec {
                batches: 3,
                ops_per_batch: 10,
                seed: 8,
            },
        )
        .unwrap();
        s.replay(&trace).unwrap();
        assert_eq!(s.epoch(), 4, "every batch should escalate");
        assert!(s
            .history()
            .iter()
            .all(|r| r.action == BatchAction::FullRepartition));

        // And an infinite threshold never escalates.
        let g = jittered_mesh(150, 11);
        let mut s = DynamicSession::new(
            g,
            mlga(),
            DynamicConfig {
                seed: 5,
                escalate_ratio: f64::INFINITY,
                ..DynamicConfig::new(4)
            },
        )
        .unwrap();
        s.replay(&trace).unwrap();
        assert_eq!(s.epoch(), 1);
    }

    #[test]
    fn escalation_never_regresses_the_cut() {
        let g = jittered_mesh(180, 4);
        let mut s = DynamicSession::new(
            g,
            mlga(),
            DynamicConfig {
                seed: 9,
                escalate_ratio: 0.0,
                ..DynamicConfig::new(4)
            },
        )
        .unwrap();
        let trace = generate(
            s.graph(),
            Scenario::RandomChurn,
            &TraceSpec {
                batches: 4,
                ops_per_batch: 8,
                seed: 2,
            },
        )
        .unwrap();
        for batch in &trace {
            let incremental_cut = {
                // What the cut would be without escalation is not directly
                // observable; instead assert the recorded escalated cut is
                // never worse than the recorded seeded+refined cut.
                let rec = s.apply_batch(batch).unwrap();
                (rec.cut_after, rec.cut_seeded)
            };
            assert!(incremental_cut.0 <= incremental_cut.1);
        }
    }

    #[test]
    fn hotspot_drift_changes_loads_without_structure() {
        let mut s = session(160, 4);
        let trace = generate(
            s.graph(),
            Scenario::HotspotDrift,
            &TraceSpec {
                batches: 5,
                ops_per_batch: 15,
                seed: 6,
            },
        )
        .unwrap();
        let nodes_before = s.graph().num_nodes();
        s.replay(&trace).unwrap();
        assert_eq!(s.graph().num_nodes(), nodes_before);
        assert!(s.history().iter().all(|r| r.new_nodes == 0));
    }

    #[test]
    fn bad_batches_leave_the_session_unchanged() {
        let mut s = session(100, 4);
        let before_nodes = s.graph().num_nodes();
        let before_partition = s.partition().clone();
        let bad = vec![Mutation::AddEdge {
            u: 0,
            v: 9999,
            weight: 1,
        }];
        assert!(matches!(
            s.apply_batch(&bad).unwrap_err(),
            DynamicError::Graph(GraphError::NodeOutOfRange { .. })
        ));
        assert_eq!(s.graph().num_nodes(), before_nodes);
        assert_eq!(s.partition(), &before_partition);
        assert!(s.history().is_empty());
    }

    #[test]
    fn with_partition_validates_and_uses_the_given_baseline() {
        let g = jittered_mesh(80, 3);
        let p = Partition::round_robin(80, 4);
        let baseline = cut_size(&g, &p);
        let s = DynamicSession::with_partition(g, p, mlga(), DynamicConfig::new(4)).unwrap();
        assert_eq!(s.baseline_cut(), baseline);
        assert_eq!(s.epoch(), 0, "no full solve has run yet");

        let g = jittered_mesh(80, 3);
        let wrong = Partition::round_robin(80, 8);
        assert!(matches!(
            DynamicSession::with_partition(g, wrong, mlga(), DynamicConfig::new(4)).unwrap_err(),
            DynamicError::Seed(_)
        ));
    }

    /// Resolver over the test `mlga`, matching the [`MethodResolver`]
    /// shape the CLI and daemon inject.
    fn resolve(name: &str, _scheme: RefineScheme) -> Option<Box<dyn Partitioner>> {
        (name == "mlga").then(mlga)
    }

    #[test]
    fn spec_parses_validates_and_round_trips() {
        let spec =
            SessionSpec::parse_kv("parts=4 seed=0x2A threshold=inf hops=3 refine=pfm").unwrap();
        assert_eq!(spec.parts, 4);
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.threshold, f64::INFINITY);
        assert_eq!(spec.hops, 3);
        assert_eq!(spec.refine, RefineScheme::ParallelFm);
        assert_eq!(spec.method, "mlga", "default survives partial specs");
        // Canonical form round-trips exactly, including the inf threshold.
        assert_eq!(SessionSpec::parse_kv(&spec.to_kv()).unwrap(), spec);
        let dflt = SessionSpec::new(2);
        assert_eq!(SessionSpec::parse_kv(&dflt.to_kv()).unwrap(), dflt);

        assert_eq!(
            SessionSpec::parse_kv("seed=1").unwrap_err(),
            SpecError::MissingParts
        );
        assert_eq!(
            SessionSpec::parse_kv("parts=0").unwrap_err(),
            SpecError::BadValue {
                key: "parts".into(),
                value: "0".into()
            }
        );
        assert!(matches!(
            SessionSpec::parse_kv("parts=2 frob=1").unwrap_err(),
            SpecError::UnknownKey(_)
        ));
        assert!(matches!(
            SessionSpec::parse_kv("parts=2 nodice").unwrap_err(),
            SpecError::Malformed(_)
        ));
        assert!(matches!(
            SessionSpec::parse_kv("parts=2 refine=quantum").unwrap_err(),
            SpecError::BadValue { .. }
        ));
        assert!(matches!(
            SessionSpec::parse_kv("parts=2 threshold=-1").unwrap_err(),
            SpecError::BadValue { .. }
        ));
    }

    #[test]
    fn spec_open_resolves_the_method() {
        let spec = SessionSpec {
            seed: 5,
            ..SessionSpec::new(4)
        };
        let s = spec.open(jittered_mesh(120, 11), resolve).unwrap();
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.config().num_parts, 4);
        assert_eq!(s.config().seed, 5);

        let unknown = SessionSpec {
            method: "frob".into(),
            ..SessionSpec::new(4)
        };
        assert!(matches!(
            unknown.open(jittered_mesh(120, 11), resolve).unwrap_err(),
            DynamicError::UnknownMethod(m) if m == "frob"
        ));
    }

    #[test]
    fn resume_restores_counters_and_checks_the_cut() {
        // Run a session halfway, capture its state, and resume a clone
        // from (graph, partition, state): the continuations must agree
        // batch for batch — the crash-recovery determinism contract.
        let trace = generate(
            &jittered_mesh(150, 11),
            Scenario::RandomChurn,
            &TraceSpec {
                batches: 6,
                ops_per_batch: 10,
                seed: 1,
            },
        )
        .unwrap();
        let mut live = session(150, 4);
        live.replay(&trace[..3]).unwrap();

        let mut resumed = DynamicSession::resume(
            live.graph().clone(),
            live.partition().clone(),
            mlga(),
            *live.config(),
            live.state(),
        )
        .unwrap();
        assert_eq!(resumed.state(), live.state());

        live.replay(&trace[3..]).unwrap();
        resumed.replay(&trace[3..]).unwrap();
        assert_eq!(resumed.partition(), live.partition());
        assert_eq!(resumed.state(), live.state());

        // A tampered cut is rejected.
        let mut bad = live.state();
        bad.current_cut += 1;
        assert!(matches!(
            DynamicSession::resume(
                live.graph().clone(),
                live.partition().clone(),
                mlga(),
                *live.config(),
                bad,
            )
            .unwrap_err(),
            DynamicError::Resume(_)
        ));
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = generate(
            &jittered_mesh(150, 11),
            Scenario::RandomChurn,
            &TraceSpec {
                batches: 5,
                ops_per_batch: 10,
                seed: 1,
            },
        )
        .unwrap();
        let run = || {
            let mut s = session(150, 4);
            s.replay(&trace).unwrap();
            (s.partition().clone(), s.history().to_vec(), s.epoch())
        };
        assert_eq!(run(), run());
    }
}
