//! Streaming dynamic repartitioning: maintain a partition across a
//! mutation stream.
//!
//! This is the production generalization of the paper's one-shot
//! incremental experiment (§3.5, §4.2). A [`DynamicSession`] owns the
//! current graph and partition and applies
//! [`gapart_graph::dynamic::Mutation`] batches with a three-stage
//! pipeline per batch:
//!
//! 1. **Seed** — new nodes are assigned by *both* of the paper's
//!    policies: the §3.5 balanced extension
//!    ([`crate::incremental::extend_partition_balanced`]) and the
//!    conclusion's neighbour-majority baseline
//!    ([`crate::incremental::greedy_neighbor_assign`]); the candidate
//!    with the lower composite cost (`Σ I(q) + λ Σ C(q)`, the paper's
//!    Fitness-1 objective) wins, ties toward the balanced policy.
//! 2. **Localized refine** — the configured
//!    [`gapart_graph::refine::RefineScheme`] (boundary FM by default,
//!    reusing the session's gain-bucket workspace so only the dirty
//!    frontier's buckets are rebuilt; or the frozen-gain sweep
//!    [`gapart_graph::refine::refine_kway_local`]) touches only the
//!    frontier (the mutated nodes plus a configurable BFS halo). The
//!    cut is maintained incrementally (batch edge deltas plus the
//!    refiner's exact gain), so outside escalations a batch costs the
//!    frontier work plus `O(V)` tallies — never a full edge-set pass.
//! 3. **Escalate when degraded** — when the maintained cut exceeds
//!    `escalate_ratio ×` the epoch's baseline cut
//!    ([`DynamicSession::baseline_cut`]), the session runs its full
//!    partitioner (typically the multilevel V-cycle from PR 2) from
//!    scratch, keeps the better of the two partitions, starts a new
//!    *epoch*, and re-anchors the baseline at the survivor's cut.
//!
//! Every step is deterministic: replaying the same trace through the
//! same configuration yields a bit-identical partition, regardless of
//! thread count (asserted in `tests/stream_contract.rs`).

use crate::error::GaError;
use crate::incremental::{extend_partition_balanced, greedy_neighbor_assign};
use gapart_graph::dynamic::{apply_batch, Mutation};
use gapart_graph::fm::{FmRefiner, ParallelFm};
use gapart_graph::partition::cut_size;
use gapart_graph::refine::{refine_kway_local, RefineOptions, RefineScheme, RefineStats};
use gapart_graph::{CsrGraph, GraphError, Partition, Partitioner, PartitionerError};

/// Errors surfaced by a [`DynamicSession`].
#[derive(Debug, Clone, PartialEq)]
pub enum DynamicError {
    /// A mutation batch was structurally invalid for the current graph.
    Graph(GraphError),
    /// Seeding the new nodes failed (partition/graph mismatch).
    Seed(GaError),
    /// The full repartitioner failed during an escalation.
    Escalation(PartitionerError),
}

impl std::fmt::Display for DynamicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicError::Graph(e) => write!(f, "bad mutation batch: {e}"),
            DynamicError::Seed(e) => write!(f, "seeding failed: {e}"),
            DynamicError::Escalation(e) => write!(f, "full repartition failed: {e}"),
        }
    }
}

impl std::error::Error for DynamicError {}

impl From<GraphError> for DynamicError {
    fn from(e: GraphError) -> Self {
        DynamicError::Graph(e)
    }
}

/// Knobs of a [`DynamicSession`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicConfig {
    /// Number of parts to maintain.
    pub num_parts: u32,
    /// Seed for every stochastic step (balanced seeding, escalations).
    /// Batch `i` derives its sub-seed from `seed` and `i`, so a replay
    /// is a pure function of `(graph, trace, config)`.
    pub seed: u64,
    /// Options for the localized refinement pass.
    pub refine: RefineOptions,
    /// Refinement engine for the dirty-frontier pass: the boundary FM
    /// refiner (default; its gain buckets and degree caches live in the
    /// session and are reused across batches) or the frozen-gain sweep.
    pub refine_scheme: RefineScheme,
    /// BFS halo around the dirty nodes that the localized refinement may
    /// move (hops; 2 by default). Larger values trade batch latency for
    /// cut quality.
    pub frontier_hops: usize,
    /// Escalate to a full repartition when the maintained cut exceeds
    /// this multiple of the epoch's baseline cut
    /// ([`DynamicSession::baseline_cut`]; 1.5 by default).
    /// `f64::INFINITY` disables escalation entirely.
    pub escalate_ratio: f64,
    /// λ of the composite cost used to choose between the two seeding
    /// policies (1.0, the paper's setting).
    pub lambda: f64,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            num_parts: 2,
            seed: 0x5354_5245, // "STRE"
            refine: RefineOptions::default(),
            refine_scheme: RefineScheme::default(),
            frontier_hops: 2,
            escalate_ratio: 1.5,
            lambda: 1.0,
        }
    }
}

impl DynamicConfig {
    /// Default configuration for `num_parts` parts.
    pub fn new(num_parts: u32) -> Self {
        DynamicConfig {
            num_parts,
            ..DynamicConfig::default()
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the escalation threshold.
    pub fn with_escalate_ratio(mut self, ratio: f64) -> Self {
        self.escalate_ratio = ratio;
        self
    }

    /// Sets the refinement frontier size in BFS hops.
    pub fn with_frontier_hops(mut self, hops: usize) -> Self {
        self.frontier_hops = hops;
        self
    }

    /// Sets the dirty-frontier refinement engine.
    pub fn with_refine_scheme(mut self, scheme: RefineScheme) -> Self {
        self.refine_scheme = scheme;
        self
    }
}

/// How a batch was absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchAction {
    /// Seed + localized refinement only.
    Incremental,
    /// The degradation threshold tripped: a full repartition ran and a
    /// new epoch began.
    FullRepartition,
}

/// Per-batch history record. The `epoch` column makes escalations
/// visible: it increments exactly when `action` is
/// [`BatchAction::FullRepartition`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    /// 0-based batch index in the stream.
    pub batch: usize,
    /// Epoch after this batch (number of full solves so far).
    pub epoch: usize,
    /// Mutations in the batch.
    pub mutations: usize,
    /// Nodes the batch added.
    pub new_nodes: usize,
    /// Size of the localized-refinement frontier.
    pub frontier: usize,
    /// Cut right after seeding, before any refinement.
    pub cut_seeded: u64,
    /// Cut after the batch was fully absorbed.
    pub cut_after: u64,
    /// What the localized refinement did.
    pub refine: RefineStats,
    /// Incremental or escalated.
    pub action: BatchAction,
}

/// A live dynamic-repartitioning session: current graph + partition,
/// a full repartitioner for escalations, and the per-batch history.
///
/// See the [module docs](self) for the per-batch pipeline.
pub struct DynamicSession {
    graph: CsrGraph,
    partition: Partition,
    full: Box<dyn Partitioner>,
    config: DynamicConfig,
    /// Cut the current epoch started from: the result of the last full
    /// solve, or of the incremental partition when it beat that solve
    /// at the escalation. Escalation triggers relative to this.
    baseline_cut: u64,
    /// Maintained incrementally (edge deltas + refinement gain); always
    /// equal to `cut_size(&graph, &partition)`.
    current_cut: u64,
    epoch: usize,
    batches: usize,
    history: Vec<BatchRecord>,
    /// Reusable boundary-FM workspace (gain buckets, degree caches):
    /// batch refinement under [`RefineScheme::BoundaryFm`] touches only
    /// the dirty frontier's buckets and allocates nothing steady-state.
    fm: FmRefiner,
    /// Reusable parallel-FM workspace for
    /// [`RefineScheme::ParallelFm`] — the same frontier-local contract,
    /// with colored conflict-free move batches applied per round.
    pfm: ParallelFm,
}

impl std::fmt::Debug for DynamicSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicSession")
            .field("nodes", &self.graph.num_nodes())
            .field("parts", &self.config.num_parts)
            .field("full", &self.full.name())
            .field("epoch", &self.epoch)
            .field("batches", &self.batches)
            .finish()
    }
}

impl DynamicSession {
    /// Opens a session by running `full` once on `graph` — epoch 0's
    /// baseline solve.
    ///
    /// # Errors
    ///
    /// [`DynamicError::Escalation`] if the initial full solve fails.
    pub fn new(
        graph: CsrGraph,
        full: Box<dyn Partitioner>,
        config: DynamicConfig,
    ) -> Result<Self, DynamicError> {
        let report = full
            .partition(&graph, config.num_parts, config.seed)
            .map_err(DynamicError::Escalation)?;
        let cut = report.metrics.total_cut;
        Ok(DynamicSession {
            graph,
            partition: report.partition,
            full,
            config,
            baseline_cut: cut,
            current_cut: cut,
            epoch: 1,
            batches: 0,
            history: Vec::new(),
            fm: FmRefiner::new(),
            pfm: ParallelFm::new(),
        })
    }

    /// Opens a session around an existing partition (e.g. one loaded
    /// from disk), using its cut as the escalation baseline.
    ///
    /// # Errors
    ///
    /// [`DynamicError::Seed`] if `partition` does not cover `graph` or
    /// disagrees with the configured part count.
    pub fn with_partition(
        graph: CsrGraph,
        partition: Partition,
        full: Box<dyn Partitioner>,
        config: DynamicConfig,
    ) -> Result<Self, DynamicError> {
        if partition.num_nodes() != graph.num_nodes() || partition.num_parts() != config.num_parts {
            return Err(DynamicError::Seed(GaError::BadSeed {
                message: format!(
                    "partition covers {} nodes / {} parts, session wants {} / {}",
                    partition.num_nodes(),
                    partition.num_parts(),
                    graph.num_nodes(),
                    config.num_parts
                ),
            }));
        }
        let cut = cut_size(&graph, &partition);
        Ok(DynamicSession {
            graph,
            partition,
            full,
            config,
            baseline_cut: cut,
            current_cut: cut,
            // No full solve has run: the supplied partition is the
            // epoch-0 baseline.
            epoch: 0,
            batches: 0,
            history: Vec::new(),
            fm: FmRefiner::new(),
            pfm: ParallelFm::new(),
        })
    }

    /// The current graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The maintained partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The session configuration.
    pub fn config(&self) -> &DynamicConfig {
        &self.config
    }

    /// Per-batch records, oldest first.
    pub fn history(&self) -> &[BatchRecord] {
        &self.history
    }

    /// Number of full solves so far: the initial solve when the session
    /// was opened with [`DynamicSession::new`] (a
    /// [`DynamicSession::with_partition`] session starts at 0) plus one
    /// per escalation.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// The cut the current epoch started from — what escalation
    /// triggers relative to. After a [`DynamicSession::new`] open or an
    /// escalation where the fresh solve won, this is that full solve's
    /// cut; when the incremental partition beat the fresh solve at an
    /// escalation, it is the (better) incremental cut instead.
    pub fn baseline_cut(&self) -> u64 {
        self.baseline_cut
    }

    /// Current cut of the maintained partition (tracked incrementally;
    /// `O(1)`).
    pub fn current_cut(&self) -> u64 {
        debug_assert_eq!(self.current_cut, cut_size(&self.graph, &self.partition));
        self.current_cut
    }

    /// Deterministic per-batch sub-seed.
    fn batch_seed(&self) -> u64 {
        self.config
            .seed
            .wrapping_add((self.batches as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Applies one mutation batch; returns the record it appended.
    ///
    /// # Errors
    ///
    /// See [`DynamicError`]; on error the session is unchanged.
    pub fn apply_batch(&mut self, batch: &[Mutation]) -> Result<&BatchRecord, DynamicError> {
        let (graph, dirty) = apply_batch(&self.graph, batch)?;
        let seed = self.batch_seed();
        let n_old = self.partition.num_nodes();
        let new_nodes = graph.num_nodes() - n_old;
        let n_parts = self.config.num_parts as usize;

        // Cut delta contributed by the batch's edges under a given
        // labelling: every `AddEdge` op adds its weight to the (possibly
        // pre-existing) edge, so it raises the cut by exactly that
        // weight when its endpoints sit in different parts. This keeps
        // the cut maintained in O(|batch|) instead of re-walking the
        // whole edge set.
        let added_cut = |p: &Partition| -> u64 {
            batch
                .iter()
                .map(|m| match *m {
                    Mutation::AddEdge { u, v, weight } if p.part(u) != p.part(v) => weight as u64,
                    _ => 0,
                })
                .sum()
        };

        // 1. Seed: both of the paper's policies, best composite cost
        //    wins. Both candidates agree on the old-node prefix, so the
        //    comparison needs only a load tally plus the batch's edge
        //    delta — no full-graph metrics pass.
        let (mut partition, cut_seeded) = if new_nodes > 0 {
            let balanced = extend_partition_balanced(&graph, &self.partition, seed)
                .map_err(DynamicError::Seed)?;
            let majority =
                greedy_neighbor_assign(&graph, &self.partition).map_err(DynamicError::Seed)?;
            let mut base_loads = vec![0u64; n_parts];
            for v in 0..n_old as u32 {
                base_loads[self.partition.part(v) as usize] += graph.node_weight(v) as u64;
            }
            let avg = graph.total_node_weight() as f64 / n_parts as f64;
            // The paper's composite cost Σ I(q) + λ Σ C(q), with
            // Σ C(q) = 2 × total cut (each cut edge charges both parts).
            let score = |p: &Partition| -> (f64, u64) {
                let mut loads = base_loads.clone();
                for v in n_old as u32..graph.num_nodes() as u32 {
                    loads[p.part(v) as usize] += graph.node_weight(v) as u64;
                }
                let imbalance: f64 = loads
                    .iter()
                    .map(|&l| {
                        let d = l as f64 - avg;
                        d * d
                    })
                    .sum();
                let cut = self.current_cut + added_cut(p);
                (imbalance + self.config.lambda * (2 * cut) as f64, cut)
            };
            let (cost_b, cut_b) = score(&balanced);
            let (cost_m, cut_m) = score(&majority);
            if cost_m < cost_b {
                (majority, cut_m)
            } else {
                (balanced, cut_b)
            }
        } else {
            let cut = self.current_cut + added_cut(&self.partition);
            (self.partition.clone(), cut)
        };
        debug_assert_eq!(cut_seeded, cut_size(&graph, &partition));

        // 2. Localized refinement on the dirty frontier. The refiner's
        //    reported gain is the exact cut delta (unit-tested), so the
        //    cut stays maintained without an edge-set pass. Boundary FM
        //    rebuilds only the frontier's buckets inside the session's
        //    persistent workspace.
        let frontier = dirty.frontier(&graph, self.config.frontier_hops);
        let refine = match self.config.refine_scheme {
            RefineScheme::BoundaryFm => {
                self.fm
                    .refine_local(&graph, &mut partition, &self.config.refine, seed, &frontier)
            }
            RefineScheme::ParallelFm | RefineScheme::ParallelFmRescan => {
                // Same engine, two eval-table modes (identical results);
                // the persistent workspace serves both.
                self.pfm.set_full_rescan(matches!(
                    self.config.refine_scheme,
                    RefineScheme::ParallelFmRescan
                ));
                self.pfm
                    .refine_local(&graph, &mut partition, &self.config.refine, seed, &frontier)
            }
            RefineScheme::Sweep => {
                refine_kway_local(&graph, &mut partition, &self.config.refine, &frontier)
            }
        };
        let mut cut_after = cut_seeded - refine.gain;
        debug_assert_eq!(cut_after, cut_size(&graph, &partition));

        // 3. Escalate when quality degraded past the threshold.
        let degraded = cut_after as f64 > self.config.escalate_ratio * self.baseline_cut as f64;
        let action = if degraded {
            let report = self
                .full
                .partition(&graph, self.config.num_parts, seed)
                .map_err(DynamicError::Escalation)?;
            // Keep whichever side of the escalation is actually better:
            // a small-budget full solve can lose to a well-maintained
            // incremental partition, and regressing the cut would make
            // escalation worse than useless. Either way the survivor's
            // cut becomes the new epoch baseline.
            if report.metrics.total_cut < cut_after {
                partition = report.partition;
                cut_after = report.metrics.total_cut;
            }
            self.baseline_cut = cut_after;
            self.epoch += 1;
            BatchAction::FullRepartition
        } else {
            BatchAction::Incremental
        };

        self.graph = graph;
        self.partition = partition;
        self.current_cut = cut_after;
        self.history.push(BatchRecord {
            batch: self.batches,
            epoch: self.epoch,
            mutations: batch.len(),
            new_nodes,
            frontier: frontier.len(),
            cut_seeded,
            cut_after,
            refine,
            action,
        });
        self.batches += 1;
        Ok(self.history.last().expect("just pushed"))
    }

    /// Replays a whole trace, stopping at the first error.
    ///
    /// # Errors
    ///
    /// The first [`DynamicError`] any batch raises; batches before it
    /// are applied.
    pub fn replay(&mut self, batches: &[Vec<Mutation>]) -> Result<(), DynamicError> {
        for batch in batches {
            self.apply_batch(batch)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GaConfig;
    use crate::partitioner_impl::GaPartitioner;
    use gapart_graph::dynamic::scenario::{generate, Scenario, TraceSpec};
    use gapart_graph::dynamic::MutationLog;
    use gapart_graph::generators::jittered_mesh;
    use gapart_graph::multilevel::MultilevelPartitioner;

    /// Small-budget multilevel GA, the intended escalation partitioner.
    fn mlga() -> Box<dyn Partitioner> {
        Box::new(MultilevelPartitioner::new(
            "mlga",
            Box::new(GaPartitioner::new(GaConfig::coarse_defaults(4))),
        ))
    }

    fn session(n: usize, parts: u32) -> DynamicSession {
        DynamicSession::new(
            jittered_mesh(n, 11),
            mlga(),
            DynamicConfig::new(parts).with_seed(5),
        )
        .unwrap()
    }

    #[test]
    fn opens_with_a_full_solve() {
        let s = session(150, 4);
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.partition().num_nodes(), 150);
        assert_eq!(s.baseline_cut(), s.current_cut());
        assert!(s.history().is_empty());
    }

    #[test]
    fn incremental_batch_keeps_all_invariants() {
        let mut s = session(150, 4);
        let mut log = MutationLog::new(150);
        let a = log.add_node(1, Some(gapart_graph::Point2::new(0.5, 0.5)));
        log.add_edge(a, 10, 1);
        log.add_edge(a, 20, 1);
        let rec = s.apply_batch(log.ops()).unwrap().clone();
        assert_eq!(rec.action, BatchAction::Incremental);
        assert_eq!(rec.new_nodes, 1);
        assert_eq!(s.partition().num_nodes(), 151);
        assert!(s.partition().labels().iter().all(|&l| l < 4));
        // Refinement never worsens the seeded cut.
        assert!(rec.cut_after <= rec.cut_seeded);
        // No part was drained empty.
        assert!(s.partition().part_sizes().iter().all(|&z| z > 0));
    }

    #[test]
    fn replays_a_generated_trace_end_to_end() {
        let mut s = session(200, 4);
        let trace = generate(
            s.graph(),
            Scenario::RandomChurn,
            &TraceSpec {
                batches: 6,
                ops_per_batch: 12,
                seed: 3,
            },
        )
        .unwrap();
        s.replay(&trace).unwrap();
        assert_eq!(s.history().len(), 6);
        assert_eq!(s.partition().num_nodes(), s.graph().num_nodes());
        s.graph().validate().unwrap();
    }

    #[test]
    fn escalation_trips_on_degradation_and_starts_an_epoch() {
        // Forcing the threshold to 0 makes any positive cut "degraded",
        // so every batch must escalate.
        let g = jittered_mesh(150, 11);
        let mut s = DynamicSession::new(
            g,
            mlga(),
            DynamicConfig::new(4).with_seed(5).with_escalate_ratio(0.0),
        )
        .unwrap();
        let trace = generate(
            s.graph(),
            Scenario::MeshGrowth,
            &TraceSpec {
                batches: 3,
                ops_per_batch: 10,
                seed: 8,
            },
        )
        .unwrap();
        s.replay(&trace).unwrap();
        assert_eq!(s.epoch(), 4, "every batch should escalate");
        assert!(s
            .history()
            .iter()
            .all(|r| r.action == BatchAction::FullRepartition));

        // And an infinite threshold never escalates.
        let g = jittered_mesh(150, 11);
        let mut s = DynamicSession::new(
            g,
            mlga(),
            DynamicConfig::new(4)
                .with_seed(5)
                .with_escalate_ratio(f64::INFINITY),
        )
        .unwrap();
        s.replay(&trace).unwrap();
        assert_eq!(s.epoch(), 1);
    }

    #[test]
    fn escalation_never_regresses_the_cut() {
        let g = jittered_mesh(180, 4);
        let mut s = DynamicSession::new(
            g,
            mlga(),
            DynamicConfig::new(4).with_seed(9).with_escalate_ratio(0.0),
        )
        .unwrap();
        let trace = generate(
            s.graph(),
            Scenario::RandomChurn,
            &TraceSpec {
                batches: 4,
                ops_per_batch: 8,
                seed: 2,
            },
        )
        .unwrap();
        for batch in &trace {
            let incremental_cut = {
                // What the cut would be without escalation is not directly
                // observable; instead assert the recorded escalated cut is
                // never worse than the recorded seeded+refined cut.
                let rec = s.apply_batch(batch).unwrap();
                (rec.cut_after, rec.cut_seeded)
            };
            assert!(incremental_cut.0 <= incremental_cut.1);
        }
    }

    #[test]
    fn hotspot_drift_changes_loads_without_structure() {
        let mut s = session(160, 4);
        let trace = generate(
            s.graph(),
            Scenario::HotspotDrift,
            &TraceSpec {
                batches: 5,
                ops_per_batch: 15,
                seed: 6,
            },
        )
        .unwrap();
        let nodes_before = s.graph().num_nodes();
        s.replay(&trace).unwrap();
        assert_eq!(s.graph().num_nodes(), nodes_before);
        assert!(s.history().iter().all(|r| r.new_nodes == 0));
    }

    #[test]
    fn bad_batches_leave_the_session_unchanged() {
        let mut s = session(100, 4);
        let before_nodes = s.graph().num_nodes();
        let before_partition = s.partition().clone();
        let bad = vec![Mutation::AddEdge {
            u: 0,
            v: 9999,
            weight: 1,
        }];
        assert!(matches!(
            s.apply_batch(&bad).unwrap_err(),
            DynamicError::Graph(GraphError::NodeOutOfRange { .. })
        ));
        assert_eq!(s.graph().num_nodes(), before_nodes);
        assert_eq!(s.partition(), &before_partition);
        assert!(s.history().is_empty());
    }

    #[test]
    fn with_partition_validates_and_uses_the_given_baseline() {
        let g = jittered_mesh(80, 3);
        let p = Partition::round_robin(80, 4);
        let baseline = cut_size(&g, &p);
        let s = DynamicSession::with_partition(g, p, mlga(), DynamicConfig::new(4)).unwrap();
        assert_eq!(s.baseline_cut(), baseline);
        assert_eq!(s.epoch(), 0, "no full solve has run yet");

        let g = jittered_mesh(80, 3);
        let wrong = Partition::round_robin(80, 8);
        assert!(matches!(
            DynamicSession::with_partition(g, wrong, mlga(), DynamicConfig::new(4)).unwrap_err(),
            DynamicError::Seed(_)
        ));
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = generate(
            &jittered_mesh(150, 11),
            Scenario::RandomChurn,
            &TraceSpec {
                batches: 5,
                ops_per_batch: 10,
                seed: 1,
            },
        )
        .unwrap();
        let run = || {
            let mut s = session(150, 4);
            s.replay(&trace).unwrap();
            (s.partition().clone(), s.history().to_vec(), s.epoch())
        };
        assert_eq!(run(), run());
    }
}
