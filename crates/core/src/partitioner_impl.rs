//! [`Partitioner`] implementations for the GA and DPGA engines.

use crate::dpga::{DpgaConfig, DpgaEngine};
use crate::engine::{GaConfig, GaEngine};
use gapart_graph::partitioner::{PartitionReport, Partitioner, PartitionerError};
use gapart_graph::CsrGraph;

/// The single-population GA as a [`Partitioner`].
///
/// Holds a [`GaConfig`] template; each call clones it and overrides
/// `num_parts` and `seed` with the trait arguments, so one instance
/// serves any part count and any number of seeded runs.
#[derive(Debug, Clone)]
pub struct GaPartitioner {
    /// Template configuration (part count and seed are per-call).
    pub config: GaConfig,
}

impl Default for GaPartitioner {
    fn default() -> Self {
        GaPartitioner {
            config: GaConfig::paper_defaults(2),
        }
    }
}

impl GaPartitioner {
    /// Partitioner from an explicit configuration template.
    pub fn new(config: GaConfig) -> Self {
        GaPartitioner { config }
    }
}

impl Partitioner for GaPartitioner {
    fn name(&self) -> &'static str {
        "ga"
    }

    fn partition(
        &self,
        graph: &CsrGraph,
        num_parts: u32,
        seed: u64,
    ) -> Result<PartitionReport, PartitionerError> {
        let mut config = self.config.clone();
        config.num_parts = num_parts;
        config.seed = seed;
        let result = GaEngine::new(graph, config)
            .map_err(PartitionerError::new)?
            .run();
        Ok(PartitionReport {
            algorithm: self.name(),
            partition: result.best_partition,
            metrics: result.best_metrics,
        })
    }
}

/// The distributed-population GA as a [`Partitioner`].
///
/// Holds a [`DpgaConfig`] template; each call overrides the base config's
/// `num_parts` and `seed` with the trait arguments.
#[derive(Debug, Clone)]
pub struct DpgaPartitioner {
    /// Template configuration (part count and seed are per-call).
    pub config: DpgaConfig,
}

impl Default for DpgaPartitioner {
    fn default() -> Self {
        DpgaPartitioner {
            config: DpgaConfig::paper(2),
        }
    }
}

impl DpgaPartitioner {
    /// Partitioner from an explicit configuration template.
    pub fn new(config: DpgaConfig) -> Self {
        DpgaPartitioner { config }
    }
}

impl Partitioner for DpgaPartitioner {
    fn name(&self) -> &'static str {
        "dpga"
    }

    fn partition(
        &self,
        graph: &CsrGraph,
        num_parts: u32,
        seed: u64,
    ) -> Result<PartitionReport, PartitionerError> {
        let mut config = self.config.clone();
        config.base.num_parts = num_parts;
        config.base.seed = seed;
        let result = DpgaEngine::new(graph, config)
            .map_err(PartitionerError::new)?
            .run();
        Ok(PartitionReport {
            algorithm: self.name(),
            partition: result.best_partition,
            metrics: result.best_metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gapart_graph::generators::paper_graph;

    fn small_ga() -> GaPartitioner {
        let mut p = GaPartitioner::default();
        p.config.population_size = 32;
        p.config.generations = 10;
        p
    }

    fn small_dpga() -> DpgaPartitioner {
        let mut p = DpgaPartitioner::default();
        p.config.topology = crate::topology::Topology::Hypercube(2);
        p.config.base.population_size = 32;
        p.config.base.generations = 10;
        p
    }

    #[test]
    fn trait_runs_are_deterministic_and_valid() {
        let g = paper_graph(78);
        for p in [
            Box::new(small_ga()) as Box<dyn Partitioner>,
            Box::new(small_dpga()),
        ] {
            let a = p.partition(&g, 4, 77).unwrap();
            let b = p.partition(&g, 4, 77).unwrap();
            assert_eq!(a.partition, b.partition, "{} not deterministic", p.name());
            assert_eq!(a.partition.num_nodes(), 78);
            assert!(a.partition.labels().iter().all(|&l| l < 4));
            assert!(a.metrics.total_cut > 0);
            assert!(p.partition(&g, 0, 77).is_err(), "{}", p.name());
        }
    }

    #[test]
    fn template_part_count_is_overridden() {
        // The default template says 2 parts; the call says 5.
        let g = paper_graph(78);
        let report = small_ga().partition(&g, 5, 3).unwrap();
        assert_eq!(report.partition.num_parts(), 5);
        assert_eq!(report.metrics.part_loads.len(), 5);
    }
}
