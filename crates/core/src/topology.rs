//! DPGA communication topologies (§3.4).
//!
//! Subpopulations sit on the nodes of a virtual parallel architecture and
//! exchange their best individuals with topological neighbours only. The
//! paper's experiments use a 4-dimensional hypercube of 16 subpopulations.

/// A virtual interconnect between subpopulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// `2^dim` nodes; neighbours differ in one address bit. The paper's
    /// configuration is `Hypercube(4)`.
    Hypercube(u32),
    /// A cycle of `n` nodes.
    Ring(usize),
    /// An `rows × cols` torus-free mesh (4-neighbour).
    Mesh2d(usize, usize),
    /// Every node is everyone's neighbour (panmictic migration — the
    /// degenerate control case).
    Complete(usize),
}

impl Topology {
    /// Number of nodes (subpopulations).
    pub fn size(&self) -> usize {
        match self {
            Topology::Hypercube(d) => 1usize << d,
            Topology::Ring(n) => *n,
            Topology::Mesh2d(r, c) => r * c,
            Topology::Complete(n) => *n,
        }
    }

    /// Neighbours of node `i`, in deterministic order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= size()`.
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        let n = self.size();
        assert!(i < n, "node {i} out of range (size {n})");
        match self {
            Topology::Hypercube(d) => (0..*d).map(|bit| i ^ (1usize << bit)).collect(),
            Topology::Ring(n) => {
                if *n == 1 {
                    vec![]
                } else if *n == 2 {
                    vec![(i + 1) % n]
                } else {
                    vec![(i + n - 1) % n, (i + 1) % n]
                }
            }
            Topology::Mesh2d(rows, cols) => {
                let (r, c) = (i / cols, i % cols);
                let mut out = Vec::with_capacity(4);
                if r > 0 {
                    out.push((r - 1) * cols + c);
                }
                if c > 0 {
                    out.push(r * cols + c - 1);
                }
                if c + 1 < *cols {
                    out.push(r * cols + c + 1);
                }
                if r + 1 < *rows {
                    out.push((r + 1) * cols + c);
                }
                out
            }
            Topology::Complete(n) => (0..*n).filter(|&j| j != i).collect(),
        }
    }

    /// The paper's configuration: 16 subpopulations on a 4-d hypercube.
    pub const PAPER: Topology = Topology::Hypercube(4);
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Topology::Hypercube(d) => write!(f, "hypercube({d})"),
            Topology::Ring(n) => write!(f, "ring({n})"),
            Topology::Mesh2d(r, c) => write!(f, "mesh({r}x{c})"),
            Topology::Complete(n) => write!(f, "complete({n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_is_16_nodes_degree_4() {
        let t = Topology::PAPER;
        assert_eq!(t.size(), 16);
        for i in 0..16 {
            let nbrs = t.neighbors(i);
            assert_eq!(nbrs.len(), 4);
            for &j in &nbrs {
                // Hamming distance 1 in the address.
                assert_eq!((i ^ j).count_ones(), 1);
                // Symmetry.
                assert!(t.neighbors(j).contains(&i));
            }
        }
    }

    #[test]
    fn hypercube_dim0_is_singleton() {
        let t = Topology::Hypercube(0);
        assert_eq!(t.size(), 1);
        assert!(t.neighbors(0).is_empty());
    }

    #[test]
    fn ring_wraps() {
        let t = Topology::Ring(5);
        assert_eq!(t.neighbors(0), vec![4, 1]);
        assert_eq!(t.neighbors(4), vec![3, 0]);
    }

    #[test]
    fn ring_of_two_has_single_neighbor() {
        let t = Topology::Ring(2);
        assert_eq!(t.neighbors(0), vec![1]);
        assert_eq!(t.neighbors(1), vec![0]);
    }

    #[test]
    fn mesh_corners_and_interior() {
        let t = Topology::Mesh2d(3, 3);
        assert_eq!(t.neighbors(0), vec![1, 3]); // top-left
        assert_eq!(t.neighbors(4), vec![1, 3, 5, 7]); // center
        assert_eq!(t.neighbors(8), vec![5, 7]); // bottom-right
    }

    #[test]
    fn complete_connects_everyone() {
        let t = Topology::Complete(4);
        assert_eq!(t.neighbors(2), vec![0, 1, 3]);
    }

    #[test]
    fn all_topologies_are_symmetric() {
        for t in [
            Topology::Hypercube(3),
            Topology::Ring(7),
            Topology::Mesh2d(2, 4),
            Topology::Complete(5),
        ] {
            for i in 0..t.size() {
                for j in t.neighbors(i) {
                    assert!(t.neighbors(j).contains(&i), "{t}: {i} -> {j} asymmetric");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        Topology::Ring(3).neighbors(3);
    }
}
