//! Breadth-first traversal and connectivity queries.

use crate::csr::CsrGraph;

/// BFS visit order starting from `source`. Only the component containing
/// `source` is visited.
pub fn bfs_order(graph: &CsrGraph, source: u32) -> Vec<u32> {
    let n = graph.num_nodes();
    assert!((source as usize) < n, "source out of range");
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    seen[source as usize] = true;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &u in graph.neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    order
}

/// Unweighted hop distance from `source` to every node; unreachable nodes
/// get `usize::MAX`.
pub fn bfs_distances(graph: &CsrGraph, source: u32) -> Vec<usize> {
    let n = graph.num_nodes();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &u in graph.neighbors(v) {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Connected components: returns `(component_id_per_node, component_count)`.
/// Component ids are dense in `0..count` and assigned in order of the
/// lowest-numbered node in each component.
pub fn connected_components(graph: &CsrGraph) -> (Vec<u32>, usize) {
    let n = graph.num_nodes();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as u32 {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        comp[start as usize] = count;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &u in graph.neighbors(v) {
                if comp[u as usize] == u32::MAX {
                    comp[u as usize] = count;
                    queue.push_back(u);
                }
            }
        }
        count += 1;
    }
    (comp, count as usize)
}

/// Whether the graph is connected. The empty graph counts as connected.
pub fn is_connected(graph: &CsrGraph) -> bool {
    graph.num_nodes() == 0 || connected_components(graph).1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn bfs_order_visits_component_in_level_order() {
        // 0-1, 0-2, 1-3
        let g = from_edges(4, &[(0, 1), (0, 2), (1, 3)]).unwrap();
        assert_eq!(bfs_order(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_order(&g, 3), vec![3, 1, 0, 2]);
    }

    #[test]
    fn bfs_order_skips_other_components() {
        let g = from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(bfs_order(&g, 0), vec![0, 1]);
    }

    #[test]
    fn distances_on_path() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn distances_mark_unreachable() {
        let g = from_edges(3, &[(0, 1)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn components_counted_and_labeled() {
        let g = from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[0], comp[4]);
    }

    #[test]
    fn connectivity_checks() {
        let g = from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(is_connected(&g));
        let g = from_edges(3, &[(0, 1)]).unwrap();
        assert!(!is_connected(&g));
        let empty = from_edges(0, &[]).unwrap();
        assert!(is_connected(&empty));
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bfs_panics_on_bad_source() {
        let g = from_edges(2, &[(0, 1)]).unwrap();
        bfs_order(&g, 5);
    }
}
