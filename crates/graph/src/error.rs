//! Error types for graph construction and IO.

use std::fmt;

/// Errors produced while building, validating, or parsing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referred to a node id that does not exist.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// Number of nodes in the graph under construction.
        num_nodes: usize,
    },
    /// A self-loop `(v, v)` was supplied; partitioning graphs are simple.
    SelfLoop {
        /// The node with the self-loop.
        node: u32,
    },
    /// An edge weight of zero was supplied; zero-weight edges would make
    /// the communication-cost metrics meaningless.
    ZeroEdgeWeight {
        /// Edge tail.
        u: u32,
        /// Edge head.
        v: u32,
    },
    /// A vertex weight of zero was supplied.
    ZeroNodeWeight {
        /// The offending node.
        node: u32,
    },
    /// The graph has more nodes than fit into `u32` node ids.
    TooManyNodes {
        /// Requested number of nodes.
        requested: usize,
    },
    /// The graph has more adjacency entries (directed half-edges) than fit
    /// into the memory-lean `u32` CSR offset array.
    AdjacencyOverflow {
        /// Number of adjacency entries requested.
        entries: usize,
    },
    /// A parse error while reading a graph file.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A partition label referred to a part that does not exist.
    PartOutOfRange {
        /// The offending part label.
        part: u32,
        /// Number of parts in the partition.
        num_parts: u32,
    },
    /// The operation requires vertex coordinates but the graph has none.
    MissingCoordinates,
    /// A coordinate set did not match the graph's node count.
    CoordsMismatch {
        /// Number of coordinates supplied.
        coords: usize,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// The operation requires a connected graph.
    Disconnected {
        /// Number of connected components found.
        components: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node id {node} out of range (graph has {num_nodes} nodes)"
                )
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop on node {node}"),
            GraphError::ZeroEdgeWeight { u, v } => {
                write!(f, "zero edge weight on edge ({u}, {v})")
            }
            GraphError::ZeroNodeWeight { node } => write!(f, "zero weight on node {node}"),
            GraphError::TooManyNodes { requested } => {
                write!(f, "{requested} nodes exceed the u32 id space")
            }
            GraphError::AdjacencyOverflow { entries } => {
                write!(
                    f,
                    "{entries} adjacency entries exceed the u32 CSR offset space"
                )
            }
            GraphError::PartOutOfRange { part, num_parts } => {
                write!(
                    f,
                    "part label {part} out of range (partition has {num_parts} parts)"
                )
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::MissingCoordinates => write!(f, "graph has no vertex coordinates"),
            GraphError::CoordsMismatch { coords, nodes } => {
                write!(f, "{coords} coordinates for {nodes} nodes")
            }
            GraphError::Disconnected { components } => {
                write!(f, "graph is disconnected ({components} components)")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange {
            node: 9,
            num_nodes: 4,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));
        let e = GraphError::SelfLoop { node: 3 };
        assert!(e.to_string().contains("self-loop"));
        let e = GraphError::Parse {
            line: 7,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = GraphError::Disconnected { components: 2 };
        assert!(e.to_string().contains("2 components"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            GraphError::MissingCoordinates,
            GraphError::MissingCoordinates
        );
        assert_ne!(
            GraphError::SelfLoop { node: 1 },
            GraphError::SelfLoop { node: 2 }
        );
    }
}
