//! SVG rendering of partitioned (coordinate-carrying) graphs.
//!
//! A partitioning library lives or dies by whether you can *see* the
//! partitions: this renders the mesh with one fill colour per part and
//! cut edges emphasized, so a `gapart-cli partition … --svg out.svg`
//! result can be eyeballed in any browser.

use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::geometry::bounding_box;
use crate::partition::Partition;
use std::fmt::Write as _;

/// Rendering options for [`render_partition`].
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Canvas width in pixels (height follows the aspect ratio).
    pub width: f64,
    /// Vertex radius in pixels.
    pub node_radius: f64,
    /// Emphasize cut edges (thicker, dark) over internal edges (thin,
    /// part-coloured).
    pub highlight_cut: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 640.0,
            node_radius: 4.0,
            highlight_cut: true,
        }
    }
}

/// A qualitative palette with enough contrast for up to 16 parts; labels
/// beyond 16 wrap around.
const PALETTE: [&str; 16] = [
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
    "#bcbd22", "#17becf", "#aec7e8", "#ffbb78", "#98df8a", "#ff9896", "#c5b0d5", "#c49c94",
];

/// Colour assigned to `part`.
pub fn part_color(part: u32) -> &'static str {
    PALETTE[(part as usize) % PALETTE.len()]
}

/// Renders `graph` coloured by `partition` as an SVG document.
///
/// # Errors
///
/// [`GraphError::MissingCoordinates`] if the graph carries no geometry.
///
/// # Panics
///
/// Panics if the partition covers a different number of nodes than the
/// graph has.
pub fn render_partition(
    graph: &CsrGraph,
    partition: &Partition,
    opts: &SvgOptions,
) -> Result<String, GraphError> {
    assert_eq!(
        graph.num_nodes(),
        partition.num_nodes(),
        "partition/graph size mismatch"
    );
    let coords = graph.coords_required()?;
    let (lo, hi) = bounding_box(coords).unwrap_or((
        crate::geometry::Point2::ORIGIN,
        crate::geometry::Point2::new(1.0, 1.0),
    ));
    let span_x = (hi.x - lo.x).max(1e-9);
    let span_y = (hi.y - lo.y).max(1e-9);
    let margin = opts.node_radius * 3.0;
    let inner_w = opts.width - 2.0 * margin;
    let inner_h = inner_w * span_y / span_x;
    let height = inner_h + 2.0 * margin;
    // SVG's y axis grows downward; flip so plots match math convention.
    let px = |x: f64| margin + (x - lo.x) / span_x * inner_w;
    let py = |y: f64| margin + (hi.y - y) / span_y * inner_h;

    let mut out = String::with_capacity(graph.num_nodes() * 96);
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"#,
        opts.width, height, opts.width, height
    );
    let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);

    // Edges first (under the nodes): internal thin, cut emphasized.
    let labels = partition.labels();
    let mut cut_edges = String::new();
    for (u, v, _) in graph.edges() {
        let (pu, pv) = (labels[u as usize], labels[v as usize]);
        let (a, b) = (coords[u as usize], coords[v as usize]);
        if pu == pv {
            let _ = writeln!(
                out,
                r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{}" stroke-width="1" stroke-opacity="0.5"/>"#,
                px(a.x),
                py(a.y),
                px(b.x),
                py(b.y),
                part_color(pu)
            );
        } else {
            let (stroke, width) = if opts.highlight_cut {
                ("#222222", 2.0)
            } else {
                ("#bbbbbb", 1.0)
            };
            let _ = writeln!(
                cut_edges,
                r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{stroke}" stroke-width="{width}" stroke-dasharray="4 2"/>"#,
                px(a.x),
                py(a.y),
                px(b.x),
                py(b.y)
            );
        }
    }
    out.push_str(&cut_edges); // cut edges drawn above internal ones

    for v in 0..graph.num_nodes() as u32 {
        let p = coords[v as usize];
        let _ = writeln!(
            out,
            r#"<circle cx="{:.1}" cy="{:.1}" r="{:.1}" fill="{}" stroke="black" stroke-width="0.5"/>"#,
            px(p.x),
            py(p.y),
            opts.node_radius,
            part_color(labels[v as usize])
        );
    }
    out.push_str("</svg>\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{gnp, paper_graph};

    #[test]
    fn renders_well_formed_svg() {
        let g = paper_graph(78);
        let p = Partition::round_robin(78, 4);
        let svg = render_partition(&g, &p, &SvgOptions::default()).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One circle per node.
        assert_eq!(svg.matches("<circle").count(), 78);
        // One line per edge.
        assert_eq!(svg.matches("<line").count(), g.num_edges());
    }

    #[test]
    fn cut_edges_are_dashed_and_counted() {
        let g = paper_graph(98);
        let p = Partition::blocks(98, 2);
        let svg = render_partition(&g, &p, &SvgOptions::default()).unwrap();
        let cut = crate::partition::cut_size(&g, &p) as usize;
        assert_eq!(svg.matches("stroke-dasharray").count(), cut);
    }

    #[test]
    fn palette_wraps() {
        assert_eq!(part_color(0), part_color(16));
        assert_ne!(part_color(0), part_color(1));
    }

    #[test]
    fn requires_coordinates() {
        let g = gnp(10, 0.3, 1);
        let p = Partition::round_robin(10, 2);
        assert_eq!(
            render_partition(&g, &p, &SvgOptions::default()).unwrap_err(),
            GraphError::MissingCoordinates
        );
    }

    #[test]
    fn no_highlight_mode_draws_plain_cut_edges() {
        let g = paper_graph(78);
        let p = Partition::blocks(78, 2);
        let opts = SvgOptions {
            highlight_cut: false,
            ..Default::default()
        };
        let svg = render_partition(&g, &p, &opts).unwrap();
        assert!(!svg.contains("#222222"));
    }

    #[test]
    fn coordinates_are_scaled_into_canvas() {
        let g = paper_graph(78);
        let p = Partition::round_robin(78, 4);
        let opts = SvgOptions::default();
        let svg = render_partition(&g, &p, &opts).unwrap();
        for cap in svg.split("cx=\"").skip(1) {
            let x: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!(x >= 0.0 && x <= opts.width, "cx {x} outside canvas");
        }
    }
}
