//! Streaming graph mutations: the substrate of dynamic repartitioning.
//!
//! The paper's incremental model (§3.5, §4.2) is one-shot — grow the
//! graph once, then re-run the GA. A production partitioner instead
//! maintains its partition across a *stream* of changes. This module
//! provides the graph half of that subsystem (the session logic lives in
//! `gapart-core::dynamic`):
//!
//! * [`Mutation`] — the three structural events a stream can carry:
//!   add a node, add (or reinforce) an edge, change a node weight.
//! * [`MutationLog`] — an append-only batch under construction, with
//!   id allocation for nodes added within the batch.
//! * [`apply_batch`] — applies a batch to a [`CsrGraph`] with a *merge*
//!   rebuild: `O(V + E + |batch|)` with no re-sorting of untouched
//!   adjacency rows, instead of the builder's full `O(E log E)` path.
//! * [`DirtyRegion`] — the nodes a batch touched, expandable by BFS to
//!   the refinement frontier ([`DirtyRegion::frontier`]).
//! * [`wire`] — the one mutation codec every transport shares (trace
//!   files, the serve protocol, the JSONL session tape).
//! * [`trace`] — a line-oriented text format for mutation traces, so
//!   streams can be recorded, replayed and diffed.
//! * [`scenario`] — deterministic trace generators (mesh-refinement
//!   growth, random churn, hotspot weight drift).
//!
//! [`CsrGraph`] stays immutable: applying a batch produces a new graph.
//! Everything here is deterministic — a trace replay is a pure function
//! of `(graph, trace)`.

use crate::csr::{CsrGraph, SmallCsr};
use crate::error::GraphError;
use crate::geometry::Point2;

pub mod scenario;
pub mod trace;
pub mod wire;

/// One structural event in a mutation stream.
///
/// Node ids added by [`Mutation::AddNode`] are assigned sequentially
/// starting at the current node count, in batch order, so later mutations
/// in the same batch may reference them.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Appends a node with the given weight. `pos` is required when the
    /// graph carries coordinates (every node must have one) and ignored
    /// when it does not.
    AddNode {
        /// Computation weight of the new node (must be positive).
        weight: u32,
        /// Position of the new node, for coordinate-carrying graphs.
        pos: Option<Point2>,
    },
    /// Adds an undirected edge `{u, v}` of the given weight. Adding an
    /// edge that already exists reinforces it (weights sum), matching
    /// [`crate::GraphBuilder`]'s duplicate-merge semantics.
    AddEdge {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
        /// Communication weight (must be positive).
        weight: u32,
    },
    /// Replaces the weight of an existing node.
    SetNodeWeight {
        /// The node whose weight changes.
        node: u32,
        /// The new weight (must be positive).
        weight: u32,
    },
}

/// A batch of mutations under construction. Thin wrapper over
/// `Vec<Mutation>` that also allocates ids for nodes added through it, so
/// generators can wire new nodes to each other before the batch is
/// applied.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MutationLog {
    ops: Vec<Mutation>,
    nodes_added: usize,
    base_nodes: usize,
}

impl MutationLog {
    /// An empty log for mutations over a graph that currently has
    /// `base_nodes` nodes.
    pub fn new(base_nodes: usize) -> Self {
        MutationLog {
            ops: Vec::new(),
            nodes_added: 0,
            base_nodes,
        }
    }

    /// Appends an [`Mutation::AddNode`], returning the id the node will
    /// receive when the batch is applied.
    pub fn add_node(&mut self, weight: u32, pos: Option<Point2>) -> u32 {
        let id = (self.base_nodes + self.nodes_added) as u32;
        self.ops.push(Mutation::AddNode { weight, pos });
        self.nodes_added += 1;
        id
    }

    /// Appends an [`Mutation::AddEdge`].
    pub fn add_edge(&mut self, u: u32, v: u32, weight: u32) {
        self.ops.push(Mutation::AddEdge { u, v, weight });
    }

    /// Appends a [`Mutation::SetNodeWeight`].
    pub fn set_node_weight(&mut self, node: u32, weight: u32) {
        self.ops.push(Mutation::SetNodeWeight { node, weight });
    }

    /// Number of recorded mutations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the log holds no mutations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The recorded mutations, in order.
    pub fn ops(&self) -> &[Mutation] {
        &self.ops
    }

    /// Consumes the log, returning the mutation list.
    pub fn into_ops(self) -> Vec<Mutation> {
        self.ops
    }
}

/// The set of nodes a mutation batch touched: new nodes, endpoints of
/// added edges, and weight-changed nodes. Ids are sorted and unique.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyRegion {
    nodes: Vec<u32>,
}

impl DirtyRegion {
    /// The touched node ids, sorted ascending without duplicates.
    pub fn nodes(&self) -> &[u32] {
        &self.nodes
    }

    /// Number of touched nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the batch touched no nodes (e.g. an empty batch).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Expands the region by `hops` breadth-first steps over `graph`,
    /// returning the sorted ids of every node within that distance of a
    /// touched node — the localized-refinement frontier. `hops = 0`
    /// returns the region itself.
    ///
    /// # Panics
    ///
    /// Panics if the region references a node `graph` does not have (it
    /// must be the graph the batch produced).
    pub fn frontier(&self, graph: &CsrGraph, hops: usize) -> Vec<u32> {
        let n = graph.num_nodes();
        let mut depth = vec![usize::MAX; n];
        let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        for &v in &self.nodes {
            assert!((v as usize) < n, "dirty node {v} out of range");
            depth[v as usize] = 0;
            queue.push_back(v);
        }
        while let Some(v) = queue.pop_front() {
            let d = depth[v as usize];
            if d == hops {
                continue;
            }
            for &u in graph.neighbors(v) {
                if depth[u as usize] == usize::MAX {
                    depth[u as usize] = d + 1;
                    queue.push_back(u);
                }
            }
        }
        (0..n as u32)
            .filter(|&v| depth[v as usize] != usize::MAX)
            .collect()
    }
}

/// Applies a mutation batch to `graph`, returning the mutated graph and
/// the [`DirtyRegion`] it touched.
///
/// The rebuild merges per row instead of re-sorting the whole edge list:
/// untouched adjacency rows are copied, touched rows merge their (sorted)
/// additions in one pass, and node weights/coordinates are extended in
/// place — `O(V + E + |batch|)` overall.
///
/// # Errors
///
/// * [`GraphError::NodeOutOfRange`] — an edge endpoint or weight change
///   references a node that does not exist at that point of the batch.
/// * [`GraphError::SelfLoop`] — an edge `{v, v}`.
/// * [`GraphError::ZeroEdgeWeight`] / [`GraphError::ZeroNodeWeight`] —
///   zero weights are invalid, as everywhere in the workspace.
/// * [`GraphError::MissingCoordinates`] — the graph carries coordinates
///   but an added node has no `pos`.
/// * [`GraphError::TooManyNodes`] — the batch would overflow `u32` ids.
pub fn apply_batch(
    graph: &CsrGraph,
    batch: &[Mutation],
) -> Result<(CsrGraph, DirtyRegion), GraphError> {
    let n_old = graph.num_nodes();
    let has_coords = graph.coords().is_some();

    // Pass 1: validate in stream order, tracking the growing node count.
    let mut n_cur = n_old;
    let mut new_weights: Vec<u32> = Vec::new();
    let mut new_coords: Vec<Point2> = Vec::new();
    let mut weight_sets: Vec<(u32, u32)> = Vec::new();
    let mut added_edges: Vec<(u32, u32, u32)> = Vec::new();
    let mut dirty: Vec<u32> = Vec::new();
    for m in batch {
        match *m {
            Mutation::AddNode { weight, pos } => {
                if weight == 0 {
                    return Err(GraphError::ZeroNodeWeight { node: n_cur as u32 });
                }
                if n_cur + 1 > u32::MAX as usize {
                    return Err(GraphError::TooManyNodes {
                        requested: n_cur + 1,
                    });
                }
                if has_coords {
                    match pos {
                        Some(p) => new_coords.push(p),
                        None => return Err(GraphError::MissingCoordinates),
                    }
                }
                dirty.push(n_cur as u32);
                new_weights.push(weight);
                n_cur += 1;
            }
            Mutation::AddEdge { u, v, weight } => {
                if u as usize >= n_cur {
                    return Err(GraphError::NodeOutOfRange {
                        node: u,
                        num_nodes: n_cur,
                    });
                }
                if v as usize >= n_cur {
                    return Err(GraphError::NodeOutOfRange {
                        node: v,
                        num_nodes: n_cur,
                    });
                }
                if u == v {
                    return Err(GraphError::SelfLoop { node: u });
                }
                if weight == 0 {
                    return Err(GraphError::ZeroEdgeWeight { u, v });
                }
                added_edges.push((u.min(v), u.max(v), weight));
                dirty.push(u);
                dirty.push(v);
            }
            Mutation::SetNodeWeight { node, weight } => {
                if node as usize >= n_cur {
                    return Err(GraphError::NodeOutOfRange {
                        node,
                        num_nodes: n_cur,
                    });
                }
                if weight == 0 {
                    return Err(GraphError::ZeroNodeWeight { node });
                }
                weight_sets.push((node, weight));
                dirty.push(node);
            }
        }
    }

    // Merge duplicate additions of the same edge within the batch.
    added_edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
    added_edges.dedup_by(|cur, prev| {
        if cur.0 == prev.0 && cur.1 == prev.1 {
            prev.2 = prev.2.saturating_add(cur.2);
            true
        } else {
            false
        }
    });

    // Split additions into reinforcements of existing edges (weight
    // bumps, no structural change) and genuinely new adjacency entries.
    let mut bumps: Vec<(u32, u32, u32)> = Vec::new();
    let mut inserts_at: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_cur];
    for &(u, v, w) in &added_edges {
        if (v as usize) < n_old && graph.has_edge(u, v) {
            bumps.push((u, v, w));
        } else {
            inserts_at[u as usize].push((v, w));
            inserts_at[v as usize].push((u, w));
        }
    }

    // Pass 2: assemble the new CSR arrays with one merge per touched row.
    let total_adj = graph.adjncy().len() + added_edges.len() * 2 - bumps.len() * 2; // bumps reuse existing slots
    let mut xadj = Vec::with_capacity(n_cur + 1);
    let mut adjncy = Vec::with_capacity(total_adj);
    let mut eweights = Vec::with_capacity(total_adj);
    xadj.push(0usize);
    for vtx in 0..n_cur as u32 {
        let inserts = &mut inserts_at[vtx as usize];
        if (vtx as usize) < n_old {
            let nbrs = graph.neighbors(vtx);
            let ws = graph.edge_weights(vtx);
            if inserts.is_empty() {
                adjncy.extend_from_slice(nbrs);
                eweights.extend_from_slice(ws);
            } else {
                inserts.sort_unstable_by_key(|&(nbr, _)| nbr);
                let mut i = 0usize;
                for (&nbr, &w) in nbrs.iter().zip(ws) {
                    while i < inserts.len() && inserts[i].0 < nbr {
                        adjncy.push(inserts[i].0);
                        eweights.push(inserts[i].1);
                        i += 1;
                    }
                    adjncy.push(nbr);
                    eweights.push(w);
                }
                for &(nbr, w) in &inserts[i..] {
                    adjncy.push(nbr);
                    eweights.push(w);
                }
            }
        } else {
            // Brand-new node: its row is exactly its sorted inserts.
            inserts.sort_unstable_by_key(|&(nbr, _)| nbr);
            for &(nbr, w) in inserts.iter() {
                adjncy.push(nbr);
                eweights.push(w);
            }
        }
        xadj.push(adjncy.len());
    }

    // Apply weight bumps for reinforced edges (both directions).
    for &(u, v, w) in &bumps {
        for (a, b) in [(u, v), (v, u)] {
            let row = &adjncy[xadj[a as usize]..xadj[a as usize + 1]];
            let idx = row.binary_search(&b).expect("bumped edge exists");
            let slot = xadj[a as usize] + idx;
            eweights[slot] = eweights[slot].saturating_add(w);
        }
    }

    let mut vweights = graph.node_weights().to_vec();
    vweights.extend_from_slice(&new_weights);
    for &(node, w) in &weight_sets {
        vweights[node as usize] = w;
    }
    let coords = graph.coords().map(|c| {
        let mut all = c.to_vec();
        all.extend_from_slice(&new_coords);
        all
    });

    let mutated = CsrGraph {
        topo: SmallCsr::from_usize_offsets(xadj, adjncy, eweights)?,
        vweights,
        coords,
    };
    debug_assert!(mutated.validate().is_ok());

    dirty.sort_unstable();
    dirty.dedup();
    Ok((mutated, DirtyRegion { nodes: dirty }))
}

/// Applies several batches in sequence, returning the final graph and the
/// union of every batch's dirty region (on the final graph's id space).
///
/// # Errors
///
/// Propagates the first [`GraphError`] any batch raises; earlier batches
/// are not rolled back into the return value (the input graph is
/// untouched either way).
pub fn apply_all(
    graph: &CsrGraph,
    batches: &[Vec<Mutation>],
) -> Result<(CsrGraph, DirtyRegion), GraphError> {
    let mut g = graph.clone();
    let mut union: Vec<u32> = Vec::new();
    for batch in batches {
        let (next, dirty) = apply_batch(&g, batch)?;
        union.extend_from_slice(dirty.nodes());
        g = next;
    }
    union.sort_unstable();
    union.dedup();
    Ok((g, DirtyRegion { nodes: union }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::generators::{jittered_mesh, paper_graph};

    #[test]
    fn add_edge_between_existing_nodes() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let batch = vec![Mutation::AddEdge {
            u: 3,
            v: 0,
            weight: 2,
        }];
        let (g2, dirty) = apply_batch(&g, &batch).unwrap();
        g2.validate().unwrap();
        assert_eq!(g2.num_edges(), 4);
        assert_eq!(g2.edge_weight(0, 3), Some(2));
        assert_eq!(dirty.nodes(), &[0, 3]);
        // Untouched structure preserved.
        assert_eq!(g2.edge_weight(1, 2), Some(1));
    }

    #[test]
    fn add_node_wired_to_existing_and_new() {
        let g = from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut log = MutationLog::new(g.num_nodes());
        let a = log.add_node(2, None);
        let b = log.add_node(1, None);
        assert_eq!((a, b), (3, 4));
        log.add_edge(a, 0, 1);
        log.add_edge(a, b, 3);
        let (g2, dirty) = apply_batch(&g, log.ops()).unwrap();
        g2.validate().unwrap();
        assert_eq!(g2.num_nodes(), 5);
        assert_eq!(g2.node_weight(3), 2);
        assert_eq!(g2.edge_weight(3, 4), Some(3));
        assert_eq!(g2.edge_weight(0, 3), Some(1));
        assert_eq!(dirty.nodes(), &[0, 3, 4]);
    }

    #[test]
    fn reinforcing_an_existing_edge_sums_weights() {
        let g = from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let batch = vec![Mutation::AddEdge {
            u: 1,
            v: 0,
            weight: 4,
        }];
        let (g2, _) = apply_batch(&g, &batch).unwrap();
        assert_eq!(g2.num_edges(), 2);
        assert_eq!(g2.edge_weight(0, 1), Some(5));
        g2.validate().unwrap();
    }

    #[test]
    fn duplicate_edges_within_a_batch_merge() {
        let g = from_edges(2, &[(0, 1)]).unwrap();
        let batch = vec![
            Mutation::AddNode {
                weight: 1,
                pos: None,
            },
            Mutation::AddEdge {
                u: 2,
                v: 0,
                weight: 1,
            },
            Mutation::AddEdge {
                u: 0,
                v: 2,
                weight: 2,
            },
        ];
        let (g2, _) = apply_batch(&g, &batch).unwrap();
        assert_eq!(g2.edge_weight(0, 2), Some(3));
        g2.validate().unwrap();
    }

    #[test]
    fn set_node_weight_changes_only_that_node() {
        let g = from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let batch = vec![Mutation::SetNodeWeight { node: 1, weight: 9 }];
        let (g2, dirty) = apply_batch(&g, &batch).unwrap();
        assert_eq!(g2.node_weights(), &[1, 9, 1]);
        assert_eq!(dirty.nodes(), &[1]);
    }

    #[test]
    fn matches_full_rebuild_on_a_mixed_batch() {
        // The merge rebuild must agree with GraphBuilder's full path.
        let g = jittered_mesh(60, 3);
        let mut log = MutationLog::new(60);
        let a = log.add_node(2, Some(Point2::new(0.5, 0.5)));
        log.add_edge(a, 10, 1);
        log.add_edge(a, 11, 2);
        log.add_edge(5, 40, 7);
        log.set_node_weight(20, 4);
        let (fast, _) = apply_batch(&g, log.ops()).unwrap();

        let mut b = crate::builder::GraphBuilder::with_nodes(61);
        for (u, v, w) in g.edges() {
            b.push_edge(u, v, w);
        }
        b.push_edge(60, 10, 1);
        b.push_edge(60, 11, 2);
        b.push_edge(5, 40, 7);
        let mut weights = g.node_weights().to_vec();
        weights.push(2);
        weights[20] = 4;
        let mut coords = g.coords().unwrap().to_vec();
        coords.push(Point2::new(0.5, 0.5));
        let slow = b.node_weights(weights).coords(coords).build().unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn rejects_invalid_mutations() {
        let g = from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let err = |batch: Vec<Mutation>| apply_batch(&g, &batch).unwrap_err();
        assert!(matches!(
            err(vec![Mutation::AddEdge {
                u: 0,
                v: 3,
                weight: 1
            }]),
            GraphError::NodeOutOfRange { node: 3, .. }
        ));
        assert_eq!(
            err(vec![Mutation::AddEdge {
                u: 1,
                v: 1,
                weight: 1
            }]),
            GraphError::SelfLoop { node: 1 }
        );
        assert_eq!(
            err(vec![Mutation::AddEdge {
                u: 0,
                v: 2,
                weight: 0
            }]),
            GraphError::ZeroEdgeWeight { u: 0, v: 2 }
        );
        assert_eq!(
            err(vec![Mutation::SetNodeWeight { node: 0, weight: 0 }]),
            GraphError::ZeroNodeWeight { node: 0 }
        );
        assert!(matches!(
            err(vec![Mutation::SetNodeWeight { node: 9, weight: 1 }]),
            GraphError::NodeOutOfRange { node: 9, .. }
        ));
        // Coordinate-carrying graphs demand positions for new nodes.
        let gm = jittered_mesh(10, 1);
        assert_eq!(
            apply_batch(
                &gm,
                &[Mutation::AddNode {
                    weight: 1,
                    pos: None
                }]
            )
            .unwrap_err(),
            GraphError::MissingCoordinates
        );
    }

    #[test]
    fn later_mutations_may_reference_nodes_added_earlier_in_the_batch() {
        let g = from_edges(2, &[(0, 1)]).unwrap();
        // Edge to node 2 *before* validation order would see it — must
        // fail, because the node does not exist yet at that point.
        let bad = vec![
            Mutation::AddEdge {
                u: 0,
                v: 2,
                weight: 1,
            },
            Mutation::AddNode {
                weight: 1,
                pos: None,
            },
        ];
        assert!(matches!(
            apply_batch(&g, &bad).unwrap_err(),
            GraphError::NodeOutOfRange { node: 2, .. }
        ));
        let good = vec![
            Mutation::AddNode {
                weight: 1,
                pos: None,
            },
            Mutation::AddEdge {
                u: 0,
                v: 2,
                weight: 1,
            },
        ];
        assert!(apply_batch(&g, &good).is_ok());
    }

    #[test]
    fn empty_batch_is_identity() {
        let g = paper_graph(78);
        let (g2, dirty) = apply_batch(&g, &[]).unwrap();
        assert_eq!(g, g2);
        assert!(dirty.is_empty());
        assert!(dirty.frontier(&g2, 3).is_empty());
    }

    #[test]
    fn frontier_expands_by_bfs_hops() {
        // Path 0-1-2-3-4-5; touch node 0 only.
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let batch = vec![Mutation::SetNodeWeight { node: 0, weight: 2 }];
        let (g2, dirty) = apply_batch(&g, &batch).unwrap();
        assert_eq!(dirty.frontier(&g2, 0), vec![0]);
        assert_eq!(dirty.frontier(&g2, 2), vec![0, 1, 2]);
        assert_eq!(dirty.frontier(&g2, 9), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn apply_all_chains_batches_and_unions_dirt() {
        let g = from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let batches = vec![
            vec![
                Mutation::AddNode {
                    weight: 1,
                    pos: None,
                },
                Mutation::AddEdge {
                    u: 3,
                    v: 0,
                    weight: 1,
                },
            ],
            vec![Mutation::SetNodeWeight { node: 2, weight: 5 }],
        ];
        let (g2, dirty) = apply_all(&g, &batches).unwrap();
        assert_eq!(g2.num_nodes(), 4);
        assert_eq!(g2.node_weight(2), 5);
        assert_eq!(dirty.nodes(), &[0, 2, 3]);
    }

    #[test]
    fn growth_scale_smoke() {
        // A few hundred mutations over a real mesh, validated at the end.
        let mut g = jittered_mesh(200, 7);
        for round in 0..5u64 {
            let mut log = MutationLog::new(g.num_nodes());
            for i in 0..20 {
                let id = log.add_node(1, Some(Point2::new(0.1 * round as f64, 0.01 * i as f64)));
                log.add_edge(id, (i % g.num_nodes()) as u32, 1);
                if i > 0 {
                    log.add_edge(id, id - 1, 1);
                }
            }
            let (next, dirty) = apply_batch(&g, log.ops()).unwrap();
            next.validate().unwrap();
            assert_eq!(next.num_nodes(), g.num_nodes() + 20);
            assert!(dirty.len() >= 20);
            g = next;
        }
        assert_eq!(g.num_nodes(), 300);
    }
}
