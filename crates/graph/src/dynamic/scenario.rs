//! Deterministic mutation-trace generators.
//!
//! Three stream shapes cover the dynamic workloads the paper's setting
//! implies (an adaptive PDE mesh evolving under a solver):
//!
//! * [`Scenario::MeshGrowth`] — §4.2's locality model made continuous:
//!   every batch picks a random anchor and adds nodes clustered around
//!   it, each wired to its 3 nearest neighbours (requires coordinates).
//! * [`Scenario::RandomChurn`] — structural noise: new nodes attached to
//!   random existing ones, extra edges between random pairs, occasional
//!   weight changes, spread uniformly over the graph.
//! * [`Scenario::HotspotDrift`] — pure load drift: a hotspot wanders over
//!   the graph by one BFS step per batch; nodes near it heat up (a boost
//!   added to their original weight), nodes it leaves cool back to
//!   exactly their original weight. No structural change at all.
//!
//! Generation *applies* each batch as it is produced, so emitted traces
//! are always structurally valid for the graph they were generated from,
//! and the whole trace is a pure function of `(graph, scenario, spec)`.

use super::{apply_batch, Mutation, MutationLog};
use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::geometry::{density_cell, NearestGrid, Point2};
use crate::traversal::bfs_distances;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The built-in stream shapes. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Mesh-refinement growth around random anchors (needs coordinates).
    MeshGrowth,
    /// Random structural churn: node/edge additions plus weight noise.
    RandomChurn,
    /// A drifting hotspot of node-weight increases; no structural change.
    HotspotDrift,
}

impl Scenario {
    /// Registry names, in documentation order.
    pub const NAMES: [&'static str; 3] = ["mesh-growth", "churn", "hotspot"];

    /// Resolves a registry name (`"mesh-growth"`, `"churn"`,
    /// `"hotspot"`); returns `None` for unknown names.
    pub fn by_name(name: &str) -> Option<Scenario> {
        match name {
            "mesh-growth" => Some(Scenario::MeshGrowth),
            "churn" => Some(Scenario::RandomChurn),
            "hotspot" => Some(Scenario::HotspotDrift),
            _ => None,
        }
    }

    /// The registry name of this scenario.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::MeshGrowth => "mesh-growth",
            Scenario::RandomChurn => "churn",
            Scenario::HotspotDrift => "hotspot",
        }
    }
}

/// Size and seed of a generated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpec {
    /// Number of batches (commits) to generate.
    pub batches: usize,
    /// Approximate mutations per batch (exact for growth/churn; the
    /// hotspot scenario adds cool-down mutations for nodes it leaves).
    pub ops_per_batch: usize,
    /// RNG seed; the trace is a pure function of graph, scenario & spec.
    pub seed: u64,
}

/// Generates a trace of `spec.batches` batches for `graph`.
///
/// # Errors
///
/// [`GraphError::MissingCoordinates`] if [`Scenario::MeshGrowth`] is
/// requested for a graph without coordinates. Other errors cannot occur:
/// generated batches are applied as they are produced, so invalid
/// references would be a bug, not an input condition.
pub fn generate(
    graph: &CsrGraph,
    scenario: Scenario,
    spec: &TraceSpec,
) -> Result<Vec<Vec<Mutation>>, GraphError> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x7374_7265_616d); // "stream"
    match scenario {
        Scenario::MeshGrowth => mesh_growth(graph, spec, &mut rng),
        Scenario::RandomChurn => random_churn(graph, spec, &mut rng),
        Scenario::HotspotDrift => Ok(hotspot_drift(graph, spec, &mut rng)),
    }
}

fn mesh_growth(
    graph: &CsrGraph,
    spec: &TraceSpec,
    rng: &mut StdRng,
) -> Result<Vec<Vec<Mutation>>, GraphError> {
    let mut coords = graph.coords_required()?.to_vec();
    // Length scale from the measured point density, so growth looks the
    // same whatever the coordinate units are.
    let spacing = density_cell(&coords);
    let mut index = NearestGrid::new(&coords, spacing);
    let mut batches = Vec::with_capacity(spec.batches);
    for _ in 0..spec.batches {
        let mut log = MutationLog::new(coords.len());
        let anchor = rng.gen_range(0..coords.len() as u32);
        let anchor_pt = coords[anchor as usize];
        let radius = 2.0 * spacing;
        for _ in 0..spec.ops_per_batch {
            let pt = Point2::new(
                anchor_pt.x + rng.gen_range(-radius..radius),
                anchor_pt.y + rng.gen_range(-radius..radius),
            );
            let nbrs = index.nearest(&pt, 3);
            let id = log.add_node(1, Some(pt));
            for nbr in nbrs {
                log.add_edge(id, nbr, 1);
            }
            index.insert(pt);
            coords.push(pt);
        }
        batches.push(log.into_ops());
    }
    Ok(batches)
}

fn random_churn(
    graph: &CsrGraph,
    spec: &TraceSpec,
    rng: &mut StdRng,
) -> Result<Vec<Vec<Mutation>>, GraphError> {
    let mut g = graph.clone();
    let mut batches = Vec::with_capacity(spec.batches);
    for _ in 0..spec.batches {
        let mut log = MutationLog::new(g.num_nodes());
        let n = g.num_nodes() as u32;
        let jitter = g.coords().map_or(0.0, |c| 0.5 * density_cell(c));
        for _ in 0..spec.ops_per_batch {
            let roll = rng.gen_range(0u32..10);
            if roll < 5 {
                // New node, attached to a random existing node and one of
                // that node's neighbours (locality-ish, stays connected).
                let attach = rng.gen_range(0..n);
                let pos = g.coords().map(|c| {
                    let base = c[attach as usize];
                    Point2::new(
                        base.x + rng.gen_range(-jitter..jitter),
                        base.y + rng.gen_range(-jitter..jitter),
                    )
                });
                let id = log.add_node(1, pos);
                log.add_edge(id, attach, 1);
                let nbrs = g.neighbors(attach);
                if !nbrs.is_empty() {
                    log.add_edge(id, nbrs[rng.gen_range(0..nbrs.len())], 1);
                }
            } else if roll < 8 {
                // Extra edge between two distinct existing nodes
                // (reinforcement when it already exists).
                let u = rng.gen_range(0..n);
                let mut v = rng.gen_range(0..n);
                if v == u {
                    v = (v + 1) % n;
                }
                log.add_edge(u, v, 1);
            } else {
                // Weight noise.
                let v = rng.gen_range(0..n);
                log.set_node_weight(v, rng.gen_range(1u32..=4));
            }
        }
        let (next, _) = apply_batch(&g, log.ops())?;
        g = next;
        batches.push(log.into_ops());
    }
    Ok(batches)
}

fn hotspot_drift(graph: &CsrGraph, spec: &TraceSpec, rng: &mut StdRng) -> Vec<Vec<Mutation>> {
    let n = graph.num_nodes() as u32;
    // The drift is a *perturbation* of the load profile, not a
    // replacement: heat adds to a node's original weight and cooling
    // restores it exactly, so weighted input graphs keep their baseline.
    let orig = graph.node_weights().to_vec();
    let mut center = rng.gen_range(0..n);
    let mut hot: Vec<u32> = Vec::new();
    let mut batches = Vec::with_capacity(spec.batches);
    for b in 0..spec.batches {
        // Drift: step to a random neighbour of the current centre.
        let nbrs = graph.neighbors(center);
        if !nbrs.is_empty() {
            center = nbrs[rng.gen_range(0..nbrs.len())];
        }
        // The hot set is the `ops_per_batch` BFS-closest nodes.
        let dist = bfs_distances(graph, center);
        let mut by_dist: Vec<u32> = (0..n).filter(|&v| dist[v as usize] != usize::MAX).collect();
        by_dist.sort_unstable_by_key(|&v| (dist[v as usize], v));
        by_dist.truncate(spec.ops_per_batch);
        let heat = 3 + (b % 6) as u32;
        let mut log = MutationLog::new(graph.num_nodes());
        // Cool nodes the hotspot left back to their original weight...
        for &v in &hot {
            if !by_dist.contains(&v) {
                log.set_node_weight(v, orig[v as usize]);
            }
        }
        // ...and heat the new set (hotter toward the centre).
        for &v in &by_dist {
            let boost = heat.saturating_sub(dist[v as usize] as u32).max(1);
            log.set_node_weight(v, orig[v as usize].saturating_add(boost));
        }
        hot = by_dist;
        batches.push(log.into_ops());
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::apply_all;
    use crate::generators::{gnp, jittered_mesh};

    fn spec(batches: usize, ops: usize, seed: u64) -> TraceSpec {
        TraceSpec {
            batches,
            ops_per_batch: ops,
            seed,
        }
    }

    #[test]
    fn names_round_trip() {
        for name in Scenario::NAMES {
            assert_eq!(Scenario::by_name(name).unwrap().name(), name);
        }
        assert!(Scenario::by_name("tsunami").is_none());
    }

    #[test]
    fn mesh_growth_adds_exactly_the_requested_nodes() {
        let g = jittered_mesh(120, 3);
        let trace = generate(&g, Scenario::MeshGrowth, &spec(4, 8, 1)).unwrap();
        assert_eq!(trace.len(), 4);
        let (grown, dirty) = apply_all(&g, &trace).unwrap();
        grown.validate().unwrap();
        assert_eq!(grown.num_nodes(), 120 + 4 * 8);
        assert!(dirty.len() >= 32);
    }

    #[test]
    fn mesh_growth_requires_coordinates() {
        let g = gnp(30, 0.2, 1);
        assert_eq!(
            generate(&g, Scenario::MeshGrowth, &spec(1, 2, 0)).unwrap_err(),
            GraphError::MissingCoordinates
        );
    }

    #[test]
    fn churn_applies_cleanly_with_and_without_coords() {
        for g in [jittered_mesh(80, 5), gnp(80, 0.1, 5)] {
            let trace = generate(&g, Scenario::RandomChurn, &spec(5, 10, 9)).unwrap();
            assert_eq!(trace.len(), 5);
            let (churned, _) = apply_all(&g, &trace).unwrap();
            churned.validate().unwrap();
            assert!(churned.num_nodes() > g.num_nodes(), "churn never grew");
        }
    }

    #[test]
    fn hotspot_changes_weights_but_not_structure() {
        let g = jittered_mesh(90, 2);
        let trace = generate(&g, Scenario::HotspotDrift, &spec(6, 12, 4)).unwrap();
        let (drifted, _) = apply_all(&g, &trace).unwrap();
        drifted.validate().unwrap();
        assert_eq!(drifted.num_nodes(), 90);
        assert_eq!(drifted.num_edges(), g.num_edges());
        assert_ne!(drifted.node_weights(), g.node_weights());
        assert!(trace
            .iter()
            .flatten()
            .all(|m| matches!(m, Mutation::SetNodeWeight { .. })));
        // Drift perturbs the original load profile, never erases it:
        // every weight is original-or-hotter, and only the final hot set
        // (≤ ops_per_batch nodes) may still be hot.
        let still_hot = drifted
            .node_weights()
            .iter()
            .zip(g.node_weights())
            .filter(|(d, o)| d != o)
            .count();
        assert!(still_hot > 0 && still_hot <= 12, "{still_hot} hot nodes");
        for (v, (&d, &o)) in drifted
            .node_weights()
            .iter()
            .zip(g.node_weights())
            .enumerate()
        {
            assert!(d >= o, "node {v} cooled below its original weight");
        }
    }

    #[test]
    fn hotspot_preserves_weighted_baselines() {
        // A graph whose nodes carry real (non-unit) weights must keep
        // that baseline through arbitrary drift.
        let base = jittered_mesh(60, 9);
        let mut b = crate::builder::GraphBuilder::with_nodes(60);
        for (u, v, w) in base.edges() {
            b.push_edge(u, v, w);
        }
        let g = b
            .node_weights(vec![50; 60])
            .coords(base.coords().unwrap().to_vec())
            .build()
            .unwrap();
        let trace = generate(&g, Scenario::HotspotDrift, &spec(8, 10, 3)).unwrap();
        let (drifted, _) = apply_all(&g, &trace).unwrap();
        assert!(drifted.node_weights().iter().all(|&w| w >= 50));
        // Most nodes are cooled back to exactly the baseline.
        let at_baseline = drifted.node_weights().iter().filter(|&&w| w == 50).count();
        assert!(at_baseline >= 50, "only {at_baseline} nodes at baseline");
    }

    #[test]
    fn generation_is_deterministic_in_the_spec() {
        let g = jittered_mesh(70, 8);
        for sc in [
            Scenario::MeshGrowth,
            Scenario::RandomChurn,
            Scenario::HotspotDrift,
        ] {
            let a = generate(&g, sc, &spec(3, 6, 77)).unwrap();
            let b = generate(&g, sc, &spec(3, 6, 77)).unwrap();
            assert_eq!(a, b, "{}", sc.name());
            let c = generate(&g, sc, &spec(3, 6, 78)).unwrap();
            assert_ne!(a, c, "{} ignored the seed", sc.name());
        }
    }
}
