//! Line-oriented text format for mutation traces.
//!
//! A trace is a sequence of batches; each batch is a run of mutation
//! lines terminated by a `commit` line (a trailing unterminated run forms
//! the final batch). Blank lines and `#` comments are ignored.
//!
//! ```text
//! # grow two nodes, rewire, drift one weight
//! node 1 0.31 0.70
//! node 2
//! edge 12 240 1
//! weight 7 3
//! commit
//! ```
//!
//! * `node <weight> [<x> <y>]` — [`Mutation::AddNode`]; coordinates are
//!   required when the target graph carries them.
//! * `edge <u> <v> <weight>` — [`Mutation::AddEdge`].
//! * `weight <node> <weight>` — [`Mutation::SetNodeWeight`].
//! * `commit` — ends the current batch.
//!
//! The mutation lines are the shared [`super::wire`] grammar — the same
//! codec the `serve` daemon's protocol and JSONL session tape use — so
//! this module only adds the batch framing (`commit` lines, comments) on
//! top of [`wire::parse_mutation`] / [`wire::format_mutation`].
//!
//! The format round-trips: [`parse_trace`] ∘ [`trace_to_text`] is the
//! identity on any trace without empty batches.

use super::{wire, Mutation};
use crate::error::GraphError;

/// Parses a mutation trace from its text form.
///
/// # Errors
///
/// [`GraphError::Parse`] with the 1-based line number on any malformed
/// line. Structural validity (node ids in range, nonzero weights) is
/// checked later, by [`super::apply_batch`].
pub fn parse_trace(text: &str) -> Result<Vec<Vec<Mutation>>, GraphError> {
    let mut batches: Vec<Vec<Mutation>> = Vec::new();
    let mut current: Vec<Mutation> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "commit" {
            batches.push(std::mem::take(&mut current));
            continue;
        }
        current.push(wire::parse_mutation(line).map_err(|e| GraphError::Parse {
            line: i + 1,
            message: e.0,
        })?);
    }
    if !current.is_empty() {
        batches.push(current);
    }
    Ok(batches)
}

/// Renders a trace to its text form (see the [module docs](self)).
pub fn trace_to_text(batches: &[Vec<Mutation>]) -> String {
    let mut out = String::new();
    for batch in batches {
        for m in batch {
            out.push_str(&wire::format_mutation(m));
            out.push('\n');
        }
        out.push_str("commit\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point2;

    #[test]
    fn parses_the_doc_example() {
        let text = "# comment\nnode 1 0.31 0.70\nnode 2\nedge 12 240 1\nweight 7 3\ncommit\n";
        let batches = parse_trace(text).unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(
            batches[0][0],
            Mutation::AddNode {
                weight: 1,
                pos: Some(Point2::new(0.31, 0.70))
            }
        );
        assert_eq!(
            batches[0][3],
            Mutation::SetNodeWeight { node: 7, weight: 3 }
        );
    }

    #[test]
    fn trailing_run_without_commit_is_a_batch() {
        let batches = parse_trace("edge 0 1 1\ncommit\nweight 2 4\n").unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(
            batches[1],
            vec![Mutation::SetNodeWeight { node: 2, weight: 4 }]
        );
    }

    #[test]
    fn empty_commit_makes_an_empty_batch() {
        let batches = parse_trace("commit\ncommit\n").unwrap();
        assert_eq!(batches, vec![Vec::new(), Vec::new()]);
    }

    #[test]
    fn round_trips() {
        let batches = vec![
            vec![
                Mutation::AddNode {
                    weight: 3,
                    pos: Some(Point2::new(0.5, -1.25)),
                },
                Mutation::AddNode {
                    weight: 1,
                    pos: None,
                },
                Mutation::AddEdge {
                    u: 4,
                    v: 9,
                    weight: 2,
                },
            ],
            vec![Mutation::SetNodeWeight { node: 0, weight: 7 }],
        ];
        assert_eq!(parse_trace(&trace_to_text(&batches)).unwrap(), batches);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let err = parse_trace("edge 0 1 1\nfrob 1 2\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }), "{err}");
        let err = parse_trace("node x\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        let err = parse_trace("edge 0 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }), "{err}");
    }
}
