//! The one wire codec for mutation streams.
//!
//! Every surface that moves mutations around — the `trace` text format
//! ([`super::trace`]), the CLI `stream` replay path, the `gapart serve`
//! protocol's `mutate` command, and the daemon's JSONL session tape —
//! speaks this grammar. One mutation is one line (or one `;`-separated
//! segment inside a single-line batch):
//!
//! ```text
//! node <weight> [<x> <y>]
//! edge <u> <v> <weight>
//! weight <node> <weight>
//! ```
//!
//! The codec round-trips exactly: [`parse_mutation`] ∘ [`format_mutation`]
//! and [`parse_batch`] ∘ [`format_batch`] are identities (pinned by
//! proptests in `crates/graph/tests/proptest_wire.rs`). Coordinates use
//! Rust's shortest-round-trip float formatting, so positions survive the
//! text crossing bit for bit.
//!
//! Structural validity (ids in range, nonzero weights) is *not* checked
//! here — that is [`super::apply_batch`]'s job, exactly as for mutations
//! built in memory.

use super::Mutation;
use crate::geometry::Point2;
use std::fmt::Write as _;

/// A malformed wire line. Carries only the message; framing layers (the
/// trace parser, the tape reader, the serve protocol) wrap it with their
/// own location information (line number, record index, command name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for WireError {}

fn num<T: std::str::FromStr>(tok: &str, what: &str) -> Result<T, WireError> {
    tok.parse()
        .map_err(|_| WireError(format!("bad {what} '{tok}'")))
}

/// Renders one mutation in the wire grammar (no trailing newline).
pub fn format_mutation(m: &Mutation) -> String {
    let mut out = String::new();
    let _ = match m {
        Mutation::AddNode { weight, pos: None } => write!(out, "node {weight}"),
        Mutation::AddNode {
            weight,
            pos: Some(p),
        } => write!(out, "node {weight} {} {}", p.x, p.y),
        Mutation::AddEdge { u, v, weight } => write!(out, "edge {u} {v} {weight}"),
        Mutation::SetNodeWeight { node, weight } => write!(out, "weight {node} {weight}"),
    };
    out
}

/// Parses one wire line into a [`Mutation`].
///
/// # Errors
///
/// [`WireError`] naming the offending token or op; the input line is
/// never partially consumed.
// gapart-lint: allow(panic-reach) -- std `str::parse` on primitives in `num`; the Baseline::parse edge is a name-collision false positive
pub fn parse_mutation(line: &str) -> Result<Mutation, WireError> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    match toks.as_slice() {
        ["node", w] => Ok(Mutation::AddNode {
            weight: num(w, "node weight")?,
            pos: None,
        }),
        ["node", w, x, y] => Ok(Mutation::AddNode {
            weight: num(w, "node weight")?,
            pos: Some(Point2::new(
                num(x, "x coordinate")?,
                num(y, "y coordinate")?,
            )),
        }),
        ["edge", u, v, w] => Ok(Mutation::AddEdge {
            u: num(u, "node id")?,
            v: num(v, "node id")?,
            weight: num(w, "edge weight")?,
        }),
        ["weight", n, w] => Ok(Mutation::SetNodeWeight {
            node: num(n, "node id")?,
            weight: num(w, "node weight")?,
        }),
        [] => Err(WireError("empty mutation".into())),
        [op, rest @ ..] => Err(WireError(format!(
            "unknown or malformed op '{op}' with {} operand(s)",
            rest.len()
        ))),
    }
}

/// Renders a whole batch on a single line: mutations in order, joined by
/// `;`. An empty batch renders as the empty string.
pub fn format_batch(batch: &[Mutation]) -> String {
    let mut out = String::new();
    for (i, m) in batch.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        out.push_str(&format_mutation(m));
    }
    out
}

/// Parses a single-line `;`-separated batch. A blank line is the empty
/// batch.
///
/// # Errors
///
/// [`WireError`] from the first malformed segment (a trailing or doubled
/// `;` counts — segments may not be empty).
pub fn parse_batch(line: &str) -> Result<Vec<Mutation>, WireError> {
    if line.trim().is_empty() {
        return Ok(Vec::new());
    }
    line.split(';').map(parse_mutation).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_op_round_trips() {
        let muts = [
            Mutation::AddNode {
                weight: 3,
                pos: None,
            },
            Mutation::AddNode {
                weight: 1,
                pos: Some(Point2::new(0.31, -0.70)),
            },
            Mutation::AddEdge {
                u: 12,
                v: 240,
                weight: 1,
            },
            Mutation::SetNodeWeight { node: 7, weight: 3 },
        ];
        for m in &muts {
            assert_eq!(&parse_mutation(&format_mutation(m)).unwrap(), m);
        }
        assert_eq!(parse_batch(&format_batch(&muts)).unwrap(), muts);
        assert_eq!(parse_batch(&format_batch(&[])).unwrap(), Vec::new());
    }

    #[test]
    fn floats_survive_the_text_crossing_exactly() {
        let m = Mutation::AddNode {
            weight: 1,
            pos: Some(Point2::new(0.1 + 0.2, 1.0 / 3.0)),
        };
        assert_eq!(parse_mutation(&format_mutation(&m)).unwrap(), m);
    }

    #[test]
    fn malformed_lines_are_named_errors() {
        assert!(parse_mutation("frob 1 2").unwrap_err().0.contains("frob"));
        assert!(parse_mutation("node x").unwrap_err().0.contains("'x'"));
        assert!(parse_mutation("edge 0 1").unwrap_err().0.contains("edge"));
        assert!(parse_mutation("").unwrap_err().0.contains("empty"));
        // Doubled separator inside a batch is an empty segment: error.
        assert!(parse_batch("node 1;;edge 0 1 1").is_err());
        assert!(parse_batch("node 1;").is_err());
    }

    #[test]
    fn whitespace_is_forgiven_within_a_line() {
        assert_eq!(
            parse_mutation("  edge   3  4   5 ").unwrap(),
            Mutation::AddEdge {
                u: 3,
                v: 4,
                weight: 5
            }
        );
    }
}
