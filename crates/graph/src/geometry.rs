//! Plane geometry helpers for coordinate-carrying graphs.
//!
//! The paper's test graphs represent 2-D physical domains, and the
//! index-based partitioner (appendix) maps coordinates to space-filling
//! indices, so graphs optionally carry one [`Point2`] per vertex.

/// A point in the plane. Coordinates are `f64` in arbitrary units; the
/// generators in this crate place vertices inside the unit square.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point from its coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2::new(0.0, 0.0);

    /// Squared Euclidean distance to `other` (avoids the `sqrt` when only
    /// comparisons are needed, e.g. nearest-neighbour queries).
    pub fn dist2(&self, other: &Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: &Point2) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Componentwise translation.
    pub fn offset(&self, dx: f64, dy: f64) -> Point2 {
        Point2::new(self.x + dx, self.y + dy)
    }

    /// Clamps both coordinates into `[lo, hi]`.
    pub fn clamp(&self, lo: f64, hi: f64) -> Point2 {
        Point2::new(self.x.clamp(lo, hi), self.y.clamp(lo, hi))
    }
}

/// Axis-aligned bounding box of a non-empty point set.
///
/// Returns `None` for an empty slice.
pub fn bounding_box(points: &[Point2]) -> Option<(Point2, Point2)> {
    let first = points.first()?;
    let mut lo = *first;
    let mut hi = *first;
    for p in &points[1..] {
        lo.x = lo.x.min(p.x);
        lo.y = lo.y.min(p.y);
        hi.x = hi.x.max(p.x);
        hi.y = hi.y.max(p.y);
    }
    Some((lo, hi))
}

/// Quantizes points onto a `resolution × resolution` integer grid covering
/// their bounding box. Used by the index-based partitioner, which operates
/// on integer grid coordinates.
///
/// Degenerate boxes (all points on a vertical or horizontal line) map the
/// flat dimension to cell 0. `resolution` must be at least 1.
pub fn quantize(points: &[Point2], resolution: u32) -> Vec<(u32, u32)> {
    assert!(resolution >= 1, "resolution must be at least 1");
    let Some((lo, hi)) = bounding_box(points) else {
        return Vec::new();
    };
    let span_x = hi.x - lo.x;
    let span_y = hi.y - lo.y;
    let max_cell = (resolution - 1) as f64;
    points
        .iter()
        .map(|p| {
            let cx = if span_x > 0.0 {
                (((p.x - lo.x) / span_x) * max_cell).round() as u32
            } else {
                0
            };
            let cy = if span_y > 0.0 {
                (((p.y - lo.y) / span_y) * max_cell).round() as u32
            } else {
                0
            };
            (cx.min(resolution - 1), cy.min(resolution - 1))
        })
        .collect()
}

/// A [`NearestGrid`] cell size matched to the density of `points`: the
/// edge length of a square holding one point on average over the
/// bounding box — approximately the typical nearest-neighbour spacing,
/// which is the sweet spot for ring-search queries. Unlike a fixed
/// `1/√n`, this stays correct for coordinates on any scale (user-supplied
/// `.xy` files are not confined to the unit square).
///
/// Degenerate sets fall back sanely: collinear points use their span
/// divided by the count; empty or single-point sets return 1.0.
pub fn density_cell(points: &[Point2]) -> f64 {
    let Some((lo, hi)) = bounding_box(points) else {
        return 1.0;
    };
    let (w, h) = (hi.x - lo.x, hi.y - lo.y);
    let area = w * h;
    if area > 0.0 {
        (area / points.len() as f64).sqrt()
    } else if w.max(h) > 0.0 {
        w.max(h) / points.len() as f64
    } else {
        1.0
    }
}

/// Bucket index for [`NearestGrid`]. Deliberately a hash map: queries
/// probe O(k) cells by key on the hot incremental-growth path, and the
/// map is **never iterated** — every read goes through `get`, and ring
/// enumeration order comes from cell geometry — so its randomized
/// iteration order cannot reach any result.
// gapart-lint: allow(det-hash-iter) -- probe-only: read via get() exclusively, never iterated, so hash order cannot leak into query results
type BucketGrid = std::collections::HashMap<(i64, i64), Vec<u32>>;

/// Exact k-nearest-neighbour index over a growing 2-D point set, backed
/// by a uniform bucket grid.
///
/// Queries expand square rings of cells outward from the query's cell and
/// stop once the k-th best squared distance is provably closer than any
/// unvisited cell, so results are *exact*, not approximate. Ties in
/// distance break toward the lower point id, making every query a pure
/// function of the inserted point sequence — the determinism contract the
/// incremental-growth model relies on.
///
/// For points spread over a bounded domain with cell size on the order of
/// the typical point spacing, a query inspects `O(k)` cells, replacing
/// the `O(n log n)` full sort of a brute-force scan.
#[derive(Debug, Clone)]
pub struct NearestGrid {
    cell: f64,
    buckets: BucketGrid,
    points: Vec<Point2>,
}

impl NearestGrid {
    /// Creates an index with the given `cell` edge length and inserts
    /// `points` in order (point ids are their positions in the slice).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not strictly positive and finite.
    pub fn new(points: &[Point2], cell: f64) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "bad cell size {cell}");
        let mut grid = NearestGrid {
            cell,
            buckets: BucketGrid::new(),
            points: Vec::with_capacity(points.len()),
        };
        for &p in points {
            grid.insert(p);
        }
        grid
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Inserts a point, returning its id (insertion order).
    pub fn insert(&mut self, p: Point2) -> u32 {
        let id = self.points.len() as u32;
        self.points.push(p);
        self.buckets.entry(self.cell_of(&p)).or_default().push(id);
        id
    }

    fn cell_of(&self, p: &Point2) -> (i64, i64) {
        (
            (p.x / self.cell).floor() as i64,
            (p.y / self.cell).floor() as i64,
        )
    }

    /// The `k` nearest indexed points to `query`, ordered by
    /// `(squared distance, id)` ascending. Returns fewer than `k` ids only
    /// when the index holds fewer than `k` points.
    pub fn nearest(&self, query: &Point2, k: usize) -> Vec<u32> {
        let k = k.min(self.points.len());
        if k == 0 {
            return Vec::new();
        }
        let (cx, cy) = self.cell_of(query);
        let mut found: Vec<(f64, u32)> = Vec::with_capacity(k * 4);
        let mut ring: i64 = 0;
        loop {
            // Visit the cells whose Chebyshev index distance is exactly
            // `ring`, in a deterministic row-major order over the ring's
            // perimeter only (O(ring) cells, not O(ring²)).
            let visit = |dx: i64, dy: i64, found: &mut Vec<(f64, u32)>| {
                if let Some(ids) = self.buckets.get(&(cx + dx, cy + dy)) {
                    for &id in ids {
                        found.push((self.points[id as usize].dist2(query), id));
                    }
                }
            };
            for dy in -ring..=ring {
                if dy.abs() == ring {
                    for dx in -ring..=ring {
                        visit(dx, dy, &mut found);
                    }
                } else {
                    // |dy| < ring implies ring > 0, so the two columns
                    // are distinct cells.
                    visit(-ring, dy, &mut found);
                    visit(ring, dy, &mut found);
                }
            }
            if found.len() >= k {
                // Any point in an unvisited cell (index distance > ring)
                // is at least `ring × cell` away from anywhere in the
                // query's cell, hence from the query itself.
                let bound = ring as f64 * self.cell;
                found.sort_unstable_by(|a, b| {
                    a.0.partial_cmp(&b.0)
                        .expect("finite distances")
                        .then(a.1.cmp(&b.1))
                });
                if found[k - 1].0 <= bound * bound {
                    found.truncate(k);
                    return found.into_iter().map(|(_, id)| id).collect();
                }
            }
            ring += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.dist2(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point2::new(-1.5, 2.0);
        let b = Point2::new(4.0, -0.5);
        assert_eq!(a.dist(&b), b.dist(&a));
    }

    #[test]
    fn offset_and_clamp() {
        let p = Point2::new(0.5, 0.5).offset(1.0, -2.0);
        assert_eq!(p, Point2::new(1.5, -1.5));
        assert_eq!(p.clamp(0.0, 1.0), Point2::new(1.0, 0.0));
    }

    #[test]
    fn bounding_box_of_empty_is_none() {
        assert!(bounding_box(&[]).is_none());
    }

    #[test]
    fn bounding_box_covers_all_points() {
        let pts = [
            Point2::new(0.2, 0.9),
            Point2::new(-1.0, 0.3),
            Point2::new(0.7, -0.4),
        ];
        let (lo, hi) = bounding_box(&pts).unwrap();
        assert_eq!(lo, Point2::new(-1.0, -0.4));
        assert_eq!(hi, Point2::new(0.7, 0.9));
    }

    #[test]
    fn quantize_corners_map_to_grid_corners() {
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.5, 0.5),
        ];
        let q = quantize(&pts, 8);
        assert_eq!(q[0], (0, 0));
        assert_eq!(q[1], (7, 7));
        // midpoint lands in the middle cells
        assert!(q[2].0 == 3 || q[2].0 == 4);
        assert!(q[2].1 == 3 || q[2].1 == 4);
    }

    #[test]
    fn quantize_degenerate_line() {
        // All x equal: the x dimension collapses to cell 0.
        let pts = [Point2::new(0.5, 0.0), Point2::new(0.5, 1.0)];
        let q = quantize(&pts, 4);
        assert_eq!(q[0], (0, 0));
        assert_eq!(q[1], (0, 3));
    }

    #[test]
    fn quantize_single_point() {
        let q = quantize(&[Point2::new(0.3, 0.3)], 16);
        assert_eq!(q, vec![(0, 0)]);
    }

    #[test]
    fn quantize_resolution_one_maps_everything_to_origin_cell() {
        let pts = [Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)];
        assert_eq!(quantize(&pts, 1), vec![(0, 0), (0, 0)]);
    }

    /// Brute-force reference: ids ordered by `(dist2, id)`.
    fn brute_nearest(points: &[Point2], query: &Point2, k: usize) -> Vec<u32> {
        let mut all: Vec<(f64, u32)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (p.dist2(query), i as u32))
            .collect();
        all.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        all.truncate(k);
        all.into_iter().map(|(_, id)| id).collect()
    }

    #[test]
    fn nearest_grid_matches_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let points: Vec<Point2> = (0..400)
            .map(|_| Point2::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect();
        let grid = NearestGrid::new(&points, 0.05);
        assert_eq!(grid.len(), 400);
        for _ in 0..50 {
            let q = Point2::new(rng.gen_range(-0.2..1.2), rng.gen_range(-0.2..1.2));
            for k in [1, 3, 7] {
                assert_eq!(grid.nearest(&q, k), brute_nearest(&points, &q, k));
            }
        }
    }

    #[test]
    fn nearest_grid_handles_growth_and_small_sets() {
        let mut grid = NearestGrid::new(&[], 0.1);
        assert!(grid.is_empty());
        assert!(grid.nearest(&Point2::ORIGIN, 3).is_empty());
        assert_eq!(grid.insert(Point2::new(0.0, 0.0)), 0);
        assert_eq!(grid.insert(Point2::new(5.0, 5.0)), 1);
        // More requested than indexed: all points, nearest first.
        assert_eq!(grid.nearest(&Point2::new(0.1, 0.0), 9), vec![0, 1]);
        assert_eq!(grid.nearest(&Point2::new(4.9, 5.0), 1), vec![1]);
    }

    #[test]
    fn nearest_grid_breaks_exact_ties_by_id() {
        // Two coincident points: lower id wins.
        let pts = [Point2::new(1.0, 1.0), Point2::new(1.0, 1.0)];
        let grid = NearestGrid::new(&pts, 0.5);
        assert_eq!(grid.nearest(&Point2::new(1.2, 1.0), 2), vec![0, 1]);
    }

    #[test]
    fn density_cell_tracks_the_coordinate_scale() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        // 100 points over [0, 1000]²: the density cell must be ~100, not
        // the unit-square 1/√n = 0.1 (which would make every ring search
        // probe millions of empty cells).
        let points: Vec<Point2> = (0..100)
            .map(|_| Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let cell = density_cell(&points);
        assert!((50.0..200.0).contains(&cell), "cell {cell}");
        let grid = NearestGrid::new(&points, cell);
        let q = Point2::new(500.0, 500.0);
        assert_eq!(grid.nearest(&q, 5), brute_nearest(&points, &q, 5));
        // Degenerate sets stay positive and finite.
        assert_eq!(density_cell(&[]), 1.0);
        assert_eq!(density_cell(&[Point2::ORIGIN]), 1.0);
        let line = [Point2::new(0.0, 3.0), Point2::new(8.0, 3.0)];
        assert_eq!(density_cell(&line), 4.0);
    }

    #[test]
    fn nearest_grid_finds_far_points_across_many_rings() {
        // Tiny cells relative to spread: the query must expand many rings
        // before finding anything, and must still be exact.
        let pts = [Point2::new(10.0, 10.0), Point2::new(-10.0, -10.0)];
        let grid = NearestGrid::new(&pts, 0.01);
        assert_eq!(grid.nearest(&Point2::new(9.0, 9.0), 1), vec![0]);
        assert_eq!(
            grid.nearest(&Point2::ORIGIN, 2),
            brute_nearest(&pts, &Point2::ORIGIN, 2)
        );
    }
}
