//! Plane geometry helpers for coordinate-carrying graphs.
//!
//! The paper's test graphs represent 2-D physical domains, and the
//! index-based partitioner (appendix) maps coordinates to space-filling
//! indices, so graphs optionally carry one [`Point2`] per vertex.

/// A point in the plane. Coordinates are `f64` in arbitrary units; the
/// generators in this crate place vertices inside the unit square.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point from its coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point2 = Point2::new(0.0, 0.0);

    /// Squared Euclidean distance to `other` (avoids the `sqrt` when only
    /// comparisons are needed, e.g. nearest-neighbour queries).
    pub fn dist2(&self, other: &Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: &Point2) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Componentwise translation.
    pub fn offset(&self, dx: f64, dy: f64) -> Point2 {
        Point2::new(self.x + dx, self.y + dy)
    }

    /// Clamps both coordinates into `[lo, hi]`.
    pub fn clamp(&self, lo: f64, hi: f64) -> Point2 {
        Point2::new(self.x.clamp(lo, hi), self.y.clamp(lo, hi))
    }
}

/// Axis-aligned bounding box of a non-empty point set.
///
/// Returns `None` for an empty slice.
pub fn bounding_box(points: &[Point2]) -> Option<(Point2, Point2)> {
    let first = points.first()?;
    let mut lo = *first;
    let mut hi = *first;
    for p in &points[1..] {
        lo.x = lo.x.min(p.x);
        lo.y = lo.y.min(p.y);
        hi.x = hi.x.max(p.x);
        hi.y = hi.y.max(p.y);
    }
    Some((lo, hi))
}

/// Quantizes points onto a `resolution × resolution` integer grid covering
/// their bounding box. Used by the index-based partitioner, which operates
/// on integer grid coordinates.
///
/// Degenerate boxes (all points on a vertical or horizontal line) map the
/// flat dimension to cell 0. `resolution` must be at least 1.
pub fn quantize(points: &[Point2], resolution: u32) -> Vec<(u32, u32)> {
    assert!(resolution >= 1, "resolution must be at least 1");
    let Some((lo, hi)) = bounding_box(points) else {
        return Vec::new();
    };
    let span_x = hi.x - lo.x;
    let span_y = hi.y - lo.y;
    let max_cell = (resolution - 1) as f64;
    points
        .iter()
        .map(|p| {
            let cx = if span_x > 0.0 {
                (((p.x - lo.x) / span_x) * max_cell).round() as u32
            } else {
                0
            };
            let cy = if span_y > 0.0 {
                (((p.y - lo.y) / span_y) * max_cell).round() as u32
            } else {
                0
            };
            (cx.min(resolution - 1), cy.min(resolution - 1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.dist2(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point2::new(-1.5, 2.0);
        let b = Point2::new(4.0, -0.5);
        assert_eq!(a.dist(&b), b.dist(&a));
    }

    #[test]
    fn offset_and_clamp() {
        let p = Point2::new(0.5, 0.5).offset(1.0, -2.0);
        assert_eq!(p, Point2::new(1.5, -1.5));
        assert_eq!(p.clamp(0.0, 1.0), Point2::new(1.0, 0.0));
    }

    #[test]
    fn bounding_box_of_empty_is_none() {
        assert!(bounding_box(&[]).is_none());
    }

    #[test]
    fn bounding_box_covers_all_points() {
        let pts = [
            Point2::new(0.2, 0.9),
            Point2::new(-1.0, 0.3),
            Point2::new(0.7, -0.4),
        ];
        let (lo, hi) = bounding_box(&pts).unwrap();
        assert_eq!(lo, Point2::new(-1.0, -0.4));
        assert_eq!(hi, Point2::new(0.7, 0.9));
    }

    #[test]
    fn quantize_corners_map_to_grid_corners() {
        let pts = [
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.5, 0.5),
        ];
        let q = quantize(&pts, 8);
        assert_eq!(q[0], (0, 0));
        assert_eq!(q[1], (7, 7));
        // midpoint lands in the middle cells
        assert!(q[2].0 == 3 || q[2].0 == 4);
        assert!(q[2].1 == 3 || q[2].1 == 4);
    }

    #[test]
    fn quantize_degenerate_line() {
        // All x equal: the x dimension collapses to cell 0.
        let pts = [Point2::new(0.5, 0.0), Point2::new(0.5, 1.0)];
        let q = quantize(&pts, 4);
        assert_eq!(q[0], (0, 0));
        assert_eq!(q[1], (0, 3));
    }

    #[test]
    fn quantize_single_point() {
        let q = quantize(&[Point2::new(0.3, 0.3)], 16);
        assert_eq!(q, vec![(0, 0)]);
    }

    #[test]
    fn quantize_resolution_one_maps_everything_to_origin_cell() {
        let pts = [Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)];
        assert_eq!(quantize(&pts, 1), vec![(0, 0), (0, 0)]);
    }
}
