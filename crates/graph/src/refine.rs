//! Shared k-way greedy boundary refinement.
//!
//! A light Kernighan–Lin-flavoured delta-gain pass used by the multilevel
//! V-cycle ([`crate::multilevel`]) after each projection: repeatedly move
//! the boundary vertex with the best gain (cut-weight reduction) to a
//! neighbouring part, provided the move does not push load imbalance past
//! a tolerance. It maintains the same per-part loads that
//! [`crate::partition::PartitionMetrics`] reports and evaluates each
//! candidate move in `O(deg(v))` from the vertex's connectivity to the
//! parts it touches — no full re-tally per move.
//!
//! This is the classical cut/balance heuristic every multilevel
//! partitioner uses, distinct from the GA's fitness-driven hill climbing
//! in `gapart-core` (which optimizes the paper's composite objective, not
//! the cut under a hard balance cap). It works for any number of parts:
//! a vertex may move to whichever adjacent part it is most connected to.
//!
//! Two entry points share one sweep core: [`refine_kway`] visits every
//! vertex, and [`refine_kway_local`] visits only an explicit region —
//! the dirty frontier of a streaming update (see
//! [`crate::dynamic`]), where a full sweep would waste `O(V + E)` work
//! on untouched parts of the graph.
//!
//! # Two-phase parallel sweeps
//!
//! Each sweep runs in two phases. The **gain scan** walks every candidate
//! in parallel against a frozen snapshot of the labels and keeps the ones
//! with a strictly cut-improving move — the `O(V + E)` bulk of the work,
//! chunked across workers and reduced in index order. The **apply phase**
//! then revisits only those (typically few, boundary) winners
//! sequentially in ascending id order, re-deriving each move against the
//! live partition so balance, the never-empty-a-part rule, and the
//! never-worsen-the-cut guarantee hold exactly as they would for a
//! sequential sweep.
//!
//! Determinism: the scan is a pure per-vertex function of the frozen
//! snapshot collected in index order, and the apply phase is sequential,
//! so a refinement run is a pure function of
//! `(graph, partition, options)` (plus the region for the local variant)
//! — bit-identical for any worker-pool size.

use crate::csr::CsrGraph;
use crate::partition::Partition;
use rayon::prelude::*;

/// Candidates per gain-scan chunk: vertices are cheap to score, so give
/// each worker invocation a sizeable slice and let small regions run
/// inline rather than paying thread-spawn overhead.
const SCAN_CHUNK: usize = 2048;

/// Which refinement engine a caller (the multilevel V-cycle, the
/// streaming session, the CLI's `--refine` flag) runs after each
/// projection or batch. Callers dispatch on the variant themselves —
/// the V-cycle and the streaming session keep a persistent
/// [`crate::fm::FmRefiner`] workspace across calls, which a stateless
/// dispatch function could not provide.
///
/// Both schemes share [`RefineOptions`], never increase the cut, respect
/// the balance cap and the never-empty-a-part rule, report exact gains,
/// and are bit-identical for any worker-pool size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefineScheme {
    /// The frozen-gain greedy sweep in this module ([`refine_kway`]):
    /// parallel scan of every vertex, sequential apply of the strictly
    /// improving winners. Cannot chain moves through locally-worse
    /// states.
    Sweep,
    /// The boundary-driven Fiduccia–Mattheyses engine
    /// ([`crate::fm`]): gain buckets over the cut boundary only,
    /// hill-climbing move chains with rollback to the best prefix,
    /// seeded tie-breaking. The default — strictly stronger on the
    /// V-cycle hot path and cheaper per pass on large graphs.
    #[default]
    BoundaryFm,
    /// The parallel boundary FM ([`crate::fm::ParallelFm`]): each pass
    /// applies conflict-free batches of edge-disjoint moves selected by
    /// seeded part-pair-colored keys — frozen-label gain evaluation in
    /// parallel, exact sequential apply in index order. Same invariants
    /// as [`RefineScheme::BoundaryFm`]; scales the last sequential
    /// V-cycle stage with cores. Rounds after a pass's first reuse an
    /// incrementally repaired evaluation table (`O(touched)` per round
    /// instead of `O(boundary)`).
    ParallelFm,
    /// The full-rescan reference build of the parallel boundary FM
    /// ([`crate::fm::ParallelFm::full_rescan`]): re-evaluates the whole
    /// candidate list every round instead of repairing the table
    /// incrementally. Bit-identical output to
    /// [`RefineScheme::ParallelFm`] at the pre-incremental cost profile
    /// — exists so tests and the CI determinism matrix can pin the
    /// equivalence at pipeline level, not as a production engine.
    ParallelFmRescan,
}

impl RefineScheme {
    /// CLI name of the scheme (`sweep` / `fm` / `pfm` / `pfm-rescan`).
    pub fn name(self) -> &'static str {
        match self {
            RefineScheme::Sweep => "sweep",
            RefineScheme::BoundaryFm => "fm",
            RefineScheme::ParallelFm => "pfm",
            RefineScheme::ParallelFmRescan => "pfm-rescan",
        }
    }

    /// Resolves a CLI name (`sweep` / `fm` / `pfm` / `pfm-rescan`);
    /// `None` for unknown names.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "sweep" => Some(RefineScheme::Sweep),
            "fm" => Some(RefineScheme::BoundaryFm),
            "pfm" => Some(RefineScheme::ParallelFm),
            "pfm-rescan" => Some(RefineScheme::ParallelFmRescan),
            _ => None,
        }
    }
}

/// Knobs of a [`refine_kway`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineOptions {
    /// Allowed deviation of any part's load from the ideal average, as a
    /// fraction (e.g. `0.05` allows 5% overweight parts). A move is
    /// admissible only if the destination part stays within
    /// `(1 + balance_slack) × avg` afterwards.
    pub balance_slack: f64,
    /// Maximum sweeps over the vertices; refinement also stops as soon as
    /// a full sweep makes no move.
    pub max_passes: usize,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            balance_slack: 0.05,
            max_passes: 4,
        }
    }
}

/// Outcome of a refinement run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineStats {
    /// Number of vertices moved.
    pub moves: usize,
    /// Total cut-weight reduction achieved.
    pub gain: u64,
}

/// Refines `partition` in place, greedily and k-way: each sweep scans
/// every vertex (in parallel, reduced in id order) and applies the best
/// strictly-improving, balance-respecting move to a part the vertex
/// already touches. A move is never allowed to empty its source part, so
/// no part ever ends a refinement without nodes — but a zero-weight
/// vertex in a populated part is free to move, since it cannot drain any
/// load.
///
/// Never increases the cut; per-part loads are tracked incrementally so a
/// sweep costs `O(V + E)` regardless of how many moves it makes, and the
/// result is bit-identical for any worker-pool size.
///
/// # Panics
///
/// Panics if `partition` covers a different number of nodes than `graph`.
pub fn refine_kway(
    graph: &CsrGraph,
    partition: &mut Partition,
    opts: &RefineOptions,
) -> RefineStats {
    sweep_region(graph, partition, opts, None)
}

/// Localized variant of [`refine_kway`]: sweeps only the vertices in
/// `region` (deduplicated and visited in ascending id order regardless of
/// the order given). Loads and part populations are still tracked
/// globally, so balance and the never-empty-a-part rule hold for the
/// whole partition — only the set of candidate moves shrinks.
///
/// This is the workhorse of the streaming subsystem: after a mutation
/// batch, only the dirty frontier needs re-examination, which turns an
/// `O(V + E)` sweep into `O(|region| + edges(region))` plus one `O(V)`
/// load tally.
///
/// # Panics
///
/// Panics if `partition` covers a different number of nodes than `graph`,
/// or if `region` contains a node id `≥ graph.num_nodes()`.
pub fn refine_kway_local(
    graph: &CsrGraph,
    partition: &mut Partition,
    opts: &RefineOptions,
    region: &[u32],
) -> RefineStats {
    let mut nodes: Vec<u32> = region.to_vec();
    nodes.sort_unstable();
    nodes.dedup();
    if let Some(&last) = nodes.last() {
        assert!(
            (last as usize) < graph.num_nodes(),
            "region node {last} out of range"
        );
    }
    sweep_region(graph, partition, opts, Some(&nodes))
}

/// Shared sweep core: `region = None` means every vertex, otherwise a
/// sorted, duplicate-free candidate list.
fn sweep_region(
    graph: &CsrGraph,
    partition: &mut Partition,
    opts: &RefineOptions,
    region: Option<&[u32]>,
) -> RefineStats {
    assert_eq!(graph.num_nodes(), partition.num_nodes());
    let n_parts = partition.num_parts() as usize;
    let avg = graph.total_node_weight() as f64 / n_parts as f64;
    let max_load = (avg * (1.0 + opts.balance_slack)).ceil() as u64;

    let mut loads = vec![0u64; n_parts];
    // Node counts per part back the only-forbid-emptying-the-part guard:
    // tracking load alone would pin zero-weight vertices forever.
    let mut counts = vec![0usize; n_parts];
    for v in 0..graph.num_nodes() as u32 {
        loads[partition.part(v) as usize] += graph.node_weight(v) as u64;
        counts[partition.part(v) as usize] += 1;
    }

    // The candidate list the gain scan chunks over; for a full sweep
    // that is every vertex, materialized once for the whole run.
    let all_nodes: Vec<u32>;
    let candidates: &[u32] = match region {
        Some(nodes) => nodes,
        None => {
            all_nodes = (0..graph.num_nodes() as u32).collect();
            &all_nodes
        }
    };

    let mut stats = RefineStats { moves: 0, gain: 0 };
    // Connectivity scratch for the apply phase: (part, edge weight into
    // that part). Boundary vertices touch very few parts, so a flat scan
    // beats a per-part array of size k.
    let mut conn: Vec<(u32, u64)> = Vec::with_capacity(8);
    for _ in 0..opts.max_passes {
        // Phase 1 — parallel gain scan. Against the frozen labels, keep
        // every candidate with a strictly cut-improving move (balance is
        // left to the apply phase: loads shift as moves land, so only
        // the live state can judge it). Chunked collection preserves
        // index order, making the winner list thread-count-independent.
        let winners: Vec<u32> = candidates
            .par_chunks(SCAN_CHUNK)
            .map(|chunk| {
                let mut local: Vec<u32> = Vec::new();
                let mut cw: Vec<(u32, u64)> = Vec::with_capacity(8);
                for &v in chunk {
                    let pv = partition.part(v);
                    cw.clear();
                    let mut internal = 0u64;
                    for (&u, &w) in graph.neighbors(v).iter().zip(graph.edge_weights(v)) {
                        let pu = partition.part(u);
                        if pu == pv {
                            internal += w as u64;
                        } else {
                            match cw.iter_mut().find(|(p, _)| *p == pu) {
                                Some((_, c)) => *c += w as u64,
                                None => cw.push((pu, w as u64)),
                            }
                        }
                    }
                    if cw.iter().any(|&(_, c)| c > internal) {
                        local.push(v);
                    }
                }
                local
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .collect();

        // Phase 2 — sequential apply in ascending id order. Each winner
        // is re-derived against the live partition (earlier applies may
        // have moved its neighbours), so every guarantee of the old
        // fully-sequential sweep holds move by move.
        let mut moved_this_pass = false;
        for v in winners {
            let pv = partition.part(v);
            conn.clear();
            let mut internal = 0u64;
            for (&u, &w) in graph.neighbors(v).iter().zip(graph.edge_weights(v)) {
                let pu = partition.part(u);
                if pu == pv {
                    internal += w as u64;
                } else {
                    match conn.iter_mut().find(|(p, _)| *p == pu) {
                        Some((_, c)) => *c += w as u64,
                        None => conn.push((pu, w as u64)),
                    }
                }
            }
            // A move may never empty its source part — an empty part can
            // never be repopulated by cut-improving moves. Only the last
            // remaining vertex is pinned: a zero-weight vertex in a
            // populated part moves freely (it cannot drain any load).
            if counts[pv as usize] <= 1 {
                continue;
            }
            let wv = graph.node_weight(v) as u64;
            // Best strictly-improving, balance-respecting move.
            let mut best: Option<(u32, u64)> = None;
            for &(p, c) in &conn {
                if c > internal
                    && loads[p as usize] + wv <= max_load
                    && best.is_none_or(|(_, bc)| c > bc)
                {
                    best = Some((p, c));
                }
            }
            if let Some((p, c)) = best {
                loads[pv as usize] -= wv;
                loads[p as usize] += wv;
                counts[pv as usize] -= 1;
                counts[p as usize] += 1;
                partition.set(v, p);
                stats.moves += 1;
                stats.gain += c - internal;
                moved_this_pass = true;
            }
        }
        if !moved_this_pass {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::generators::paper_graph;
    use crate::partition::{cut_size, PartitionMetrics};

    fn opts(balance_slack: f64, max_passes: usize) -> RefineOptions {
        RefineOptions {
            balance_slack,
            max_passes,
        }
    }

    #[test]
    fn fixes_an_obviously_misplaced_vertex() {
        // Path 0-1-2-3 with node 0 on the wrong side.
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut p = Partition::new(vec![1, 0, 1, 1], 2).unwrap();
        let before = cut_size(&g, &p);
        let stats = refine_kway(&g, &mut p, &opts(0.6, 4));
        let after = cut_size(&g, &p);
        assert!(after < before, "no improvement: {before} -> {after}");
        assert_eq!(before - after, stats.gain);
        // A partition with no strictly-improving move stays untouched.
        let mut fixed = Partition::new(vec![0, 1, 1, 1], 2).unwrap();
        let s = refine_kway(&g, &mut fixed, &opts(0.0, 4));
        assert_eq!(s.moves, 0);
    }

    #[test]
    fn never_increases_cut() {
        let g = paper_graph(139);
        for seed in 0..3u64 {
            let mut p = random_partition(139, 4, seed);
            let before = cut_size(&g, &p);
            refine_kway(&g, &mut p, &opts(0.1, 8));
            let after = cut_size(&g, &p);
            assert!(after <= before, "cut increased {before} -> {after}");
        }
    }

    #[test]
    fn respects_balance_slack() {
        let g = paper_graph(144);
        let mut p = random_partition(144, 4, 9);
        refine_kway(&g, &mut p, &opts(0.05, 8));
        let m = PartitionMetrics::compute(&g, &p);
        let cap = (m.avg_load * 1.05).ceil() as u64;
        for &l in &m.part_loads {
            assert!(l <= cap, "load {l} exceeds cap {cap}");
        }
    }

    #[test]
    fn gain_matches_cut_delta_kway() {
        let g = paper_graph(98);
        let mut p = random_partition(98, 8, 4);
        let before = cut_size(&g, &p);
        let stats = refine_kway(&g, &mut p, &opts(0.2, 10));
        let after = cut_size(&g, &p);
        assert_eq!(before - after, stats.gain);
    }

    #[test]
    fn deterministic() {
        let g = paper_graph(167);
        let mut a = random_partition(167, 6, 2);
        let mut b = a.clone();
        let sa = refine_kway(&g, &mut a, &opts(0.1, 6));
        let sb = refine_kway(&g, &mut b, &opts(0.1, 6));
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn never_drains_a_part_to_zero() {
        // Regression: triangle with node 0 alone in part 0. Moving it to
        // part 1 improves the cut (2 -> 0) and respects the destination
        // cap at 100% slack, so the old code emptied part 0.
        let g = from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let mut p = Partition::new(vec![0, 1, 1], 2).unwrap();
        let stats = refine_kway(&g, &mut p, &opts(1.0, 4));
        assert_eq!(stats.moves, 0, "move emptied part 0");
        assert!(
            p.part_sizes().iter().all(|&s| s > 0),
            "{:?}",
            p.part_sizes()
        );
        // The guard is per-part, not global: a two-node part may still
        // shed one node.
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 2)]).unwrap();
        let mut p = Partition::new(vec![1, 0, 1, 1], 2).unwrap();
        refine_kway(&g, &mut p, &opts(1.0, 4));
        assert!(
            p.part_sizes().iter().all(|&s| s > 0),
            "{:?}",
            p.part_sizes()
        );
    }

    #[test]
    fn misplaced_zero_weight_vertex_gets_moved() {
        // Regression: the old drain guard (`loads[pv] <= wv`) pinned
        // every zero-weight vertex (`0 <= 0`), even though moving one can
        // only improve the cut and can never drain load. Zero weights are
        // unreachable through the builder, so construct the CSR directly,
        // as the streaming layers could.
        // Parts: {0, 1, 5} and {2, 3, 4}. The weightless vertex 5 has
        // both its edges into part 1; every weighted vertex is already
        // where it belongs, so the only improving move is 5 → part 1.
        let mut g = from_edges(6, &[(0, 1), (2, 3), (3, 4), (2, 4), (5, 2), (5, 3)]).unwrap();
        g.vweights = vec![2, 2, 2, 2, 2, 0];
        let mut p = Partition::new(vec![0, 0, 1, 1, 1, 0], 2).unwrap();
        let before = cut_size(&g, &p);
        let stats = refine_kway(&g, &mut p, &opts(0.2, 4));
        assert_eq!(p.part(5), 1, "zero-weight vertex stayed pinned");
        assert!(stats.moves >= 1);
        assert!(cut_size(&g, &p) < before);
        // Loads are untouched by the zero-weight move; no part is empty.
        assert!(p.part_sizes().iter().all(|&s| s > 0));

        // The guard still pins the *last* vertex of a part, even a
        // zero-weight one: emptying a part is never allowed.
        let mut g = from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        g.vweights = vec![0, 1, 1];
        let mut p = Partition::new(vec![0, 1, 1], 2).unwrap();
        let stats = refine_kway(&g, &mut p, &opts(1.0, 4));
        assert_eq!(stats.moves, 0, "sole occupant moved out of part 0");
        assert!(p.part_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let g = paper_graph(611);
        for seed in 0..2u64 {
            let base = random_partition(611, 5, seed);
            let mut reference: Option<(Partition, RefineStats)> = None;
            for threads in [1usize, 2, 4, 8] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let mut p = base.clone();
                let stats = pool.install(|| refine_kway(&g, &mut p, &opts(0.1, 6)));
                match &reference {
                    None => reference = Some((p, stats)),
                    Some((rp, rs)) => {
                        assert_eq!(&p, rp, "{threads}-thread refine diverged");
                        assert_eq!(&stats, rs);
                    }
                }
            }
        }
    }

    #[test]
    fn local_region_matches_full_sweep_when_region_is_everything() {
        let g = paper_graph(139);
        let all: Vec<u32> = (0..139u32).collect();
        for seed in 0..3u64 {
            let mut full = random_partition(139, 4, seed);
            let mut local = full.clone();
            let sf = refine_kway(&g, &mut full, &opts(0.1, 8));
            let sl = refine_kway_local(&g, &mut local, &opts(0.1, 8), &all);
            assert_eq!(full, local);
            assert_eq!(sf, sl);
        }
    }

    #[test]
    fn local_region_only_moves_region_nodes() {
        let g = paper_graph(144);
        let mut p = random_partition(144, 4, 5);
        let before = p.clone();
        let region: Vec<u32> = (40..80u32).collect();
        let stats = refine_kway_local(&g, &mut p, &opts(0.2, 6), &region);
        for v in 0..144u32 {
            if !region.contains(&v) {
                assert_eq!(p.part(v), before.part(v), "non-region node {v} moved");
            }
        }
        // The restricted sweep still finds *some* improving moves on a
        // random partition, and never increases the cut.
        assert!(stats.moves > 0);
        assert!(cut_size(&g, &p) <= cut_size(&g, &before));
    }

    #[test]
    fn local_region_is_order_insensitive_and_dedups() {
        let g = paper_graph(98);
        let mut a = random_partition(98, 4, 8);
        let mut b = a.clone();
        let fwd: Vec<u32> = (10..50u32).collect();
        let mut rev: Vec<u32> = fwd.iter().rev().copied().collect();
        rev.extend_from_slice(&fwd); // duplicates too
        let sa = refine_kway_local(&g, &mut a, &opts(0.2, 6), &fwd);
        let sb = refine_kway_local(&g, &mut b, &opts(0.2, 6), &rev);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn empty_region_is_a_no_op() {
        let g = paper_graph(78);
        let mut p = random_partition(78, 4, 1);
        let before = p.clone();
        let stats = refine_kway_local(&g, &mut p, &opts(0.1, 4), &[]);
        assert_eq!(stats, RefineStats { moves: 0, gain: 0 });
        assert_eq!(p, before);
    }

    fn random_partition(n: usize, parts: u32, seed: u64) -> Partition {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        Partition::new((0..n).map(|_| rng.gen_range(0..parts)).collect(), parts).unwrap()
    }
}
