//! Shared k-way greedy boundary refinement.
//!
//! A light Kernighan–Lin-flavoured delta-gain pass used by the multilevel
//! V-cycle ([`crate::multilevel`]) after each projection: repeatedly move
//! the boundary vertex with the best gain (cut-weight reduction) to a
//! neighbouring part, provided the move does not push load imbalance past
//! a tolerance. It maintains the same per-part loads that
//! [`crate::partition::PartitionMetrics`] reports and evaluates each
//! candidate move in `O(deg(v))` from the vertex's connectivity to the
//! parts it touches — no full re-tally per move.
//!
//! This is the classical cut/balance heuristic every multilevel
//! partitioner uses, distinct from the GA's fitness-driven hill climbing
//! in `gapart-core` (which optimizes the paper's composite objective, not
//! the cut under a hard balance cap). It works for any number of parts:
//! a vertex may move to whichever adjacent part it is most connected to.
//!
//! Determinism: vertices are scanned in id order and ties break toward
//! the earlier-discovered part, so a refinement run is a pure function of
//! `(graph, partition, options)`.

use crate::csr::CsrGraph;
use crate::partition::Partition;

/// Knobs of a [`refine_kway`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineOptions {
    /// Allowed deviation of any part's load from the ideal average, as a
    /// fraction (e.g. `0.05` allows 5% overweight parts). A move is
    /// admissible only if the destination part stays within
    /// `(1 + balance_slack) × avg` afterwards.
    pub balance_slack: f64,
    /// Maximum sweeps over the vertices; refinement also stops as soon as
    /// a full sweep makes no move.
    pub max_passes: usize,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            balance_slack: 0.05,
            max_passes: 4,
        }
    }
}

/// Outcome of a refinement run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineStats {
    /// Number of vertices moved.
    pub moves: usize,
    /// Total cut-weight reduction achieved.
    pub gain: u64,
}

/// Refines `partition` in place, greedily and k-way: each sweep visits
/// every vertex in id order and applies the best strictly-improving,
/// balance-respecting move to a part the vertex already touches.
///
/// Never increases the cut; per-part loads are tracked incrementally so a
/// sweep costs `O(V + E)` regardless of how many moves it makes.
///
/// # Panics
///
/// Panics if `partition` covers a different number of nodes than `graph`.
pub fn refine_kway(
    graph: &CsrGraph,
    partition: &mut Partition,
    opts: &RefineOptions,
) -> RefineStats {
    assert_eq!(graph.num_nodes(), partition.num_nodes());
    let n_parts = partition.num_parts() as usize;
    let avg = graph.total_node_weight() as f64 / n_parts as f64;
    let max_load = (avg * (1.0 + opts.balance_slack)).ceil() as u64;

    let mut loads = vec![0u64; n_parts];
    for v in 0..graph.num_nodes() as u32 {
        loads[partition.part(v) as usize] += graph.node_weight(v) as u64;
    }

    let mut stats = RefineStats { moves: 0, gain: 0 };
    // Connectivity scratch, reused across vertices: (part, edge weight
    // into that part). Boundary vertices touch very few parts, so a flat
    // scan beats a per-part array of size k.
    let mut conn: Vec<(u32, u64)> = Vec::with_capacity(8);
    for _ in 0..opts.max_passes {
        let mut moved_this_pass = false;
        for v in 0..graph.num_nodes() as u32 {
            let pv = partition.part(v);
            conn.clear();
            let mut internal = 0u64;
            for (&u, &w) in graph.neighbors(v).iter().zip(graph.edge_weights(v)) {
                let pu = partition.part(u);
                if pu == pv {
                    internal += w as u64;
                } else {
                    match conn.iter_mut().find(|(p, _)| *p == pu) {
                        Some((_, c)) => *c += w as u64,
                        None => conn.push((pu, w as u64)),
                    }
                }
            }
            // Best strictly-improving, balance-respecting move.
            let wv = graph.node_weight(v) as u64;
            let mut best: Option<(u32, u64)> = None;
            for &(p, c) in &conn {
                if c > internal
                    && loads[p as usize] + wv <= max_load
                    && best.is_none_or(|(_, bc)| c > bc)
                {
                    best = Some((p, c));
                }
            }
            if let Some((p, c)) = best {
                loads[pv as usize] -= wv;
                loads[p as usize] += wv;
                partition.set(v, p);
                stats.moves += 1;
                stats.gain += c - internal;
                moved_this_pass = true;
            }
        }
        if !moved_this_pass {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::generators::paper_graph;
    use crate::partition::{cut_size, PartitionMetrics};

    fn opts(balance_slack: f64, max_passes: usize) -> RefineOptions {
        RefineOptions {
            balance_slack,
            max_passes,
        }
    }

    #[test]
    fn fixes_an_obviously_misplaced_vertex() {
        // Path 0-1-2-3 with node 0 on the wrong side.
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut p = Partition::new(vec![1, 0, 1, 1], 2).unwrap();
        let before = cut_size(&g, &p);
        let stats = refine_kway(&g, &mut p, &opts(0.6, 4));
        let after = cut_size(&g, &p);
        assert!(after < before, "no improvement: {before} -> {after}");
        assert_eq!(before - after, stats.gain);
        // A partition with no strictly-improving move stays untouched.
        let mut fixed = Partition::new(vec![0, 1, 1, 1], 2).unwrap();
        let s = refine_kway(&g, &mut fixed, &opts(0.0, 4));
        assert_eq!(s.moves, 0);
    }

    #[test]
    fn never_increases_cut() {
        let g = paper_graph(139);
        for seed in 0..3u64 {
            let mut p = random_partition(139, 4, seed);
            let before = cut_size(&g, &p);
            refine_kway(&g, &mut p, &opts(0.1, 8));
            let after = cut_size(&g, &p);
            assert!(after <= before, "cut increased {before} -> {after}");
        }
    }

    #[test]
    fn respects_balance_slack() {
        let g = paper_graph(144);
        let mut p = random_partition(144, 4, 9);
        refine_kway(&g, &mut p, &opts(0.05, 8));
        let m = PartitionMetrics::compute(&g, &p);
        let cap = (m.avg_load * 1.05).ceil() as u64;
        for &l in &m.part_loads {
            assert!(l <= cap, "load {l} exceeds cap {cap}");
        }
    }

    #[test]
    fn gain_matches_cut_delta_kway() {
        let g = paper_graph(98);
        let mut p = random_partition(98, 8, 4);
        let before = cut_size(&g, &p);
        let stats = refine_kway(&g, &mut p, &opts(0.2, 10));
        let after = cut_size(&g, &p);
        assert_eq!(before - after, stats.gain);
    }

    #[test]
    fn deterministic() {
        let g = paper_graph(167);
        let mut a = random_partition(167, 6, 2);
        let mut b = a.clone();
        let sa = refine_kway(&g, &mut a, &opts(0.1, 6));
        let sb = refine_kway(&g, &mut b, &opts(0.1, 6));
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    fn random_partition(n: usize, parts: u32, seed: u64) -> Partition {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        Partition::new((0..n).map(|_| rng.gen_range(0..parts)).collect(), parts).unwrap()
    }
}
