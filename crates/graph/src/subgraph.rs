//! Induced subgraph extraction (used by recursive bisection).

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;

/// An induced subgraph plus the mapping back to the parent graph.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The induced subgraph; node `i` corresponds to `orig_ids[i]` in the
    /// parent.
    pub graph: CsrGraph,
    /// Parent node id of each subgraph node.
    pub orig_ids: Vec<u32>,
}

/// Extracts the subgraph induced by `nodes` (need not be sorted; must not
/// contain duplicates). Node/edge weights and coordinates carry over.
///
/// # Panics
///
/// Panics if `nodes` contains an out-of-range id or duplicates.
pub fn induced_subgraph(graph: &CsrGraph, nodes: &[u32]) -> Subgraph {
    let n = graph.num_nodes();
    let mut local = vec![u32::MAX; n];
    for (i, &v) in nodes.iter().enumerate() {
        assert!((v as usize) < n, "node {v} out of range");
        assert!(local[v as usize] == u32::MAX, "duplicate node {v}");
        local[v as usize] = i as u32;
    }
    let mut b = GraphBuilder::with_nodes(nodes.len());
    for &v in nodes {
        let lv = local[v as usize];
        for (&u, &w) in graph.neighbors(v).iter().zip(graph.edge_weights(v)) {
            let lu = local[u as usize];
            if lu != u32::MAX && lv < lu {
                b.push_edge(lv, lu, w);
            }
        }
    }
    let vweights = nodes.iter().map(|&v| graph.node_weight(v)).collect();
    b = b.node_weights(vweights);
    if let Some(coords) = graph.coords() {
        b = b.coords(nodes.iter().map(|&v| coords[v as usize]).collect());
    }
    Subgraph {
        graph: b
            .build()
            .expect("induced subgraph of a valid graph is valid"),
        orig_ids: nodes.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::generators::paper_graph;

    #[test]
    fn extracts_internal_edges_only() {
        // square 0-1-2-3-0 plus chord 0-2
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let s = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(s.graph.num_nodes(), 3);
        // edges 0-1, 1-2, 0-2 survive; 2-3 and 3-0 don't.
        assert_eq!(s.graph.num_edges(), 3);
        assert_eq!(s.orig_ids, vec![0, 1, 2]);
    }

    #[test]
    fn respects_node_order() {
        let g = from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let s = induced_subgraph(&g, &[2, 0, 1]);
        // local 0 = orig 2, local 1 = orig 0, local 2 = orig 1
        assert!(s.graph.has_edge(0, 2)); // orig (2,1)
        assert!(s.graph.has_edge(1, 2)); // orig (0,1)
        assert!(!s.graph.has_edge(0, 1)); // orig (2,0) absent
    }

    #[test]
    fn carries_weights_and_coords() {
        let g = paper_graph(78);
        let nodes: Vec<u32> = (0..30).collect();
        let s = induced_subgraph(&g, &nodes);
        assert!(s.graph.coords().is_some());
        assert_eq!(s.graph.coords().unwrap()[5], g.coords().unwrap()[5]);
        assert_eq!(s.graph.node_weight(3), g.node_weight(3));
    }

    #[test]
    fn empty_selection() {
        let g = from_edges(3, &[(0, 1)]).unwrap();
        let s = induced_subgraph(&g, &[]);
        assert_eq!(s.graph.num_nodes(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn rejects_duplicates() {
        let g = from_edges(3, &[(0, 1)]).unwrap();
        induced_subgraph(&g, &[1, 1]);
    }
}
