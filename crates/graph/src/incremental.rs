//! The paper's incremental-update model (§4.2): "start with a graph,
//! partition it, then modify by adding some number of nodes in a local area
//! chosen randomly within the graph".

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::geometry::{NearestGrid, Point2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of growing a graph locally: the new graph plus enough metadata
/// to reason about what changed. New nodes occupy ids
/// `first_new .. graph.num_nodes()`; the ids of pre-existing nodes are
/// unchanged, so a partition of the old graph remains valid on the prefix.
#[derive(Debug, Clone)]
pub struct GrowthResult {
    /// The grown graph.
    pub graph: CsrGraph,
    /// The randomly chosen vertex around which the new nodes cluster.
    pub anchor: u32,
    /// Id of the first newly added node (`== old node count`).
    pub first_new: u32,
}

impl GrowthResult {
    /// Ids of the newly added nodes.
    pub fn new_nodes(&self) -> impl Iterator<Item = u32> + '_ {
        self.first_new..self.graph.num_nodes() as u32
    }

    /// Number of newly added nodes.
    pub fn num_new(&self) -> usize {
        self.graph.num_nodes() - self.first_new as usize
    }
}

/// Grows `graph` by `k` unit-weight nodes clustered in a local area around
/// a randomly chosen anchor vertex (mesh-refinement style).
///
/// Each new node is placed by a small random offset from the anchor
/// (within ≈ 2 grid spacings) and connected to its 3 nearest neighbours
/// among all nodes placed so far, which keeps the grown region
/// triangulation-like and the whole graph connected.
///
/// Deterministic in `(graph, k, seed)`.
///
/// # Errors
///
/// Returns [`GraphError::MissingCoordinates`] if the graph has no vertex
/// coordinates (the locality model needs geometry).
pub fn grow_local(graph: &CsrGraph, k: usize, seed: u64) -> Result<GrowthResult, GraphError> {
    let old_coords = graph.coords_required()?.to_vec();
    let n_old = graph.num_nodes();
    assert!(n_old > 0, "cannot grow an empty graph");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6772_6f77); // "grow"
    let anchor = rng.gen_range(0..n_old as u32);
    let anchor_pt = old_coords[anchor as usize];

    // Local length scale: roughly two grid spacings of the original mesh.
    let spacing = 1.0 / (n_old as f64).sqrt();
    let radius = 2.0 * spacing;

    let n_new = n_old + k;
    let mut coords = old_coords;
    coords.reserve(k);
    let mut b = GraphBuilder::with_nodes(n_new);
    // Copy the existing edges.
    for (u, v, w) in graph.edges() {
        b.push_edge(u, v, w);
    }

    // Exact nearest-neighbour queries over ALL nodes placed so far, via a
    // uniform spatial grid: O(1) amortized per query instead of the old
    // O(n log n) full sort per new node. The grid returns neighbours
    // ordered by (distance, id) — identical to the scan-and-sort it
    // replaced. The cell size comes from the measured point density
    // (not the unit-square 1/√n, which `radius` keeps only for
    // backwards-compatible growth geometry), so ring searches stay O(k)
    // for coordinates on any scale.
    let neighbors_per_new = 3usize;
    let mut index = NearestGrid::new(&coords, crate::geometry::density_cell(&coords));
    for step in 0..k {
        let new_id = (n_old + step) as u32;
        let pt = Point2::new(
            anchor_pt.x + rng.gen_range(-radius..radius),
            anchor_pt.y + rng.gen_range(-radius..radius),
        );
        for nbr in index.nearest(&pt, neighbors_per_new) {
            b.push_edge(new_id, nbr, 1);
        }
        index.insert(pt);
        coords.push(pt);
    }

    let mut vweights = graph.node_weights().to_vec();
    vweights.extend(std::iter::repeat_n(1, k));
    let grown = b.node_weights(vweights).coords(coords).build()?;
    Ok(GrowthResult {
        graph: grown,
        anchor,
        first_new: n_old as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::paper_graph;
    use crate::traversal::is_connected;

    #[test]
    fn grows_by_exactly_k() {
        let g = paper_graph(118);
        let r = grow_local(&g, 21, 7).unwrap();
        assert_eq!(r.graph.num_nodes(), 139);
        assert_eq!(r.first_new, 118);
        assert_eq!(r.num_new(), 21);
        assert_eq!(r.new_nodes().count(), 21);
    }

    #[test]
    fn preserves_existing_structure() {
        let g = paper_graph(78);
        let r = grow_local(&g, 10, 3).unwrap();
        for (u, v, w) in g.edges() {
            assert_eq!(r.graph.edge_weight(u, v), Some(w), "lost edge ({u},{v})");
        }
        // Old coordinates unchanged.
        let old = g.coords().unwrap();
        let new = r.graph.coords().unwrap();
        assert_eq!(&new[..78], old);
    }

    #[test]
    fn grown_graph_is_connected() {
        for seed in 0..5 {
            let g = paper_graph(98);
            let r = grow_local(&g, 30, seed).unwrap();
            assert!(is_connected(&r.graph), "seed {seed}");
        }
    }

    #[test]
    fn new_nodes_cluster_near_anchor() {
        let g = paper_graph(183);
        let r = grow_local(&g, 30, 11).unwrap();
        let coords = r.graph.coords().unwrap();
        let anchor_pt = coords[r.anchor as usize];
        let spacing = 1.0 / (183f64).sqrt();
        for v in r.new_nodes() {
            let d = coords[v as usize].dist(&anchor_pt);
            assert!(d <= 2.0 * spacing * 1.5 + 1e-9, "node {v} too far: {d}");
        }
    }

    #[test]
    fn deterministic() {
        let g = paper_graph(118);
        let a = grow_local(&g, 21, 5).unwrap();
        let b = grow_local(&g, 21, 5).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.anchor, b.anchor);
    }

    /// The pre-spatial-grid implementation, preserved verbatim as the
    /// reference: a full scan-and-sort over every placed node per new
    /// node. The grid path must reproduce its output bit for bit.
    fn grow_local_reference(graph: &CsrGraph, k: usize, seed: u64) -> GrowthResult {
        let old_coords = graph.coords_required().unwrap().to_vec();
        let n_old = graph.num_nodes();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6772_6f77);
        let anchor = rng.gen_range(0..n_old as u32);
        let anchor_pt = old_coords[anchor as usize];
        let spacing = 1.0 / (n_old as f64).sqrt();
        let radius = 2.0 * spacing;
        let n_new = n_old + k;
        let mut coords = old_coords;
        let mut b = GraphBuilder::with_nodes(n_new);
        for (u, v, w) in graph.edges() {
            b.push_edge(u, v, w);
        }
        for step in 0..k {
            let new_id = (n_old + step) as u32;
            let pt = Point2::new(
                anchor_pt.x + rng.gen_range(-radius..radius),
                anchor_pt.y + rng.gen_range(-radius..radius),
            );
            let mut nearest: Vec<(f64, u32)> = coords
                .iter()
                .enumerate()
                .map(|(i, p)| (p.dist2(&pt), i as u32))
                .collect();
            nearest.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for &(_, nbr) in nearest.iter().take(3) {
                b.push_edge(new_id, nbr, 1);
            }
            coords.push(pt);
        }
        let mut vweights = graph.node_weights().to_vec();
        vweights.extend(std::iter::repeat_n(1, k));
        let grown = b.node_weights(vweights).coords(coords).build().unwrap();
        GrowthResult {
            graph: grown,
            anchor,
            first_new: n_old as u32,
        }
    }

    #[test]
    fn grid_lookup_is_bit_identical_to_the_linear_scan() {
        for (n, k, seed) in [(78, 10, 0), (118, 21, 5), (183, 45, 11), (309, 60, 42)] {
            let g = paper_graph(n);
            let fast = grow_local(&g, k, seed).unwrap();
            let slow = grow_local_reference(&g, k, seed);
            assert_eq!(fast.graph, slow.graph, "n={n} k={k} seed={seed}");
            assert_eq!(fast.anchor, slow.anchor);
            assert_eq!(fast.first_new, slow.first_new);
        }
    }

    #[test]
    fn grid_lookup_handles_non_unit_square_coordinates() {
        // User-supplied .xy files are not confined to the unit square;
        // the grid must stay exact (and fast) when the domain is three
        // orders of magnitude wider than 1/√n.
        let g = paper_graph(118);
        let scaled: Vec<Point2> = g
            .coords()
            .unwrap()
            .iter()
            .map(|p| Point2::new(p.x * 1000.0, p.y * 1000.0))
            .collect();
        let mut b = GraphBuilder::with_nodes(118);
        for (u, v, w) in g.edges() {
            b.push_edge(u, v, w);
        }
        let big = b
            .node_weights(g.node_weights().to_vec())
            .coords(scaled)
            .build()
            .unwrap();
        let fast = grow_local(&big, 25, 9).unwrap();
        let slow = grow_local_reference(&big, 25, 9);
        assert_eq!(fast.graph, slow.graph);
    }

    #[test]
    fn requires_coordinates() {
        let g = crate::generators::gnp(20, 0.3, 1);
        assert_eq!(
            grow_local(&g, 5, 0).unwrap_err(),
            GraphError::MissingCoordinates
        );
    }

    #[test]
    fn zero_growth_is_identity_graph() {
        let g = paper_graph(78);
        let r = grow_local(&g, 0, 1).unwrap();
        assert_eq!(r.graph.num_nodes(), 78);
        assert_eq!(r.num_new(), 0);
    }
}
