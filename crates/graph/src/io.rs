//! METIS-compatible text serialization.
//!
//! Format: header `N M [fmt]`, then one line per vertex listing its
//! (1-indexed) neighbours. `fmt` is the METIS 3-digit flag word: `010`
//! adds a vertex weight before the neighbour list, `001` adds an edge
//! weight after each neighbour, `011` both. Comment lines start with `%`.
//! Coordinates travel in a separate `x y` per-line document (one per
//! vertex), matching common mesh tool conventions.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::geometry::Point2;
use std::fmt::Write as _;

/// Serializes the graph in METIS format. Emits vertex weights iff any is
/// non-unit and edge weights iff any is non-unit.
pub fn to_metis(graph: &CsrGraph) -> String {
    let has_vw = graph.node_weights().iter().any(|&w| w != 1);
    let has_ew = graph.eweights().iter().any(|&w| w != 1);
    let mut out = String::new();
    let fmt = match (has_vw, has_ew) {
        (false, false) => "",
        (false, true) => " 001",
        (true, false) => " 010",
        (true, true) => " 011",
    };
    let _ = writeln!(out, "{} {}{}", graph.num_nodes(), graph.num_edges(), fmt);
    for v in 0..graph.num_nodes() as u32 {
        let mut first = true;
        if has_vw {
            let _ = write!(out, "{}", graph.node_weight(v));
            first = false;
        }
        for (&u, &w) in graph.neighbors(v).iter().zip(graph.edge_weights(v)) {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "{}", u + 1);
            if has_ew {
                let _ = write!(out, " {}", w);
            }
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Parses a METIS-format document produced by [`to_metis`] (or by METIS
/// itself, for the `000`/`001`/`010`/`011` formats).
///
/// Every undirected edge must appear on **both** endpoint rows with the
/// same weight (and the same multiplicity, for repeated entries); a
/// document whose rows disagree — an adjacency entry present on one row
/// only, or mismatched duplicate edge weights — is rejected rather than
/// silently half-read.
///
/// # Errors
///
/// [`GraphError::Parse`] for malformed input, including asymmetric
/// adjacency rows; builder errors for structurally invalid graphs
/// (out-of-range ids, zero weights, …).
pub fn from_metis(text: &str) -> Result<CsrGraph, GraphError> {
    // Comments are always skipped; empty lines are significant *after*
    // the header (an isolated vertex serializes as an empty line) but
    // skipped before it.
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.starts_with('%'));

    let (hline, header) = lines
        .by_ref()
        .find(|(_, l)| !l.is_empty())
        .ok_or(GraphError::Parse {
            line: 1,
            message: "empty document".into(),
        })?;
    let mut it = header.split_whitespace();
    let parse_usize = |tok: Option<&str>, line: usize, what: &str| -> Result<usize, GraphError> {
        tok.ok_or_else(|| GraphError::Parse {
            line,
            message: format!("missing {what}"),
        })?
        .parse()
        .map_err(|_| GraphError::Parse {
            line,
            message: format!("bad {what}"),
        })
    };
    let n = parse_usize(it.next(), hline, "node count")?;
    let m = parse_usize(it.next(), hline, "edge count")?;
    let fmt = it.next().unwrap_or("000");
    let (has_vw, has_ew) = match fmt {
        "0" | "00" | "000" => (false, false),
        "1" | "01" | "001" => (false, true),
        "10" | "010" => (true, false),
        "11" | "011" => (true, true),
        other => {
            return Err(GraphError::Parse {
                line: hline,
                message: format!("unsupported fmt '{other}'"),
            })
        }
    };

    let mut b = GraphBuilder::with_nodes(n);
    let mut vweights = vec![1u32; n];
    let mut rows = 0usize;
    // Every directed adjacency entry, as (min, max, from_lower_row, w,
    // line): after parsing, each {a, b} group must carry the same weight
    // multiset from both rows — the symmetry check below.
    let mut entries: Vec<(u32, u32, bool, u32, usize)> = Vec::new();
    #[allow(clippy::needless_range_loop, clippy::explicit_counter_loop)]
    for v in 0..n {
        let (lno, line) = lines.next().ok_or(GraphError::Parse {
            line: hline,
            message: format!("expected {n} vertex lines, got {rows}"),
        })?;
        rows += 1;
        let mut toks = line.split_whitespace();
        if has_vw {
            let w: u32 = toks
                .next()
                .ok_or_else(|| GraphError::Parse {
                    line: lno,
                    message: "missing vertex weight".into(),
                })?
                .parse()
                .map_err(|_| GraphError::Parse {
                    line: lno,
                    message: "bad vertex weight".into(),
                })?;
            vweights[v] = w;
        }
        while let Some(tok) = toks.next() {
            let nbr1: usize = tok.parse().map_err(|_| GraphError::Parse {
                line: lno,
                message: format!("bad neighbour '{tok}'"),
            })?;
            if nbr1 == 0 || nbr1 > n {
                return Err(GraphError::Parse {
                    line: lno,
                    message: format!("neighbour {nbr1} out of 1..={n}"),
                });
            }
            let w: u32 = if has_ew {
                toks.next()
                    .ok_or_else(|| GraphError::Parse {
                        line: lno,
                        message: "missing edge weight".into(),
                    })?
                    .parse()
                    .map_err(|_| GraphError::Parse {
                        line: lno,
                        message: "bad edge weight".into(),
                    })?
            } else {
                1
            };
            let u = (nbr1 - 1) as u32;
            let v = v as u32;
            if u == v {
                return Err(GraphError::Parse {
                    line: lno,
                    message: format!("vertex {nbr1} lists itself as a neighbour"),
                });
            }
            entries.push((v.min(u), v.max(u), v < u, w, lno));
        }
    }
    // Symmetry of presence and weight: each undirected edge appears once
    // per endpoint row (twice for a deliberately doubled edge, and so
    // on), with identical weights. The old parser kept only the `v < u`
    // copy, so a document whose two rows disagreed parsed "successfully"
    // with silently wrong data.
    entries.sort_unstable();
    let mut i = 0usize;
    while i < entries.len() {
        let (a, bb, _, _, _) = entries[i];
        let mut j = i;
        while j < entries.len() && entries[j].0 == a && entries[j].1 == bb {
            j += 1;
        }
        let group = &entries[i..j];
        let lower: Vec<u32> = group.iter().filter(|e| e.2).map(|e| e.3).collect();
        let upper: Vec<u32> = group.iter().filter(|e| !e.2).map(|e| e.3).collect();
        let line = group[0].4;
        if lower.len() != upper.len() {
            let (present, missing) = if lower.is_empty() || upper.len() > lower.len() {
                (bb, a)
            } else {
                (a, bb)
            };
            return Err(GraphError::Parse {
                line,
                message: format!(
                    "edge {}-{} appears {} time(s) on vertex {}'s row but {} on vertex {}'s \
                     row (adjacency must be symmetric)",
                    a + 1,
                    bb + 1,
                    lower.len().max(upper.len()),
                    present + 1,
                    lower.len().min(upper.len()),
                    missing + 1
                ),
            });
        }
        // Both sides sorted (the entry sort includes the weight), so a
        // positional comparison checks multiset equality.
        if let Some((&wl, &wu)) = lower.iter().zip(&upper).find(|(l, u)| l != u) {
            return Err(GraphError::Parse {
                line,
                message: format!(
                    "edge {}-{} has weight {} on vertex {}'s row but {} on vertex {}'s row",
                    a + 1,
                    bb + 1,
                    wl,
                    a + 1,
                    wu,
                    bb + 1
                ),
            });
        }
        for &w in &lower {
            b.push_edge(a, bb, w);
        }
        i = j;
    }
    let g = b.node_weights(vweights).build()?;
    if g.num_edges() != m {
        return Err(GraphError::Parse {
            line: hline,
            message: format!("header claims {m} edges, document has {}", g.num_edges()),
        });
    }
    Ok(g)
}

/// Returns a copy of `graph` with `coords` attached (METIS files carry
/// no positions, so coordinate-needing callers — the CLI's `--coords`
/// flag, the serve daemon's tape recovery — re-attach them after
/// [`from_metis`]).
///
/// # Errors
///
/// [`GraphError::CoordsMismatch`] when the coordinate count does not
/// match the node count.
pub fn attach_coords(graph: &CsrGraph, coords: Vec<Point2>) -> Result<CsrGraph, GraphError> {
    if coords.len() != graph.num_nodes() {
        return Err(GraphError::CoordsMismatch {
            coords: coords.len(),
            nodes: graph.num_nodes(),
        });
    }
    Ok(CsrGraph {
        topo: graph.topo.clone(),
        vweights: graph.vweights.clone(),
        coords: Some(coords),
    })
}

/// Serializes vertex coordinates, one `x y` pair per line.
pub fn coords_to_text(coords: &[Point2]) -> String {
    let mut out = String::new();
    for p in coords {
        let _ = writeln!(out, "{} {}", p.x, p.y);
    }
    out
}

/// Parses a coordinate document produced by [`coords_to_text`].
pub fn coords_from_text(text: &str) -> Result<Vec<Point2>, GraphError> {
    let mut coords = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let mut axis = |what: &str| -> Result<f64, GraphError> {
            it.next()
                .ok_or_else(|| GraphError::Parse {
                    line: i + 1,
                    message: format!("missing {what}"),
                })?
                .parse()
                .map_err(|_| GraphError::Parse {
                    line: i + 1,
                    message: format!("bad {what}"),
                })
        };
        let x = axis("x coordinate")?;
        let y = axis("y coordinate")?;
        coords.push(Point2::new(x, y));
    }
    Ok(coords)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::generators::paper_graph;

    #[test]
    fn unit_graph_round_trip() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let text = to_metis(&g);
        assert!(text.starts_with("4 4\n"));
        let g2 = from_metis(&text).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        assert_eq!(g.adjncy(), g2.adjncy());
    }

    #[test]
    fn weighted_round_trip() {
        let g = GraphBuilder::with_nodes(3)
            .weighted_edge(0, 1, 4)
            .weighted_edge(1, 2, 9)
            .node_weights(vec![2, 3, 5])
            .build()
            .unwrap();
        let text = to_metis(&g);
        assert!(text.starts_with("3 2 011\n"));
        let g2 = from_metis(&text).unwrap();
        assert_eq!(g2.edge_weight(0, 1), Some(4));
        assert_eq!(g2.edge_weight(1, 2), Some(9));
        assert_eq!(g2.node_weights(), &[2, 3, 5]);
    }

    #[test]
    fn paper_graph_round_trip() {
        let g = paper_graph(78);
        let g2 = from_metis(&to_metis(&g)).unwrap();
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(g.num_edges(), g2.num_edges());
        assert_eq!(g.xadj(), g2.xadj());
        assert_eq!(g.adjncy(), g2.adjncy());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "% a comment\n\n3 2\n2\n1 3\n2\n";
        let g = from_metis(text).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rejects_neighbour_out_of_range() {
        let text = "2 1\n2\n5\n";
        let err = from_metis(text).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }), "{err}");
    }

    #[test]
    fn rejects_one_sided_adjacency() {
        // Regression: vertex 1 lists 3 as a neighbour but vertex 3's row
        // is empty. The old parser kept only the `v < u` copy, so this
        // parsed "successfully" (with a misleading edge-count error at
        // best, silently wrong data at worst).
        let text = "3 2\n2 3\n1\n\n";
        let err = from_metis(text).unwrap_err();
        assert!(err.to_string().contains("symmetric"), "wrong error: {err}");
        // The mirror case — present only on the higher row — is caught
        // too, even though the old parser simply ignored that copy.
        let text = "3 1\n2\n1 3\n\n";
        let err = from_metis(text).unwrap_err();
        assert!(err.to_string().contains("symmetric"), "wrong error: {err}");
    }

    #[test]
    fn rejects_mismatched_duplicate_edge_weights() {
        // Regression: the two endpoint rows disagree on the edge weight;
        // the old parser silently took vertex 1's copy.
        let text = "2 1 001\n2 7\n1 9\n";
        let err = from_metis(text).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("weight 7") && msg.contains('9'),
            "wrong error: {msg}"
        );
        // Doubled edges must match as a multiset: 1 lists {4, 5}, 2
        // lists {4, 6} — same count, different weights.
        let text = "2 1 001\n2 4 2 5\n1 4 1 6\n";
        let err = from_metis(text).unwrap_err();
        assert!(err.to_string().contains("weight"), "wrong error: {err}");
        // Symmetric doubled edges still merge by summing, as before.
        let g = from_metis("2 1 001\n2 4 2 5\n1 4 1 5\n").unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(9));
    }

    #[test]
    fn rejects_self_reference() {
        let err = from_metis("2 1\n1 2\n1\n").unwrap_err();
        assert!(err.to_string().contains("itself"), "wrong error: {err}");
    }

    #[test]
    fn rejects_wrong_edge_count() {
        let text = "3 5\n2\n1 3\n2\n";
        let err = from_metis(text).unwrap_err();
        assert!(err.to_string().contains("5 edges"));
    }

    #[test]
    fn rejects_truncated_document() {
        let text = "3 2\n2\n";
        assert!(from_metis(text).is_err());
    }

    #[test]
    fn rejects_garbage_tokens() {
        assert!(from_metis("x y\n").is_err());
        assert!(from_metis("2 1\n2\nzzz\n").is_err());
    }

    #[test]
    fn coords_round_trip() {
        let coords = vec![Point2::new(0.25, -1.5), Point2::new(3.0, 0.0)];
        let parsed = coords_from_text(&coords_to_text(&coords)).unwrap();
        assert_eq!(parsed, coords);
    }

    #[test]
    fn coords_reject_garbage() {
        assert!(coords_from_text("1.0\n").is_err());
        assert!(coords_from_text("a b\n").is_err());
    }

    use crate::builder::GraphBuilder;
}
