//! Validated construction of [`CsrGraph`]s from edge lists.

use crate::csr::{CsrGraph, SmallCsr};
use crate::error::GraphError;
use crate::geometry::Point2;

/// Incremental, validated builder for [`CsrGraph`].
///
/// Duplicate edges are merged by summing their weights (so a generator may
/// emit the same edge from both sides without special-casing). Self-loops
/// and zero weights are rejected at [`GraphBuilder::build`] time.
///
/// ```
/// use gapart_graph::GraphBuilder;
/// let g = GraphBuilder::with_nodes(3).edge(0, 1).edge(1, 2).build().unwrap();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(u32, u32, u32)>,
    vweights: Option<Vec<u32>>,
    coords: Option<Vec<Point2>>,
}

impl GraphBuilder {
    /// Builder for a graph with `num_nodes` nodes and, initially, no edges.
    pub fn with_nodes(num_nodes: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
            vweights: None,
            coords: None,
        }
    }

    /// Number of nodes the builder was created with.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Adds a unit-weight undirected edge.
    #[must_use]
    pub fn edge(mut self, u: u32, v: u32) -> Self {
        self.edges.push((u, v, 1));
        self
    }

    /// Adds a weighted undirected edge.
    #[must_use]
    pub fn weighted_edge(mut self, u: u32, v: u32, w: u32) -> Self {
        self.edges.push((u, v, w));
        self
    }

    /// Adds many unit-weight edges at once.
    #[must_use]
    pub fn edges<I: IntoIterator<Item = (u32, u32)>>(mut self, it: I) -> Self {
        self.edges.extend(it.into_iter().map(|(u, v)| (u, v, 1)));
        self
    }

    /// Adds many weighted edges at once.
    #[must_use]
    pub fn weighted_edges<I: IntoIterator<Item = (u32, u32, u32)>>(mut self, it: I) -> Self {
        self.edges.extend(it);
        self
    }

    /// In-place (non-consuming) edge insertion, for loop-heavy generators.
    pub fn push_edge(&mut self, u: u32, v: u32, w: u32) {
        self.edges.push((u, v, w));
    }

    /// Sets per-node weights; length must equal the node count.
    #[must_use]
    pub fn node_weights(mut self, weights: Vec<u32>) -> Self {
        self.vweights = Some(weights);
        self
    }

    /// Sets per-node coordinates; length must equal the node count.
    #[must_use]
    pub fn coords(mut self, coords: Vec<Point2>) -> Self {
        self.coords = Some(coords);
        self
    }

    /// Finalizes the graph, validating every input.
    ///
    /// # Errors
    ///
    /// * [`GraphError::TooManyNodes`] if the node count exceeds `u32`.
    /// * [`GraphError::NodeOutOfRange`] for an edge endpoint `≥ num_nodes`.
    /// * [`GraphError::SelfLoop`] for an edge `(v, v)`.
    /// * [`GraphError::ZeroEdgeWeight`] / [`GraphError::ZeroNodeWeight`].
    /// * [`GraphError::Parse`] if the weight or coordinate array lengths
    ///   don't match the node count.
    /// * [`GraphError::AdjacencyOverflow`] if the merged adjacency exceeds
    ///   the `u32` offset space of the memory-lean CSR core.
    pub fn build(self) -> Result<CsrGraph, GraphError> {
        let n = self.num_nodes;
        if n > u32::MAX as usize {
            return Err(GraphError::TooManyNodes { requested: n });
        }
        let vweights = match self.vweights {
            Some(w) => {
                if w.len() != n {
                    return Err(GraphError::Parse {
                        line: 0,
                        message: format!("{} node weights for {} nodes", w.len(), n),
                    });
                }
                if let Some(pos) = w.iter().position(|&x| x == 0) {
                    return Err(GraphError::ZeroNodeWeight { node: pos as u32 });
                }
                w
            }
            None => vec![1; n],
        };
        if let Some(coords) = &self.coords {
            if coords.len() != n {
                return Err(GraphError::Parse {
                    line: 0,
                    message: format!("{} coordinates for {} nodes", coords.len(), n),
                });
            }
        }

        // Normalize to (min, max, w), validate, sort, and merge duplicates.
        let mut half: Vec<(u32, u32, u32)> = Vec::with_capacity(self.edges.len());
        for (u, v, w) in self.edges {
            if u as usize >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: u,
                    num_nodes: n,
                });
            }
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: v,
                    num_nodes: n,
                });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            if w == 0 {
                return Err(GraphError::ZeroEdgeWeight { u, v });
            }
            half.push((u.min(v), u.max(v), w));
        }
        half.sort_unstable_by_key(|&(u, v, _)| (u, v));
        half.dedup_by(|cur, prev| {
            if cur.0 == prev.0 && cur.1 == prev.1 {
                prev.2 = prev.2.saturating_add(cur.2);
                true
            } else {
                false
            }
        });

        // Degree counting pass, then CSR fill.
        let mut degree = vec![0usize; n];
        for &(u, v, _) in &half {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut xadj = Vec::with_capacity(n + 1);
        let mut total = 0usize;
        xadj.push(0usize);
        for d in &degree {
            total += d;
            xadj.push(total);
        }
        let mut adjncy = vec![0u32; total];
        let mut eweights = vec![0u32; total];
        let mut cursor = xadj[..n].to_vec();
        for &(u, v, w) in &half {
            let cu = &mut cursor[u as usize];
            adjncy[*cu] = v;
            eweights[*cu] = w;
            *cu += 1;
            let cv = &mut cursor[v as usize];
            adjncy[*cv] = u;
            eweights[*cv] = w;
            *cv += 1;
        }
        // Rows were filled in (u, v)-sorted order: row u receives its
        // higher-numbered neighbours in order, then row v the lower ones —
        // but interleaving can break per-row order, so sort each row.
        for v in 0..n {
            let (s, e) = (xadj[v], xadj[v + 1]);
            let mut row: Vec<(u32, u32)> = adjncy[s..e]
                .iter()
                .copied()
                .zip(eweights[s..e].iter().copied())
                .collect();
            row.sort_unstable_by_key(|&(nbr, _)| nbr);
            for (i, (nbr, w)) in row.into_iter().enumerate() {
                adjncy[s + i] = nbr;
                eweights[s + i] = w;
            }
        }

        let g = CsrGraph {
            topo: SmallCsr::from_usize_offsets(xadj, adjncy, eweights)?,
            vweights,
            coords: self.coords,
        };
        debug_assert!(g.validate().is_ok());
        Ok(g)
    }
}

/// Convenience: builds a unit-weight graph from an edge list.
pub fn from_edges(num_nodes: usize, edges: &[(u32, u32)]) -> Result<CsrGraph, GraphError> {
    GraphBuilder::with_nodes(num_nodes)
        .edges(edges.iter().copied())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_edges_merge_weights() {
        let g = GraphBuilder::with_nodes(2)
            .weighted_edge(0, 1, 2)
            .weighted_edge(1, 0, 3)
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(5));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = GraphBuilder::with_nodes(2).edge(0, 2).build().unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: 2,
                num_nodes: 2
            }
        );
    }

    #[test]
    fn rejects_self_loop() {
        let err = GraphBuilder::with_nodes(2).edge(1, 1).build().unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 1 });
    }

    #[test]
    fn rejects_zero_edge_weight() {
        let err = GraphBuilder::with_nodes(2)
            .weighted_edge(0, 1, 0)
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::ZeroEdgeWeight { u: 0, v: 1 });
    }

    #[test]
    fn rejects_zero_node_weight() {
        let err = GraphBuilder::with_nodes(2)
            .edge(0, 1)
            .node_weights(vec![1, 0])
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::ZeroNodeWeight { node: 1 });
    }

    #[test]
    fn rejects_mismatched_weight_length() {
        assert!(GraphBuilder::with_nodes(3)
            .node_weights(vec![1, 1])
            .build()
            .is_err());
    }

    #[test]
    fn rejects_mismatched_coords_length() {
        assert!(GraphBuilder::with_nodes(3)
            .coords(vec![Point2::ORIGIN])
            .build()
            .is_err());
    }

    #[test]
    fn from_edges_round_trip() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(g.num_edges(), 3);
        g.validate().unwrap();
    }

    #[test]
    fn rows_are_sorted_regardless_of_insertion_order() {
        let g = GraphBuilder::with_nodes(5)
            .edge(4, 2)
            .edge(0, 4)
            .edge(4, 1)
            .edge(3, 4)
            .build()
            .unwrap();
        assert_eq!(g.neighbors(4), &[0, 1, 2, 3]);
        g.validate().unwrap();
    }
}
