//! The generic multilevel V-cycle: coarsen → partition → project + refine.
//!
//! The paper recommends "a prior graph contraction step" before applying
//! the GA to very large graphs; its RSB baseline (Barnard & Simon) is
//! itself a multilevel method. Rather than hand-wiring that V-cycle into
//! each algorithm, [`MultilevelPartitioner`] wraps **any**
//! [`Partitioner`] and runs the standard scheme around it:
//!
//! ```text
//! fine graph ──coarsen_hem──► ... ──coarsen_hem──► coarsest graph
//!     ▲                                                  │
//!     │ project + refine_kway        inner Partitioner   │
//!     └───────── ... ◄──────────────────────────────────┘
//! ```
//!
//! 1. **Coarsen** with heavy-edge matching ([`crate::coarsen::coarsen_to`])
//!    until at most `coarsen_target` nodes remain (never below `2 × k`).
//! 2. **Partition** the coarsest graph with the wrapped algorithm — GA,
//!    DPGA, RSB, IBP, or anything else implementing the trait.
//! 3. **Uncoarsen**: project the partition level by level back to the fine
//!    graph ([`crate::coarsen::Coarsening::project`]), running the
//!    configured k-way refinement ([`crate::refine::RefineScheme`] — the
//!    boundary FM engine by default, or the greedy sweep) after every
//!    projection (and once on the coarsest graph before the first one).
//!
//! Because contraction sums node and edge weights, a coarse partition has
//! *exactly* the same cut and loads as its projection, so every refinement
//! pass starts from a faithful cost picture and the final cut is never
//! worse than the projected inner solution.
//!
//! # Determinism
//!
//! The V-cycle adds no randomness of its own: coarsening is seeded from
//! the trait's `seed` argument and refinement is deterministic, so the
//! wrapper is deterministic-under-seed exactly when the inner algorithm
//! is. All registered `ml*` methods therefore satisfy the full
//! [`Partitioner`] contract (asserted by `tests/partitioner_contract.rs`
//! at the workspace root).

use crate::coarsen::{coarsen_to_with_arena, LevelArena, MatchScheme};
use crate::csr::CsrGraph;
use crate::partitioner::{PartitionReport, Partitioner, PartitionerError};
use crate::refine::{refine_kway, RefineOptions, RefineScheme};
use std::sync::Mutex;

/// Knobs of the V-cycle itself (the inner algorithm keeps its own).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultilevelConfig {
    /// Stop coarsening once the graph has at most this many nodes. The
    /// effective target is never below `2 × num_parts`, so the inner
    /// algorithm always sees more nodes than parts.
    pub coarsen_target: usize,
    /// Matching algorithm for each coarsening round: the deterministic
    /// parallel handshake (default) or the preserved sequential HEM
    /// reference (see [`MatchScheme`]).
    pub match_scheme: MatchScheme,
    /// Per-level refinement options (balance slack and pass budget).
    pub refine: RefineOptions,
    /// Refinement engine run after every projection: the boundary FM
    /// refiner (default) or the frozen-gain sweep (see [`RefineScheme`]).
    pub refine_scheme: RefineScheme,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            coarsen_target: 64,
            match_scheme: MatchScheme::default(),
            refine: RefineOptions::default(),
            refine_scheme: RefineScheme::default(),
        }
    }
}

/// Wraps any inner [`Partitioner`] in the standard multilevel V-cycle.
///
/// The wrapper's registry name is supplied at construction (`"mlga"`,
/// `"mldpga"`, `"mlrsb"`, `"mlibp"`, …) because [`Partitioner::name`]
/// returns `&'static str` — the composed name cannot be derived from the
/// inner one at runtime.
pub struct MultilevelPartitioner {
    name: &'static str,
    inner: Box<dyn Partitioner>,
    /// V-cycle knobs; the inner algorithm's configuration lives in the
    /// inner partitioner itself.
    pub config: MultilevelConfig,
    /// Recycled per-level workspace (match arrays, contraction scratch,
    /// FM engines), kept warm across `partition` calls and
    /// `DynamicSession` batches. Behind a mutex because the trait takes
    /// `&self`; a contended call simply runs on a throwaway fresh arena
    /// (the arena is an allocation cache only — results are identical).
    arena: Mutex<LevelArena>,
}

impl MultilevelPartitioner {
    /// Wraps `inner` with the default [`MultilevelConfig`].
    pub fn new(name: &'static str, inner: Box<dyn Partitioner>) -> Self {
        Self::with_config(name, inner, MultilevelConfig::default())
    }

    /// Wraps `inner` with explicit V-cycle knobs.
    pub fn with_config(
        name: &'static str,
        inner: Box<dyn Partitioner>,
        config: MultilevelConfig,
    ) -> Self {
        MultilevelPartitioner {
            name,
            inner,
            config,
            arena: Mutex::new(LevelArena::new()),
        }
    }

    /// The wrapped coarsest-level algorithm.
    pub fn inner(&self) -> &dyn Partitioner {
        self.inner.as_ref()
    }
}

impl std::fmt::Debug for MultilevelPartitioner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultilevelPartitioner")
            .field("name", &self.name)
            .field("inner", &self.inner.name())
            .field("config", &self.config)
            .finish()
    }
}

impl Partitioner for MultilevelPartitioner {
    fn name(&self) -> &'static str {
        self.name
    }

    fn partition(
        &self,
        graph: &CsrGraph,
        num_parts: u32,
        seed: u64,
    ) -> Result<PartitionReport, PartitionerError> {
        let n = graph.num_nodes();
        if num_parts == 0 || num_parts as usize > n {
            return Err(PartitionerError::new(format!(
                "cannot split {n} nodes into {num_parts} parts"
            )));
        }
        // Never coarsen below the part count; HEM at most halves per
        // round, so the coarsest graph keeps strictly more nodes than k.
        let target = self.config.coarsen_target.max(num_parts as usize * 2);

        // Claim the recycled arena (or fall back to a fresh one under
        // contention/poisoning — same results, just cold buffers).
        let mut guard = self.arena.try_lock();
        let mut cold;
        let arena: &mut LevelArena = match guard {
            Ok(ref mut g) => g,
            Err(_) => {
                cold = LevelArena::new();
                &mut cold
            }
        };
        arena.pfm.set_full_rescan(matches!(
            self.config.refine_scheme,
            RefineScheme::ParallelFmRescan
        ));

        let levels = coarsen_to_with_arena(graph, target, seed, self.config.match_scheme, arena);
        let coarsest = levels.last().map_or(graph, |l| &l.coarse);

        let opts = &self.config.refine;
        let mut partition = self.inner.partition(coarsest, num_parts, seed)?.partition;
        // The arena's FM workspaces serve every level of the uncoarsening
        // (their buffers are sized once at the fine level and reused —
        // and stay warm for the next call).
        match self.config.refine_scheme {
            RefineScheme::Sweep => {
                refine_kway(coarsest, &mut partition, opts);
            }
            RefineScheme::BoundaryFm => {
                arena.fm.refine(coarsest, &mut partition, opts, seed);
            }
            RefineScheme::ParallelFm | RefineScheme::ParallelFmRescan => {
                arena.pfm.refine(coarsest, &mut partition, opts, seed);
            }
        }

        // Uncoarsen: project through each level, refining on the finer
        // graph after every projection. For FM, the fine boundary after
        // a projection is exactly the preimage of the coarse boundary
        // (a cut fine edge maps to a cut coarse edge), and the engine's
        // own [`FmRefiner::last_boundary_superset`] covers the coarse
        // boundary after each refine — so each level masks that
        // superset and projects through `project_for_fm`, one fused
        // pass that also yields the boundary hint and the per-part
        // loads/populations for the primed refiner. No O(V + E)
        // boundary rediscovery, no O(V) re-tally, and supersets compose,
        // so results are bit-identical to the unhinted engine
        // (`boundary_fm_fast_path_matches_the_unhinted_engine` pins it).
        for (i, level) in levels.iter().enumerate().rev() {
            let fine = if i == 0 { graph } else { &levels[i - 1].coarse };
            match self.config.refine_scheme {
                RefineScheme::Sweep => {
                    partition = level.project(&partition);
                    refine_kway(fine, &mut partition, opts);
                }
                RefineScheme::BoundaryFm => {
                    arena.mask.clear();
                    arena.mask.resize(level.coarse.num_nodes(), false);
                    for &v in arena.fm.last_boundary_superset() {
                        arena.mask[v as usize] = true;
                    }
                    let projected = level.project_for_fm(&partition, fine, &arena.mask);
                    partition = projected.partition;
                    arena.fm.refine_primed(
                        fine,
                        &mut partition,
                        opts,
                        seed,
                        &projected.hint,
                        projected.loads,
                        projected.counts,
                    );
                }
                // The parallel engine honours the same boundary-superset
                // contract, so it rides the identical fused fast path
                // (in either eval-table mode).
                RefineScheme::ParallelFm | RefineScheme::ParallelFmRescan => {
                    arena.mask.clear();
                    arena.mask.resize(level.coarse.num_nodes(), false);
                    for &v in arena.pfm.last_boundary_superset() {
                        arena.mask[v as usize] = true;
                    }
                    let projected = level.project_for_fm(&partition, fine, &arena.mask);
                    partition = projected.partition;
                    arena.pfm.refine_primed(
                        fine,
                        &mut partition,
                        opts,
                        seed,
                        &projected.hint,
                        projected.loads,
                        projected.counts,
                    );
                }
            }
        }
        Ok(PartitionReport::new(self.name, graph, partition))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::coarsen::{coarsen_to, project_through};
    use crate::generators::{grid2d, jittered_mesh, GridKind};
    use crate::partition::{cut_size, Partition};
    use std::cell::Cell;
    use std::rc::Rc;

    /// Deterministic inner fixture: contiguous block assignment. Being a
    /// crate-local impl it also proves the framework needs nothing from
    /// the algorithm crates above `gapart-graph`.
    struct Blocks;

    impl Partitioner for Blocks {
        fn name(&self) -> &'static str {
            "blocks"
        }

        fn partition(
            &self,
            graph: &CsrGraph,
            num_parts: u32,
            _seed: u64,
        ) -> Result<PartitionReport, PartitionerError> {
            if num_parts == 0 || num_parts as usize > graph.num_nodes() {
                return Err(PartitionerError::new("bad part count"));
            }
            let p = Partition::blocks(graph.num_nodes(), num_parts);
            Ok(PartitionReport::new(self.name(), graph, p))
        }
    }

    fn ml_blocks() -> MultilevelPartitioner {
        MultilevelPartitioner::new("mlblocks", Box::new(Blocks))
    }

    #[test]
    fn projects_back_to_full_size_with_valid_labels() {
        let g = jittered_mesh(500, 3);
        let report = ml_blocks().partition(&g, 4, 7).unwrap();
        assert_eq!(report.algorithm, "mlblocks");
        assert_eq!(report.partition.num_nodes(), 500);
        assert!(report.partition.labels().iter().all(|&l| l < 4));
        assert_eq!(report.metrics.part_loads.iter().sum::<u64>(), 500);
    }

    #[test]
    fn refinement_never_worsens_the_projected_inner_cut() {
        let g = grid2d(24, 24, GridKind::FourConnected);
        let ml = ml_blocks();
        let report = ml.partition(&g, 4, 11).unwrap();
        // Recompute the raw projected solution (deterministic pipeline).
        let levels = coarsen_to(&g, ml.config.coarsen_target.max(8), 11);
        let coarsest = levels.last().map_or(&g, |l| &l.coarse);
        let coarse_p = Blocks.partition(coarsest, 4, 11).unwrap().partition;
        let projected = project_through(&levels, &coarse_p);
        assert!(
            report.metrics.total_cut <= cut_size(&g, &projected),
            "V-cycle cut {} worse than raw projection {}",
            report.metrics.total_cut,
            cut_size(&g, &projected)
        );
    }

    #[test]
    fn small_graph_skips_coarsening_and_reaches_the_inner_directly() {
        // Probe inner that records the node count it was handed.
        struct Probe(Rc<Cell<usize>>);
        impl Partitioner for Probe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn partition(
                &self,
                graph: &CsrGraph,
                num_parts: u32,
                _seed: u64,
            ) -> Result<PartitionReport, PartitionerError> {
                self.0.set(graph.num_nodes());
                let p = Partition::blocks(graph.num_nodes(), num_parts);
                Ok(PartitionReport::new(self.name(), graph, p))
            }
        }
        let seen = Rc::new(Cell::new(0usize));
        let g = jittered_mesh(40, 1);
        // 40 ≤ default target 64: the inner must see the original graph.
        let ml = MultilevelPartitioner::new("mlprobe", Box::new(Probe(Rc::clone(&seen))));
        let report = ml.partition(&g, 2, 0).unwrap();
        assert_eq!(seen.get(), 40, "inner saw a coarsened graph");
        assert_eq!(report.partition.num_nodes(), 40);
    }

    #[test]
    fn boundary_fm_fast_path_matches_the_unhinted_engine() {
        // The V-cycle's fused projection + boundary-superset chaining +
        // primed tallies are pure plumbing: the result must be
        // bit-identical to projecting plainly and running a fresh,
        // unhinted FM engine at every level.
        use crate::coarsen::coarsen_to;
        use crate::fm::refine_fm;
        let g = jittered_mesh(600, 21);
        let seed = 17;
        let fast = ml_blocks().partition(&g, 5, seed).unwrap().partition;

        let levels = coarsen_to(&g, 64, seed);
        let coarsest = levels.last().map_or(&g, |l| &l.coarse);
        let mut p = Blocks.partition(coarsest, 5, seed).unwrap().partition;
        let opts = crate::refine::RefineOptions::default();
        refine_fm(coarsest, &mut p, &opts, seed);
        for (i, level) in levels.iter().enumerate().rev() {
            p = level.project(&p);
            let fine = if i == 0 { &g } else { &levels[i - 1].coarse };
            refine_fm(fine, &mut p, &opts, seed);
        }
        assert_eq!(fast, p, "fast path diverged from the reference V-cycle");
    }

    #[test]
    fn parallel_fm_fast_path_matches_the_unhinted_engine() {
        // Same plumbing claim for the parallel engine: riding the fused
        // projection + boundary-superset chain must be bit-identical to
        // projecting plainly and running a fresh, unhinted ParallelFm at
        // every level.
        use crate::coarsen::coarsen_to;
        use crate::fm::ParallelFm;
        let g = jittered_mesh(600, 21);
        let seed = 17;
        let ml = MultilevelPartitioner::with_config(
            "mlblocks-pfm",
            Box::new(Blocks),
            MultilevelConfig {
                refine_scheme: RefineScheme::ParallelFm,
                ..MultilevelConfig::default()
            },
        );
        let fast = ml.partition(&g, 5, seed).unwrap().partition;

        let levels = coarsen_to(&g, 64, seed);
        let coarsest = levels.last().map_or(&g, |l| &l.coarse);
        let mut p = Blocks.partition(coarsest, 5, seed).unwrap().partition;
        let opts = crate::refine::RefineOptions::default();
        ParallelFm::new().refine(coarsest, &mut p, &opts, seed);
        for (i, level) in levels.iter().enumerate().rev() {
            p = level.project(&p);
            let fine = if i == 0 { &g } else { &levels[i - 1].coarse };
            ParallelFm::new().refine(fine, &mut p, &opts, seed);
        }
        assert_eq!(fast, p, "pfm fast path diverged from the reference V-cycle");
    }

    #[test]
    fn rejects_bad_part_counts_without_panicking() {
        let g = jittered_mesh(30, 5);
        let ml = ml_blocks();
        assert!(ml.partition(&g, 0, 1).is_err());
        assert!(ml.partition(&g, 31, 1).is_err());
    }

    #[test]
    fn inner_errors_propagate() {
        struct Fails;
        impl Partitioner for Fails {
            fn name(&self) -> &'static str {
                "fails"
            }
            fn partition(
                &self,
                _graph: &CsrGraph,
                _num_parts: u32,
                _seed: u64,
            ) -> Result<PartitionReport, PartitionerError> {
                Err(PartitionerError::new("inner exploded"))
            }
        }
        let g = jittered_mesh(200, 2);
        let ml = MultilevelPartitioner::new("mlfails", Box::new(Fails));
        let err = ml.partition(&g, 4, 0).unwrap_err();
        assert!(err.message().contains("inner exploded"));
    }

    #[test]
    fn deterministic_under_seed() {
        let g = jittered_mesh(300, 9);
        let ml = ml_blocks();
        let a = ml.partition(&g, 8, 42).unwrap();
        let b = ml.partition(&g, 8, 42).unwrap();
        assert_eq!(a.partition, b.partition);
        // A different seed shuffles the matching order, which is allowed
        // to (and on meshes does) change the result.
        let c = ml.partition(&g, 8, 43).unwrap();
        assert_eq!(c.partition.num_nodes(), 300);
    }

    #[test]
    fn edgeless_graph_terminates_and_covers_every_node() {
        let g = crate::builder::GraphBuilder::with_nodes(20)
            .build()
            .unwrap();
        let report = ml_blocks().partition(&g, 4, 3).unwrap();
        assert_eq!(report.partition.num_nodes(), 20);
        assert_eq!(report.metrics.total_cut, 0);
    }

    #[test]
    fn custom_config_is_honoured() {
        let g = from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (2, 3)]).unwrap();
        let ml = MultilevelPartitioner::with_config(
            "mlblocks",
            Box::new(Blocks),
            MultilevelConfig {
                coarsen_target: 2,
                match_scheme: MatchScheme::SequentialHem,
                refine: RefineOptions {
                    balance_slack: 0.5,
                    max_passes: 2,
                },
                refine_scheme: RefineScheme::Sweep,
            },
        );
        assert_eq!(ml.inner().name(), "blocks");
        let report = ml.partition(&g, 2, 1).unwrap();
        assert_eq!(report.partition.num_nodes(), 6);
    }
}
